//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! reimplements the subset of proptest the SGA workspace uses:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`;
//! * range, tuple, [`Just`], [`any`], and `collection::{vec, btree_set,
//!   btree_map}` strategies;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_oneof!`] macros;
//! * [`ProptestConfig`] with a `cases` budget.
//!
//! Differences from upstream, deliberate for an offline test substrate:
//! **no shrinking** (a failing case reports its case index and seed instead
//! of a minimized input) and **fully deterministic seeding** (case `i` of a
//! test derives its RNG from a fixed base and `i`, so failures reproduce
//! without a persistence file; `*.proptest-regressions` files are ignored).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;

/// The RNG handed to strategies; a seeded [`StdRng`].
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives the RNG for one test case.
    pub fn for_case(base: u64, case: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(
            base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            lo
        } else {
            self.0.gen_range(lo..hi)
        }
    }
}

/// A failed test case (raised by `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Generation budget and knobs for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Full-domain generation for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives — the engine of
/// [`prop_oneof!`].
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.usize_in(0, self.0.len());
        self.0[i].generate(rng)
    }
}

pub mod collection {
    //! `vec` / `btree_set` / `btree_map` strategies.

    use super::{BTreeMap, BTreeSet, Range, Strategy, TestRng};

    /// Collection-size specification: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> SizeRange {
            SizeRange {
                lo: r.start.max(0) as usize,
                hi: r.end.max(0) as usize,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi)
        }
    }

    /// Vector of `element` draws with a length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Set of up to `size` draws (duplicates collapse, as upstream).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Map of up to `size` key/value draws (duplicate keys collapse).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.draw(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Runs `config.cases` deterministic cases of one property.
///
/// The per-test seed base hashes the source location, so distinct tests see
/// distinct streams but every run of the same binary sees the same ones.
pub fn run_proptest<F>(config: ProptestConfig, file: &str, line: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes() {
        base = (base ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    base = (base ^ u64::from(line)).wrapping_mul(0x1000_0000_01b3);
    for i in 0..u64::from(config.cases) {
        let mut rng = TestRng::for_case(base, i);
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!(
                "proptest case {i}/{} failed (seed base {base:#x}, {file}:{line}): {msg}",
                config.cases
            );
        }
    }
}

/// The `proptest!` block: one or more `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_proptest(__config, file!(), line!(), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports a proptest case failure instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
}

/// Uniform choice between strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! Module-style access (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = i64> {
        (0i64..100).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -7i64..9, n in prop::collection::vec(0u8..4, 1..10)) {
            prop_assert!((-7..9).contains(&x));
            prop_assert!(!n.is_empty() && n.len() < 10);
            prop_assert!(n.iter().all(|&b| b < 4));
        }

        #[test]
        fn combinators_compose(e in arb_even(), pick in prop_oneof![Just(1i64), 10i64..12]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || (10..12).contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0i64..1000, prop::collection::btree_set(0usize..50, 0..10));
        let mut r1 = crate::TestRng::for_case(99, 3);
        let mut r2 = crate::TestRng::for_case(99, 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_and_seed() {
        crate::run_proptest(ProptestConfig::with_cases(4), file!(), line!(), |_rng| {
            Err(crate::TestCaseError::fail("forced"))
        });
    }
}
