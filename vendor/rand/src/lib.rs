//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the *small deterministic subset* of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (half-open ranges), `gen_bool`, and `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic. Streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine here: every consumer in this
//! workspace treats the seed → output mapping as an opaque deterministic
//! function (the cgen benchmark substrate, proptest-style fuzzing), and no
//! golden outputs depend on upstream streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a uniform value from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // Modulo reduction: the bias over these small analysis-sized
                // ranges is ≪ 2⁻⁵⁰ and irrelevant to a test substrate.
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values generatable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open `lo..hi` range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the standard generator of this shim.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation (avoids correlated low-entropy states).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vc: Vec<i64> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vc, "different seeds must diverge");
    }

    #[test]
    fn ranges_and_bools_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let _ = r.gen_bool(0.3);
        }
        // gen_bool respects the extremes.
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
