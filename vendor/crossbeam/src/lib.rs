//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace's design permits exactly one parallelism dependency —
//! `crossbeam` scoped threads — but the build container has no crates.io
//! access, so this shim re-exposes crossbeam's `thread::scope` API on top of
//! `std::thread::scope` (stable since Rust 1.63, and the mechanism crossbeam
//! itself pioneered). Semantics match the subset used here: spawned threads
//! may borrow from the enclosing stack, the scope joins every spawned thread
//! before returning, and `scope` returns `Err` if any spawned thread
//! panicked.

pub mod thread {
    //! Scoped threads (`crossbeam::thread::scope`).

    use std::any::Any;

    /// A panic payload from a spawned thread.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// The scope handle passed to [`scope`] closures and to every spawned
    /// thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` = panicked).
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. As in
        /// crossbeam, the closure receives the scope again so it can spawn
        /// nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope; all threads spawned in it are joined before this
    /// returns. `Err` carries the first panic payload, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, chunk) in out.chunks_mut(1).enumerate() {
                let data = &data;
                handles.push(s.spawn(move |_| {
                    chunk[0] = data[i] * 10;
                    i
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
