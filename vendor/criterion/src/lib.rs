//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`, `black_box` — backed by a plain
//! best-of-N wall-clock loop instead of criterion's statistical machinery.
//! Each benchmark prints one line: `name ... median time / iteration`.
//!
//! Good enough to keep `cargo bench` compiling and producing comparable
//! numbers in an offline container; swap the real criterion back in for
//! publication-grade statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, rendered `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for `criterion_main!` compatibility; no CLI args are parsed.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Times one closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    /// Times one closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Times one closure with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Collects iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: one untimed call, then enough iterations to fill ~5 ms per
    // sample (bounds the cost of very fast routines without starving slow
    // ones).
    let mut bench = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bench);
    let warm = bench.samples.first().copied().unwrap_or_default();
    let iters = if warm < Duration::from_micros(50) {
        (Duration::from_millis(5).as_nanos() / warm.as_nanos().max(1)).clamp(1, 100_000) as u64
    } else {
        1
    };
    let mut bench = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bench);
    }
    bench.samples.sort_unstable();
    let median = bench
        .samples
        .get(bench.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {name:<48} {median:>12.3?}/iter ({} samples x {iters} iters)",
        bench.samples.len()
    );
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_plumbing_runs() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
    }
}
