//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's non-poisoning
//! API (`lock()` returns the guard directly). A poisoned std lock — some
//! other thread panicked while holding it — degrades to taking the inner
//! value, which matches parking_lot's behaviour of simply not tracking
//! poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);

        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
