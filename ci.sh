#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test suite.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test"
cargo test -q

echo "ci.sh: all green"
