#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test suite, the
# ignored-test gate, and the benchmark regression gate.
#
# Unlike a fail-fast script, every stage runs even after a failure so one
# pass reports everything that is broken; the final summary table shows
# per-stage pass/fail and the script exits non-zero if any stage failed.
#
# Usage: ci.sh [--quick]
#   --quick   skip the release build and the (release-built) bench gate —
#             the fast pre-push configuration.
set -uo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        -h|--help) echo "usage: ci.sh [--quick]"; exit 0 ;;
        *) echo "ci.sh: unknown argument '$arg' (usage: ci.sh [--quick])" >&2; exit 2 ;;
    esac
done

STAGE_NAMES=()
STAGE_RESULTS=()
STAGE_TIMES=()
FAILED=0

run_stage() {
    local name="$1"; shift
    echo
    echo "== $name"
    local start=$SECONDS
    if "$@"; then
        STAGE_RESULTS+=("pass")
    else
        STAGE_RESULTS+=("FAIL")
        FAILED=1
    fi
    STAGE_NAMES+=("$name")
    STAGE_TIMES+=("$((SECONDS - start))")
}

diag_gate() {
    # The alarm-triage surface, end to end and offline: the golden alarm
    # corpus (fingerprints, octagon discharges, engine/widening agreement,
    # SARIF validation against the vendored 2.1.0 schema), then a
    # baseline-vs-self smoke over the corpus via the CLI — diffing a run
    # against itself must classify zero new and zero fixed diagnostics.
    cargo test -q -p sga --test diagnostics || return 1
    local bin=./target/debug/sga
    local tmp
    tmp=$(mktemp -d) || return 1
    "$bin" analyze tests/alarms --canonical --no-cache > "$tmp/base.json" || { rm -rf "$tmp"; return 1; }
    "$bin" analyze tests/alarms --canonical --no-cache --baseline "$tmp/base.json" > "$tmp/diff.json"
    local code=$?
    if [ "$code" -ne 0 ]; then
        echo "diag-gate: baseline-vs-self run exited $code" >&2
        rm -rf "$tmp"; return 1
    fi
    if ! grep -q '"new_definite": 0' "$tmp/diff.json" \
       || ! grep -q '"new": \[\]' "$tmp/diff.json" \
       || ! grep -q '"fixed": \[\]' "$tmp/diff.json"; then
        echo "diag-gate: baseline-vs-self diff is not empty" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

serve_gate() {
    # The incremental daemon, end to end over a real socket: start
    # `sga serve` on an ephemeral port, subscribe with `sga watch --once`,
    # script an alarm-swapping edit through `sga watch --edit`, and assert
    # the streamed diff event carries both a fixed and a new fingerprint.
    # Then the convergence invariant, over the wire: the daemon's
    # accumulated report must match a cold `sga analyze --no-cache
    # --canonical` batch run of the edited corpus (whitespace-normalized
    # here; the byte-exact comparison lives in the serve test suite).
    local bin=./target/debug/sga
    local tmp daemon watcher addr
    tmp=$(mktemp -d) || return 1
    mkdir "$tmp/corpus"
    printf 'int main() { int *buf = malloc(4); buf[9] = 1; return 0; }\n' \
        > "$tmp/corpus/lib.c"
    printf 'int main() { return 3; }\n' > "$tmp/corpus/app.c"
    "$bin" serve "$tmp/corpus" --no-cache --port-file "$tmp/port" \
        > "$tmp/serve.log" 2>&1 &
    daemon=$!
    for _ in $(seq 1 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    if [ ! -s "$tmp/port" ]; then
        echo "serve-gate: daemon never wrote its port file" >&2
        cat "$tmp/serve.log" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    addr=$(tr -d '[:space:]' < "$tmp/port")
    timeout 120 "$bin" watch "$addr" --once > "$tmp/event.json" &
    watcher=$!
    sleep 0.5   # let the subscriber register before the edit round fires
    printf 'int main() { int *buf = malloc(4); buf[0] = 1; return 0; }\nint other() { int *b = malloc(4); b[6] = 1; return 0; }\n' \
        > "$tmp/lib_v2.c"
    if ! "$bin" watch "$addr" --edit lib.c "$tmp/lib_v2.c" > /dev/null; then
        echo "serve-gate: scripted edit failed" >&2
        kill "$daemon" "$watcher" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    if ! wait "$watcher"; then
        echo "serve-gate: subscriber never received the diff event" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    if ! grep -qF '"event":"diff"' "$tmp/event.json" \
       || ! grep -qF '"fixed":["' "$tmp/event.json" \
       || ! grep -qF '"new":["' "$tmp/event.json"; then
        echo "serve-gate: diff event lacks the swapped alarm fingerprints:" >&2
        cat "$tmp/event.json" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    "$bin" watch "$addr" --report > "$tmp/live.json" || {
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    "$bin" analyze "$tmp/corpus" --no-cache --canonical > "$tmp/cold.json" || {
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    if ! cmp -s <(tr -d '[:space:]' < "$tmp/live.json") \
                <(tr -d '[:space:]' < "$tmp/cold.json"); then
        echo "serve-gate: daemon report diverged from the cold batch run" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    "$bin" watch "$addr" --shutdown > /dev/null
    if ! wait "$daemon"; then
        echo "serve-gate: daemon exited non-zero" >&2
        cat "$tmp/serve.log" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

ignore_gate() {
    # The precision suite must run in full: no test may be #[ignore]d, and
    # anything marked ignored elsewhere must still pass when forced.
    if grep -n '#\[ignore' tests/precision_preservation.rs; then
        echo "ignore-gate: #[ignore] found in tests/precision_preservation.rs" >&2
        return 1
    fi
    cargo test -q -- --ignored
}

run_stage "fmt"    cargo fmt --all -- --check
run_stage "clippy" cargo clippy --workspace --all-targets -- -D warnings
if [ "$QUICK" -eq 0 ]; then
    run_stage "build-release" cargo build --release
fi
run_stage "test"        cargo test -q
run_stage "diag-gate"   diag_gate
run_stage "ignore-gate" ignore_gate
# The fault-tolerance suite is cheap and guards invariants the other stages
# don't (panic isolation, sound degradation, cache self-healing), so it
# runs in --quick too.
run_stage "robustness"  cargo test -q -p sga --test robustness
# The daemon gate drives the debug binary (built by the test stage) over a
# real socket, so it is cheap enough for --quick too.
run_stage "serve-gate"  serve_gate
if [ "$QUICK" -eq 0 ]; then
    run_stage "bench-gate" \
        cargo run --release -p sga-bench --bin pipeline_bench -- --check BENCH_pipeline.json
    run_stage "serve-bench-gate" \
        cargo run --release -p sga-bench --bin serve_bench -- --check
fi

echo
echo "ci.sh summary:"
printf '  %-14s %-5s %ss\n' "stage" "result" "time"
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-14s %-5s %3ss\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}" "${STAGE_TIMES[$i]}"
done

if [ "$FAILED" -ne 0 ]; then
    echo "ci.sh: FAILED"
    exit 1
fi
echo "ci.sh: all green"
