#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test suite, the
# ignored-test gate, and the benchmark regression gate.
#
# Unlike a fail-fast script, every stage runs even after a failure so one
# pass reports everything that is broken; the final summary table shows
# per-stage pass/fail and the script exits non-zero if any stage failed.
#
# Usage: ci.sh [--quick] [--stage NAME] [--list]
#   --quick        skip the release build and the (release-built) bench
#                  gates — the fast pre-push configuration.
#   --stage NAME   run exactly one named stage (see ALL_STAGES below);
#                  exits 2 on an unknown name. Stages that drive the debug
#                  binary get it built on demand.
#   --list         print the stage table (name + what it guards) and exit
#                  without running anything.
set -uo pipefail
cd "$(dirname "$0")"

ALL_STAGES="fmt clippy build-release test diag-gate ignore-gate robustness serve-gate chaos-gate backend-gate triage-gate isolation-gate bench-gate serve-bench-gate"

QUICK=0
ONLY_STAGE=""
EXPECT_STAGE=0
LIST=0
for arg in "$@"; do
    if [ "$EXPECT_STAGE" -eq 1 ]; then
        ONLY_STAGE="$arg"; EXPECT_STAGE=0; continue
    fi
    case "$arg" in
        --quick) QUICK=1 ;;
        --stage) EXPECT_STAGE=1 ;;
        --list) LIST=1 ;;
        -h|--help) echo "usage: ci.sh [--quick] [--stage NAME] [--list]"; echo "stages: $ALL_STAGES"; exit 0 ;;
        *) echo "ci.sh: unknown argument '$arg' (usage: ci.sh [--quick] [--stage NAME] [--list])" >&2; exit 2 ;;
    esac
done
if [ "$EXPECT_STAGE" -eq 1 ]; then
    echo "ci.sh: --stage needs a name (one of: $ALL_STAGES)" >&2; exit 2
fi
if [ "$LIST" -eq 1 ]; then
    echo "ci.sh stages, in run order (* = skipped under --quick):"
    printf '  %-18s %s\n' \
        "fmt"              "rustfmt check over the whole workspace" \
        "clippy"           "clippy with -D warnings, all targets" \
        "build-release *"  "release build (tier-1)" \
        "test"             "cargo test -q: the full tier-1 suite" \
        "diag-gate"        "alarm triage: golden corpus, SARIF, baseline self-diff" \
        "ignore-gate"      "no #[ignore] in the precision suite; ignored tests pass" \
        "robustness"       "panic isolation, sound degradation, cache healing" \
        "serve-gate"       "daemon over a real socket: diff events + convergence" \
        "chaos-gate"       "kill -9 the daemon, restart --resume, convergence" \
        "backend-gate"     "bdd vs csr dependency backends byte-identical" \
        "triage-gate"      "--triage both strictly grows discharges; definite alarms untouched" \
        "isolation-gate"   "process workers byte-identical; abort/oom/spin survived" \
        "bench-gate *"     "pipeline benchmark regression thresholds" \
        "serve-bench-gate *" "daemon bench: latency, sparsity, flood shedding"
    exit 0
fi
if [ -n "$ONLY_STAGE" ]; then
    case " $ALL_STAGES " in
        *" $ONLY_STAGE "*) ;;
        *) echo "ci.sh: unknown stage '$ONLY_STAGE' (one of: $ALL_STAGES)" >&2; exit 2 ;;
    esac
    # The binary-driven gates normally ride on the debug build the `test`
    # stage leaves behind; a single-stage run must provide it itself.
    case "$ONLY_STAGE" in
        diag-gate|serve-gate|chaos-gate|backend-gate|triage-gate|isolation-gate)
            [ -x target/debug/sga ] || cargo build -q -p sga || exit 1 ;;
    esac
fi

STAGE_NAMES=()
STAGE_RESULTS=()
STAGE_TIMES=()
FAILED=0

run_stage() {
    local name="$1"; shift
    if [ -n "$ONLY_STAGE" ] && [ "$name" != "$ONLY_STAGE" ]; then
        return 0
    fi
    echo
    echo "== $name"
    local start=$SECONDS
    if "$@"; then
        STAGE_RESULTS+=("pass")
    else
        STAGE_RESULTS+=("FAIL")
        FAILED=1
    fi
    STAGE_NAMES+=("$name")
    STAGE_TIMES+=("$((SECONDS - start))")
}

diag_gate() {
    # The alarm-triage surface, end to end and offline: the golden alarm
    # corpus (fingerprints, octagon discharges, engine/widening agreement,
    # SARIF validation against the vendored 2.1.0 schema), then a
    # baseline-vs-self smoke over the corpus via the CLI — diffing a run
    # against itself must classify zero new and zero fixed diagnostics.
    cargo test -q -p sga --test diagnostics || return 1
    local bin=./target/debug/sga
    local tmp
    tmp=$(mktemp -d) || return 1
    "$bin" analyze tests/alarms --canonical --no-cache > "$tmp/base.json" || { rm -rf "$tmp"; return 1; }
    "$bin" analyze tests/alarms --canonical --no-cache --baseline "$tmp/base.json" > "$tmp/diff.json"
    local code=$?
    if [ "$code" -ne 0 ]; then
        echo "diag-gate: baseline-vs-self run exited $code" >&2
        rm -rf "$tmp"; return 1
    fi
    if ! grep -q '"new_definite": 0' "$tmp/diff.json" \
       || ! grep -q '"new": \[\]' "$tmp/diff.json" \
       || ! grep -q '"fixed": \[\]' "$tmp/diff.json"; then
        echo "diag-gate: baseline-vs-self diff is not empty" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

serve_gate() {
    # The incremental daemon, end to end over a real socket: start
    # `sga serve` on an ephemeral port, subscribe with `sga watch --once`,
    # script an alarm-swapping edit through `sga watch --edit`, and assert
    # the streamed diff event carries both a fixed and a new fingerprint.
    # Then the convergence invariant, over the wire: the daemon's
    # accumulated report must match a cold `sga analyze --no-cache
    # --canonical` batch run of the edited corpus (whitespace-normalized
    # here; the byte-exact comparison lives in the serve test suite).
    local bin=./target/debug/sga
    local tmp daemon watcher addr
    tmp=$(mktemp -d) || return 1
    mkdir "$tmp/corpus"
    printf 'int main() { int *buf = malloc(4); buf[9] = 1; return 0; }\n' \
        > "$tmp/corpus/lib.c"
    printf 'int main() { return 3; }\n' > "$tmp/corpus/app.c"
    "$bin" serve "$tmp/corpus" --no-cache --port-file "$tmp/port" \
        > "$tmp/serve.log" 2>&1 &
    daemon=$!
    for _ in $(seq 1 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    if [ ! -s "$tmp/port" ]; then
        echo "serve-gate: daemon never wrote its port file" >&2
        cat "$tmp/serve.log" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    addr=$(tr -d '[:space:]' < "$tmp/port")
    timeout 120 "$bin" watch "$addr" --once > "$tmp/event.json" &
    watcher=$!
    # The daemon acknowledges a subscription before registering it for
    # broadcast, and `sga watch` prints that ack line before any event —
    # wait for it instead of sleeping, so the edit round cannot fire
    # before the subscriber is in the broadcast set.
    for _ in $(seq 1 100); do
        grep -q '"subscribed"' "$tmp/event.json" 2>/dev/null && break
        sleep 0.1
    done
    if ! grep -q '"subscribed"' "$tmp/event.json" 2>/dev/null; then
        echo "serve-gate: watcher never acknowledged its subscription" >&2
        kill "$daemon" "$watcher" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    printf 'int main() { int *buf = malloc(4); buf[0] = 1; return 0; }\nint other() { int *b = malloc(4); b[6] = 1; return 0; }\n' \
        > "$tmp/lib_v2.c"
    if ! "$bin" watch "$addr" --edit lib.c "$tmp/lib_v2.c" > /dev/null; then
        echo "serve-gate: scripted edit failed" >&2
        kill "$daemon" "$watcher" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    if ! wait "$watcher"; then
        echo "serve-gate: subscriber never received the diff event" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    if ! grep -qF '"event":"diff"' "$tmp/event.json" \
       || ! grep -qF '"fixed":["' "$tmp/event.json" \
       || ! grep -qF '"new":["' "$tmp/event.json"; then
        echo "serve-gate: diff event lacks the swapped alarm fingerprints:" >&2
        cat "$tmp/event.json" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    "$bin" watch "$addr" --report > "$tmp/live.json" || {
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    "$bin" analyze "$tmp/corpus" --no-cache --canonical > "$tmp/cold.json" || {
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    if ! cmp -s <(tr -d '[:space:]' < "$tmp/live.json") \
                <(tr -d '[:space:]' < "$tmp/cold.json"); then
        echo "serve-gate: daemon report diverged from the cold batch run" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    "$bin" watch "$addr" --shutdown > /dev/null
    if ! wait "$daemon"; then
        echo "serve-gate: daemon exited non-zero" >&2
        cat "$tmp/serve.log" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

chaos_gate() {
    # Crash safety, operator-style: start the daemon with a cache (the
    # round journal lives under it), script an edit, quiesce with a
    # report, `kill -9` the process, restart with `--resume`, edit again,
    # and require the resumed daemon's report to match a cold batch run
    # (whitespace-normalized, as in serve-gate). The fine-grained
    # kill-point sweep — including kills aimed inside a stalled round —
    # lives in tests/serve_chaos.rs; this stage proves the same story for
    # the shipped binary driven exactly as an operator would drive it.
    local bin=./target/debug/sga
    local tmp daemon addr
    tmp=$(mktemp -d) || return 1
    mkdir "$tmp/corpus"
    printf 'int main() { int *buf = malloc(4); buf[9] = 1; return 0; }\n' \
        > "$tmp/corpus/lib.c"
    printf 'int main() { return 3; }\n' > "$tmp/corpus/app.c"
    "$bin" serve "$tmp/corpus" --cache-dir "$tmp/cache" --port-file "$tmp/port" \
        > "$tmp/serve1.log" 2>&1 &
    daemon=$!
    for _ in $(seq 1 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    if [ ! -s "$tmp/port" ]; then
        echo "chaos-gate: daemon never wrote its port file" >&2
        cat "$tmp/serve1.log" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    addr=$(tr -d '[:space:]' < "$tmp/port")
    printf 'int main() { return 41; }\n' > "$tmp/app_v2.c"
    "$bin" watch "$addr" --edit app.c "$tmp/app_v2.c" > /dev/null || {
        echo "chaos-gate: pre-kill edit failed" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    # A report is served by the same engine thread, strictly after the
    # edit round — once it answers, the round is journaled.
    "$bin" watch "$addr" --report > /dev/null || {
        echo "chaos-gate: pre-kill report failed" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    kill -9 "$daemon" 2>/dev/null
    wait "$daemon" 2>/dev/null
    rm -f "$tmp/port"
    "$bin" serve "$tmp/corpus" --cache-dir "$tmp/cache" --port-file "$tmp/port" \
        --resume > "$tmp/serve2.log" 2>&1 &
    daemon=$!
    for _ in $(seq 1 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    if [ ! -s "$tmp/port" ]; then
        echo "chaos-gate: resumed daemon never wrote its port file" >&2
        cat "$tmp/serve2.log" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    addr=$(tr -d '[:space:]' < "$tmp/port")
    # The restart must be warm: both units replayed from the journal, no
    # re-analysis.
    if ! grep -q "2 resumed from journal" "$tmp/serve2.log"; then
        echo "chaos-gate: restart did not warm-resume from the journal:" >&2
        cat "$tmp/serve2.log" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    printf 'int main() { int *buf = malloc(4); buf[0] = 1; return 0; }\n' \
        > "$tmp/lib_v2.c"
    "$bin" watch "$addr" --edit lib.c "$tmp/lib_v2.c" > /dev/null || {
        echo "chaos-gate: post-resume edit failed" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    "$bin" watch "$addr" --report > "$tmp/live.json" || {
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    "$bin" analyze "$tmp/corpus" --no-cache --canonical > "$tmp/cold.json" || {
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1; }
    if ! cmp -s <(tr -d '[:space:]' < "$tmp/live.json") \
                <(tr -d '[:space:]' < "$tmp/cold.json"); then
        echo "chaos-gate: resumed daemon diverged from the cold batch run" >&2
        kill "$daemon" 2>/dev/null; rm -rf "$tmp"; return 1
    fi
    "$bin" watch "$addr" --shutdown > /dev/null
    if ! wait "$daemon"; then
        echo "chaos-gate: resumed daemon exited non-zero" >&2
        cat "$tmp/serve2.log" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

backend_gate() {
    # Representation independence, end to end: the BDD/set dependency store
    # and the lowered CSR store (compact adjacency + flat worklist) must
    # produce byte-identical canonical reports on the golden alarm corpus.
    # The cache is off and the key differs per backend anyway, so neither
    # run can serve the other's entries.
    local bin=./target/debug/sga
    local tmp
    tmp=$(mktemp -d) || return 1
    "$bin" analyze tests/alarms --canonical --no-cache --dep-backend bdd \
        > "$tmp/bdd.json" || { rm -rf "$tmp"; return 1; }
    "$bin" analyze tests/alarms --canonical --no-cache --dep-backend csr \
        > "$tmp/csr.json" || { rm -rf "$tmp"; return 1; }
    if ! cmp -s "$tmp/bdd.json" "$tmp/csr.json"; then
        echo "backend-gate: canonical reports differ across dep backends:" >&2
        diff "$tmp/bdd.json" "$tmp/csr.json" | head -20 >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

triage_gate() {
    # The path-condition layer's contract, end to end: over the golden
    # alarm corpus, `--triage both` must discharge *strictly more* alarms
    # than `--triage octagon` (the path_*.c cases exist precisely to keep
    # this strict), the octagon-method discharges must be identical in
    # both runs (the path pass only ever adds), every added discharge must
    # carry a path_infeasible proving pack, and the definite alarms —
    # which no triage layer may ever touch — must be byte-identical.
    local bin=./target/debug/sga
    local tmp oct both oct_methods both_oct_methods path_methods
    tmp=$(mktemp -d) || return 1
    "$bin" analyze tests/alarms --canonical --no-cache --triage octagon \
        > "$tmp/oct.json" || { rm -rf "$tmp"; return 1; }
    "$bin" analyze tests/alarms --canonical --no-cache --triage both \
        > "$tmp/both.json" || { rm -rf "$tmp"; return 1; }
    oct=$(grep -c '"status": "discharged"' "$tmp/oct.json")
    both=$(grep -c '"status": "discharged"' "$tmp/both.json")
    if [ "$both" -le "$oct" ]; then
        echo "triage-gate: both mode discharged $both, octagon $oct — want strictly more" >&2
        rm -rf "$tmp"; return 1
    fi
    oct_methods=$(grep -c '"method": "octagon"' "$tmp/oct.json")
    both_oct_methods=$(grep -c '"method": "octagon"' "$tmp/both.json")
    if [ "$oct_methods" -ne "$both_oct_methods" ]; then
        echo "triage-gate: octagon discharges changed under both mode ($oct_methods -> $both_oct_methods)" >&2
        rm -rf "$tmp"; return 1
    fi
    path_methods=$(grep -c '"method": "path_infeasible"' "$tmp/both.json")
    if [ "$path_methods" -ne "$((both - oct))" ]; then
        echo "triage-gate: $((both - oct)) added discharges but $path_methods path_infeasible packs" >&2
        rm -rf "$tmp"; return 1
    fi
    # Every definite alarm, identified by its kind/cp/line/proc/subject
    # block, must survive both runs untouched.
    grep -B7 '"definite": true' "$tmp/oct.json"  > "$tmp/oct-definite.txt"
    grep -B7 '"definite": true' "$tmp/both.json" > "$tmp/both-definite.txt"
    if ! cmp -s "$tmp/oct-definite.txt" "$tmp/both-definite.txt"; then
        echo "triage-gate: definite alarms differ across triage modes:" >&2
        diff "$tmp/oct-definite.txt" "$tmp/both-definite.txt" | head -20 >&2
        rm -rf "$tmp"; return 1
    fi
    if [ ! -s "$tmp/oct-definite.txt" ]; then
        echo "triage-gate: corpus holds no definite alarms to protect" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

isolation_gate() {
    # The process-isolated worker pool, driven as an operator would: the
    # canonical report must be byte-identical to the in-thread engine at
    # --jobs 1 and 4, and a batch seeded with an abort, a 4 GiB OOM, and a
    # spinning worker must finish with exactly those three units crashed
    # (exit 3) while the parent stays alive to render the report. Finally
    # a hard stall: a worker spinning past --worker-timeout-ms must be
    # SIGKILLed by the supervisor and counted as a stall.
    local bin=./target/debug/sga
    local tmp code
    tmp=$(mktemp -d) || return 1
    for jobs in 1 4; do
        "$bin" analyze --corpus units=4,kloc=1,seed=11 --canonical --no-cache \
            --jobs "$jobs" > "$tmp/thread$jobs.json" || { rm -rf "$tmp"; return 1; }
        "$bin" analyze --corpus units=4,kloc=1,seed=11 --canonical --no-cache \
            --jobs "$jobs" --isolation process > "$tmp/process$jobs.json" \
            || { rm -rf "$tmp"; return 1; }
        if ! cmp -s "$tmp/thread$jobs.json" "$tmp/process$jobs.json"; then
            echo "isolation-gate: thread/process reports differ at --jobs $jobs:" >&2
            diff "$tmp/thread$jobs.json" "$tmp/process$jobs.json" | head -20 >&2
            rm -rf "$tmp"; return 1
        fi
    done
    if ! cmp -s "$tmp/thread1.json" "$tmp/thread4.json"; then
        echo "isolation-gate: reports differ across --jobs" >&2
        rm -rf "$tmp"; return 1
    fi
    "$bin" analyze --corpus units=8,kloc=1,seed=11 --no-cache --jobs 2 \
        --isolation process --worker-mem-mb 512 --worker-timeout-ms 60000 \
        --faults abort@2,oom@4=4096,spin@6=500 > "$tmp/faulted.json"
    code=$?
    if [ "$code" -ne 3 ]; then
        echo "isolation-gate: fault mix exited $code, want 3 (crashed units)" >&2
        rm -rf "$tmp"; return 1
    fi
    if ! grep -q '"crashed": 3' "$tmp/faulted.json"; then
        echo "isolation-gate: fault mix did not crash exactly 3 units:" >&2
        grep '"crashed"' "$tmp/faulted.json" >&2
        rm -rf "$tmp"; return 1
    fi
    timeout 60 "$bin" analyze --corpus units=1,kloc=1,seed=11 --no-cache \
        --isolation process --worker-timeout-ms 1500 \
        --faults spin@0=120000 > "$tmp/stall.json"
    code=$?
    if [ "$code" -ne 3 ]; then
        echo "isolation-gate: stalled run exited $code, want 3" >&2
        rm -rf "$tmp"; return 1
    fi
    if ! grep -q '"stalls": [1-9]' "$tmp/stall.json"; then
        echo "isolation-gate: supervisor recorded no stall kills:" >&2
        grep '"isolation"' -A6 "$tmp/stall.json" >&2
        rm -rf "$tmp"; return 1
    fi
    rm -rf "$tmp"
}

ignore_gate() {
    # The precision suite must run in full: no test may be #[ignore]d, and
    # anything marked ignored elsewhere must still pass when forced.
    if grep -n '#\[ignore' tests/precision_preservation.rs; then
        echo "ignore-gate: #[ignore] found in tests/precision_preservation.rs" >&2
        return 1
    fi
    cargo test -q -- --ignored
}

run_stage "fmt"    cargo fmt --all -- --check
run_stage "clippy" cargo clippy --workspace --all-targets -- -D warnings
if [ "$QUICK" -eq 0 ] || [ -n "$ONLY_STAGE" ]; then
    run_stage "build-release" cargo build --release
fi
run_stage "test"        cargo test -q
run_stage "diag-gate"   diag_gate
run_stage "ignore-gate" ignore_gate
# The fault-tolerance suite is cheap and guards invariants the other stages
# don't (panic isolation, sound degradation, cache self-healing), so it
# runs in --quick too.
run_stage "robustness"  cargo test -q -p sga --test robustness
# The daemon gate drives the debug binary (built by the test stage) over a
# real socket, so it is cheap enough for --quick too.
run_stage "serve-gate"  serve_gate
# The chaos gate proves crash-safe warm restart (kill -9, --resume,
# convergence) with the same cheap debug-binary recipe, so it runs in
# --quick too.
run_stage "chaos-gate"  chaos_gate
# The backend equivalence gate also drives the debug binary and must hold
# in every configuration, so it runs in --quick too.
run_stage "backend-gate" backend_gate
# The triage gate pins the path layer's superset/definite contract with
# the same cheap debug-binary recipe, so it runs in --quick too.
run_stage "triage-gate" triage_gate
# The isolation gate proves the process worker pool reproduces the thread
# engine byte-for-byte and survives fatal faults; it drives the debug
# binary and runs in --quick too.
run_stage "isolation-gate" isolation_gate
if [ "$QUICK" -eq 0 ] || [ -n "$ONLY_STAGE" ]; then
    run_stage "bench-gate" \
        cargo run --release -p sga-bench --bin pipeline_bench -- --check BENCH_pipeline.json
    run_stage "serve-bench-gate" \
        cargo run --release -p sga-bench --bin serve_bench -- --check
fi

echo
echo "ci.sh summary:"
printf '  %-14s %-5s %ss\n' "stage" "result" "time"
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-14s %-5s %3ss\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}" "${STAGE_TIMES[$i]}"
done

if [ "$FAILED" -ne 0 ]; then
    echo "ci.sh: FAILED"
    exit 1
fi
echo "ci.sh: all green"
