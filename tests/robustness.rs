//! Robustness suite: the fault-tolerance guarantees of the batch driver.
//!
//! * a panicking unit is isolated and recorded; the rest of the batch
//!   completes and the report stays deterministic at any `--jobs`;
//! * budget exhaustion degrades *soundly* — every degraded binding covers
//!   the corresponding unbounded binding;
//! * the cache heals itself from truncated, bit-flipped, and stale-schema
//!   entries without changing the report;
//! * transient cache IO errors are retried and cost nothing;
//! * the frontend rejects malformed C with structured errors, never panics;
//! * a partial failure surfaces as exit code 3 from `sga analyze`.

use sga::analysis::budget::Budget;
use sga::analysis::interval::{analyze, analyze_with, AnalyzeOptions, Engine};
use sga::domains::Lattice;
use sga::pipeline::fault::FaultPlan;
use sga::pipeline::{run, PipelineError, PipelineOptions, Project};
use sga::utils::{fxhash, Json};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn corpus(units: usize) -> Project {
    Project::Corpus {
        units,
        kloc: 1,
        seed: 11,
    }
}

/// A fresh (empty) scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---- panic isolation ---------------------------------------------------

#[test]
fn crashed_unit_is_isolated_and_report_stays_deterministic() {
    let faults = FaultPlan::parse("panic@1").unwrap();
    let render = |jobs: usize, faults: &FaultPlan| {
        run(
            &corpus(4),
            &PipelineOptions {
                jobs,
                canonical: true,
                faults: faults.clone(),
                ..PipelineOptions::default()
            },
        )
        .expect("keep-going run succeeds despite the crash")
    };

    let clean = render(1, &FaultPlan::none());
    let faulted = render(1, &faults);

    // The headline invariant survives injected panics: byte-identical
    // canonical reports at any worker count.
    for jobs in [2, 8] {
        assert_eq!(
            faulted.to_pretty(),
            render(jobs, &faults).to_pretty(),
            "faulted report differs between jobs=1 and jobs={jobs}"
        );
    }

    // The crash is recorded, not propagated.
    let units = faulted.get("units").unwrap().as_arr().unwrap();
    assert_eq!(
        units[1].get("outcome").unwrap().as_str().unwrap(),
        "crashed"
    );
    assert!(units[1]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("injected fault"));
    let totals = faulted.get("totals").unwrap();
    assert_eq!(totals.get("crashed").unwrap().as_u64(), Some(1));

    // Blast-radius containment: every unit the plan does not touch reports
    // byte-identically to the fault-free run.
    let clean_units = clean.get("units").unwrap().as_arr().unwrap();
    for i in [0usize, 2, 3] {
        assert_eq!(
            units[i].to_pretty(),
            clean_units[i].to_pretty(),
            "fault leaked into unit {i}"
        );
    }
}

#[test]
fn fail_fast_aborts_on_first_crash() {
    let err = run(
        &corpus(3),
        &PipelineOptions {
            keep_going: false,
            faults: FaultPlan::parse("panic@2").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .expect_err("fail-fast must surface the crash");
    match err {
        PipelineError::Crashed { unit, message } => {
            assert_eq!(unit, "unit002");
            assert!(message.contains("injected fault"));
        }
        other => panic!("expected Crashed, got {other}"),
    }
}

// ---- budgets and sound degradation -------------------------------------

#[test]
fn budget_degradation_is_sound() {
    let src = sga::cgen::generate(&sga::cgen::GenConfig::sized(13, 1));
    let program = sga::frontend::parse(&src).expect("generated source parses");

    for engine in [Engine::Sparse, Engine::Base] {
        let full = analyze(&program, engine);
        assert!(!full.stats.degraded, "{engine:?}: unbounded run degraded");
        assert!(full.stats.iterations > 0);

        let degraded = analyze_with(
            &program,
            engine,
            AnalyzeOptions {
                budget: Budget::with_max_steps(8),
                ..AnalyzeOptions::default()
            },
        );
        assert!(
            degraded.stats.degraded,
            "{engine:?}: an 8-step budget must exhaust on a 1-kloc unit"
        );

        // Soundness of degradation: binding for binding, the degraded
        // fixpoint over-approximates the unbounded one.
        for (cp, st) in &full.values {
            for (loc, v) in st.iter() {
                let dv = degraded.value_at(*cp, loc);
                assert!(
                    v.le(&dv),
                    "{engine:?} at {cp} {loc:?}: degraded {dv:?} does not cover {v:?}"
                );
            }
        }
    }
}

#[test]
fn pipeline_marks_budget_exhaustion_degraded() {
    let report = run(
        &corpus(2),
        &PipelineOptions {
            budget: Budget::with_max_steps(8),
            canonical: true,
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("crashed").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("degraded").unwrap().as_u64(), Some(2));
    for unit in report.get("units").unwrap().as_arr().unwrap() {
        assert_eq!(unit.get("outcome").unwrap().as_str().unwrap(), "degraded");
    }
}

#[test]
fn injected_budget_degrades_only_its_target() {
    let report = run(
        &corpus(2),
        &PipelineOptions {
            canonical: true,
            faults: FaultPlan::parse("budget@0=8").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let units = report.get("units").unwrap().as_arr().unwrap();
    assert_eq!(
        units[0].get("outcome").unwrap().as_str().unwrap(),
        "degraded"
    );
    assert_eq!(units[1].get("outcome").unwrap().as_str().unwrap(), "ok");
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("degraded").unwrap().as_u64(), Some(1));
}

// ---- cache self-healing ------------------------------------------------

/// The cache entry files under `dir` (quarantine excluded), name-sorted.
fn cache_entries(dir: &PathBuf) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    entries
}

fn truncate_file(path: &PathBuf) {
    let len = std::fs::metadata(path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len / 2).unwrap();
}

fn bitflip_file(path: &PathBuf) {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mid = std::fs::metadata(path).unwrap().len() / 2;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(mid)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0x40;
    file.seek(SeekFrom::Start(mid)).unwrap();
    file.write_all(&byte).unwrap();
}

/// Rewrites a cache entry as a *stale-schema* entry: the payload claims an
/// old format version but carries a valid checksum — the decoder must
/// reject it on the schema check, not the checksum.
fn stale_schema_file(path: &PathBuf) {
    let mut j = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let mut payload = j.get("payload").unwrap().clone();
    payload.set("schema", 1u32);
    let checksum = fxhash::hash_one(&payload.to_compact());
    j.set("checksum", format!("{checksum:016x}"));
    j.set("payload", payload);
    std::fs::write(path, j.to_pretty()).unwrap();
}

#[test]
fn cache_self_heals_from_damaged_entries() {
    let dir = scratch_dir("heal");
    let opts = PipelineOptions {
        cache_dir: Some(dir.clone()),
        canonical: true,
        ..PipelineOptions::default()
    };

    let cold = run(&corpus(3), &opts).unwrap().to_pretty();

    // Damage every entry, each in a different way.
    let entries = cache_entries(&dir);
    assert_eq!(entries.len(), 3, "expected one entry per unit");
    truncate_file(&entries[0]);
    bitflip_file(&entries[1]);
    stale_schema_file(&entries[2]);

    // The damaged run recomputes transparently: same report as cold.
    let healed = run(&corpus(3), &opts).unwrap().to_pretty();
    assert_eq!(healed, cold, "self-healed report differs from cold run");

    // The evidence moved into quarantine/ ...
    assert_eq!(
        std::fs::read_dir(dir.join("quarantine")).unwrap().count(),
        3
    );

    // ... and the rewritten entries serve hits again.
    let warm = run(&corpus(3), &opts).unwrap();
    let rate = warm
        .get("totals")
        .unwrap()
        .get("hit_rate")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((rate - 1.0).abs() < 1e-9, "expected full hits, got {rate}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_store_errors_are_retried_and_cost_nothing() {
    let dir = scratch_dir("retry");

    // First run: unit 0's first two store attempts fail with injected IO
    // errors; the bounded retry must land the entry anyway.
    let faulted = run(
        &corpus(2),
        &PipelineOptions {
            cache_dir: Some(dir.clone()),
            faults: FaultPlan::parse("io@0=2").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let health = faulted.get("cache_health").unwrap();
    assert_eq!(health.get("io_retries").unwrap().as_u64(), Some(2));
    assert_eq!(health.get("store_errors").unwrap().as_u64(), Some(0));

    // IO faults do not change the key, so a fault-free second run hits
    // every entry — the fault cost nothing.
    let warm = run(
        &corpus(2),
        &PipelineOptions {
            cache_dir: Some(dir.clone()),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let totals = warm.get("totals").unwrap();
    assert_eq!(totals.get("cache_misses").unwrap().as_u64(), Some(0));
    assert!(totals.get("cache_hits").unwrap().as_u64().unwrap() > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---- frontend hardening ------------------------------------------------

#[test]
fn malformed_corpus_is_rejected_with_structured_errors() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/malformed");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/malformed exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 10,
        "malformed corpus shrank to {} files",
        files.len()
    );

    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        match std::panic::catch_unwind(|| sga::frontend::parse(&src)) {
            Ok(Err(e)) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{name}: empty error message");
            }
            Ok(Ok(_)) => panic!("{name}: malformed input parsed successfully"),
            Err(_) => panic!("{name}: frontend panicked instead of erroring"),
        }
    }
}

// ---- CLI exit codes ----------------------------------------------------

#[test]
fn partial_failure_exits_with_code_3() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sga"))
        .args([
            "analyze",
            "--corpus",
            "units=2,kloc=1,seed=11",
            "--no-cache",
            "--canonical",
            "--faults",
            "panic@0",
        ])
        .output()
        .expect("sga binary runs");
    assert_eq!(out.status.code(), Some(3), "partial failure must exit 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"crashed\": 1"),
        "report missing crash total"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unit(s) crashed"),
        "stderr missing partial-failure notice: {stderr:?}"
    );
}
