//! Robustness suite: the fault-tolerance guarantees of the batch driver.
//!
//! * a panicking unit is isolated and recorded; the rest of the batch
//!   completes and the report stays deterministic at any `--jobs`;
//! * budget exhaustion degrades *soundly* — every degraded binding covers
//!   the corresponding unbounded binding;
//! * the cache heals itself from truncated, bit-flipped, and stale-schema
//!   entries without changing the report;
//! * transient cache IO errors are retried and cost nothing;
//! * the frontend rejects malformed C with structured errors, never panics;
//! * a partial failure surfaces as exit code 3 from `sga analyze`.

use sga::analysis::budget::Budget;
use sga::analysis::interval::{analyze, analyze_with, AnalyzeOptions, Engine};
use sga::domains::Lattice;
use sga::pipeline::fault::FaultPlan;
use sga::pipeline::{run, PipelineError, PipelineOptions, Project};
use sga::utils::{fxhash, Json};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn corpus(units: usize) -> Project {
    Project::Corpus {
        units,
        kloc: 1,
        seed: 11,
    }
}

/// A fresh (empty) scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---- panic isolation ---------------------------------------------------

#[test]
fn crashed_unit_is_isolated_and_report_stays_deterministic() {
    let faults = FaultPlan::parse("panic@1").unwrap();
    let render = |jobs: usize, faults: &FaultPlan| {
        run(
            &corpus(4),
            &PipelineOptions {
                jobs,
                canonical: true,
                faults: faults.clone(),
                ..PipelineOptions::default()
            },
        )
        .expect("keep-going run succeeds despite the crash")
    };

    let clean = render(1, &FaultPlan::none());
    let faulted = render(1, &faults);

    // The headline invariant survives injected panics: byte-identical
    // canonical reports at any worker count.
    for jobs in [2, 8] {
        assert_eq!(
            faulted.to_pretty(),
            render(jobs, &faults).to_pretty(),
            "faulted report differs between jobs=1 and jobs={jobs}"
        );
    }

    // The crash is recorded, not propagated.
    let units = faulted.get("units").unwrap().as_arr().unwrap();
    assert_eq!(
        units[1].get("outcome").unwrap().as_str().unwrap(),
        "crashed"
    );
    assert!(units[1]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("injected fault"));
    let totals = faulted.get("totals").unwrap();
    assert_eq!(totals.get("crashed").unwrap().as_u64(), Some(1));

    // Blast-radius containment: every unit the plan does not touch reports
    // byte-identically to the fault-free run.
    let clean_units = clean.get("units").unwrap().as_arr().unwrap();
    for i in [0usize, 2, 3] {
        assert_eq!(
            units[i].to_pretty(),
            clean_units[i].to_pretty(),
            "fault leaked into unit {i}"
        );
    }
}

#[test]
fn fail_fast_aborts_on_first_crash() {
    let err = run(
        &corpus(3),
        &PipelineOptions {
            keep_going: false,
            faults: FaultPlan::parse("panic@2").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .expect_err("fail-fast must surface the crash");
    match err {
        PipelineError::Crashed { unit, message } => {
            assert_eq!(unit, "unit002");
            assert!(message.contains("injected fault"));
        }
        other => panic!("expected Crashed, got {other}"),
    }
}

// ---- budgets and sound degradation -------------------------------------

#[test]
fn budget_degradation_is_sound() {
    let src = sga::cgen::generate(&sga::cgen::GenConfig::sized(13, 1));
    let program = sga::frontend::parse(&src).expect("generated source parses");

    for engine in [Engine::Sparse, Engine::Base] {
        let full = analyze(&program, engine);
        assert!(!full.stats.degraded, "{engine:?}: unbounded run degraded");
        assert!(full.stats.iterations > 0);

        let degraded = analyze_with(
            &program,
            engine,
            AnalyzeOptions {
                budget: Budget::with_max_steps(8),
                ..AnalyzeOptions::default()
            },
        );
        assert!(
            degraded.stats.degraded,
            "{engine:?}: an 8-step budget must exhaust on a 1-kloc unit"
        );

        // Soundness of degradation: binding for binding, the degraded
        // fixpoint over-approximates the unbounded one.
        for (cp, st) in &full.values {
            for (loc, v) in st.iter() {
                let dv = degraded.value_at(*cp, loc);
                assert!(
                    v.le(&dv),
                    "{engine:?} at {cp} {loc:?}: degraded {dv:?} does not cover {v:?}"
                );
            }
        }
    }
}

#[test]
fn pipeline_marks_budget_exhaustion_degraded() {
    let report = run(
        &corpus(2),
        &PipelineOptions {
            budget: Budget::with_max_steps(8),
            canonical: true,
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("crashed").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("degraded").unwrap().as_u64(), Some(2));
    for unit in report.get("units").unwrap().as_arr().unwrap() {
        assert_eq!(unit.get("outcome").unwrap().as_str().unwrap(), "degraded");
    }
}

#[test]
fn injected_budget_degrades_only_its_target() {
    let report = run(
        &corpus(2),
        &PipelineOptions {
            canonical: true,
            faults: FaultPlan::parse("budget@0=8").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let units = report.get("units").unwrap().as_arr().unwrap();
    assert_eq!(
        units[0].get("outcome").unwrap().as_str().unwrap(),
        "degraded"
    );
    assert_eq!(units[1].get("outcome").unwrap().as_str().unwrap(), "ok");
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("degraded").unwrap().as_u64(), Some(1));
}

// ---- cache self-healing ------------------------------------------------

/// The cache entry files under `dir` (quarantine excluded), name-sorted.
fn cache_entries(dir: &PathBuf) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    entries
}

fn truncate_file(path: &PathBuf) {
    let len = std::fs::metadata(path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len / 2).unwrap();
}

fn bitflip_file(path: &PathBuf) {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mid = std::fs::metadata(path).unwrap().len() / 2;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(mid)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0x40;
    file.seek(SeekFrom::Start(mid)).unwrap();
    file.write_all(&byte).unwrap();
}

/// Rewrites a cache entry as a *stale-schema* entry: the payload claims an
/// old format version but carries a valid checksum — the decoder must
/// reject it on the schema check, not the checksum.
fn stale_schema_file(path: &PathBuf) {
    let mut j = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let mut payload = j.get("payload").unwrap().clone();
    payload.set("schema", 1u32);
    let checksum = fxhash::hash_one(&payload.to_compact());
    j.set("checksum", format!("{checksum:016x}"));
    j.set("payload", payload);
    std::fs::write(path, j.to_pretty()).unwrap();
}

#[test]
fn cache_self_heals_from_damaged_entries() {
    let dir = scratch_dir("heal");
    let opts = PipelineOptions {
        cache_dir: Some(dir.clone()),
        canonical: true,
        ..PipelineOptions::default()
    };

    let cold = run(&corpus(3), &opts).unwrap().to_pretty();

    // Damage every entry, each in a different way.
    let entries = cache_entries(&dir);
    assert_eq!(entries.len(), 3, "expected one entry per unit");
    truncate_file(&entries[0]);
    bitflip_file(&entries[1]);
    stale_schema_file(&entries[2]);

    // The damaged run recomputes transparently: same report as cold.
    let healed = run(&corpus(3), &opts).unwrap().to_pretty();
    assert_eq!(healed, cold, "self-healed report differs from cold run");

    // The evidence moved into quarantine/ ...
    assert_eq!(
        std::fs::read_dir(dir.join("quarantine")).unwrap().count(),
        3
    );

    // ... and the rewritten entries serve hits again.
    let warm = run(&corpus(3), &opts).unwrap();
    let rate = warm
        .get("totals")
        .unwrap()
        .get("hit_rate")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((rate - 1.0).abs() < 1e-9, "expected full hits, got {rate}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_store_errors_are_retried_and_cost_nothing() {
    let dir = scratch_dir("retry");

    // First run: unit 0's first two store attempts fail with injected IO
    // errors; the bounded retry must land the entry anyway.
    let faulted = run(
        &corpus(2),
        &PipelineOptions {
            cache_dir: Some(dir.clone()),
            faults: FaultPlan::parse("io@0=2").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let health = faulted.get("cache_health").unwrap();
    assert_eq!(health.get("io_retries").unwrap().as_u64(), Some(2));
    assert_eq!(health.get("store_errors").unwrap().as_u64(), Some(0));

    // IO faults do not change the key, so a fault-free second run hits
    // every entry — the fault cost nothing.
    let warm = run(
        &corpus(2),
        &PipelineOptions {
            cache_dir: Some(dir.clone()),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let totals = warm.get("totals").unwrap();
    assert_eq!(totals.get("cache_misses").unwrap().as_u64(), Some(0));
    assert!(totals.get("cache_hits").unwrap().as_u64().unwrap() > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---- frontend hardening ------------------------------------------------

#[test]
fn malformed_corpus_is_rejected_with_structured_errors() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/malformed");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/malformed exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 10,
        "malformed corpus shrank to {} files",
        files.len()
    );

    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        match std::panic::catch_unwind(|| sga::frontend::parse(&src)) {
            Ok(Err(e)) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{name}: empty error message");
            }
            Ok(Ok(_)) => panic!("{name}: malformed input parsed successfully"),
            Err(_) => panic!("{name}: frontend panicked instead of erroring"),
        }
    }
}

// ---- durability: journal, resume, graceful shutdown --------------------

/// Runs `sga analyze` on the 4-unit robustness corpus with extra args.
fn sga_analyze(units: usize, extra: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_sga"))
        .arg("analyze")
        .args(["--corpus", &format!("units={units},kloc=1,seed=11")])
        .args(extra)
        .output()
        .expect("sga binary runs")
}

/// The committed journal records under `dir/journal`, if any.
fn journal_records(dir: &Path) -> usize {
    std::fs::read_dir(dir.join("journal")).map_or(0, |entries| {
        entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .count()
    })
}

/// A run killed by `abort@2` (a hard `std::process::abort`, no unwinding,
/// no flush — an OOM kill as far as the next run can tell) must leave a
/// replayable journal, and `--resume` must reproduce the uninterrupted
/// run's canonical report byte for byte — at any worker count.
#[test]
fn abort_then_resume_reproduces_the_uninterrupted_report() {
    for jobs in [1usize, 4] {
        let jobs_s = jobs.to_string();
        let dir = scratch_dir(&format!("abort-j{jobs}"));
        let dir_s = dir.to_string_lossy().into_owned();

        // jobs=4 claims every unit at once, so the aborting unit stalls
        // first to give its siblings time to commit their records.
        let faults = if jobs == 1 {
            "abort@2".to_string()
        } else {
            // The stall must outlast a sibling's full analyze + octagon
            // triage in a debug build (~2s each); on a loaded single-CPU
            // host the three siblings run serially, so the window must
            // cover their *sum* plus contention headroom.
            "stall@2=15000,abort@2".to_string()
        };
        let killed = sga_analyze(
            4,
            &[
                "--cache-dir",
                &dir_s,
                "--canonical",
                "--jobs",
                &jobs_s,
                "--faults",
                &faults,
            ],
        );
        assert!(
            !killed.status.success(),
            "jobs={jobs}: abort@2 must kill the run"
        );
        assert!(
            journal_records(&dir) >= 1,
            "jobs={jobs}: the killed run committed no journal records"
        );

        let resumed = sga_analyze(
            4,
            &[
                "--cache-dir",
                &dir_s,
                "--canonical",
                "--jobs",
                &jobs_s,
                "--resume",
            ],
        );
        assert_eq!(
            resumed.status.code(),
            Some(0),
            "jobs={jobs}: resume failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );

        let fresh_dir = scratch_dir(&format!("abort-fresh-j{jobs}"));
        let fresh = sga_analyze(
            4,
            &[
                "--cache-dir",
                &fresh_dir.to_string_lossy(),
                "--canonical",
                "--jobs",
                &jobs_s,
            ],
        );
        assert_eq!(fresh.status.code(), Some(0));
        assert_eq!(
            String::from_utf8_lossy(&resumed.stdout),
            String::from_utf8_lossy(&fresh.stdout),
            "jobs={jobs}: resumed report differs from the uninterrupted run"
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fresh_dir);
    }
}

/// A drained run (here via the `stop@1` fault) journals what it finished;
/// the resume replays those records — visible in the report's `journal`
/// block — instead of recomputing, and the canonical fields match an
/// uninterrupted run's.
#[test]
fn resume_serves_journaled_units_without_recompute() {
    let dir = scratch_dir("resume-replay");
    let opts = |faults: &str, resume: bool| PipelineOptions {
        cache_dir: Some(dir.clone()),
        faults: FaultPlan::parse(faults).unwrap(),
        resume,
        ..PipelineOptions::default()
    };

    let stopped = run(&corpus(4), &opts("stop@1", false)).unwrap();
    assert_eq!(stopped.get("interrupted").unwrap().as_bool(), Some(true));
    let totals = stopped.get("totals").unwrap();
    assert_eq!(totals.get("skipped").unwrap().as_u64(), Some(2));
    let outcomes: Vec<&str> = stopped
        .get("units")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|u| u.get("outcome").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(outcomes, ["ok", "ok", "skipped", "skipped"]);
    assert_eq!(
        stopped
            .get("journal")
            .unwrap()
            .get("recorded")
            .unwrap()
            .as_u64(),
        Some(2),
        "the drained run must journal both finished units"
    );

    let resumed = run(&corpus(4), &opts("", true)).unwrap();
    assert_eq!(resumed.get("interrupted").unwrap().as_bool(), Some(false));
    let journal = resumed.get("journal").unwrap();
    assert_eq!(
        journal.get("replayed").unwrap().as_u64(),
        Some(2),
        "resume must serve the two journaled units from their records"
    );
    assert_eq!(journal.get("recorded").unwrap().as_u64(), Some(2));

    // The canonical fields of the resumed report match an uninterrupted
    // run's — including the replayed units' recorded `"cache": "miss"`.
    let fresh_dir = scratch_dir("resume-fresh");
    let fresh = run(
        &corpus(4),
        &PipelineOptions {
            cache_dir: Some(fresh_dir.clone()),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    for field in ["units", "totals"] {
        assert_eq!(
            resumed.get(field).unwrap().to_pretty(),
            fresh.get(field).unwrap().to_pretty(),
            "resumed `{field}` differ from the uninterrupted run"
        );
    }

    // A completed resume retires the journal.
    assert_eq!(journal_records(&dir), 0);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh_dir);
}

/// SIGTERM mid-batch: in-flight units finish, unclaimed units are skipped,
/// the partial report is well-formed JSON marked `interrupted` with exit
/// code 5 — and a follow-up `--resume` completes the batch.
#[cfg(unix)]
#[test]
fn sigterm_flushes_a_resumable_partial_report() {
    let dir = scratch_dir("sigterm");
    let dir_s = dir.to_string_lossy().into_owned();

    // unit 1 stalls long enough to open a signal window after unit 0's
    // journal record lands.
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_sga"))
        .args([
            "analyze",
            "--corpus",
            "units=4,kloc=1,seed=11",
            "--cache-dir",
            &dir_s,
            "--jobs",
            "1",
            "--faults",
            "stall@1=2500",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("sga binary spawns");

    // Wait for the first committed record, then pull the trigger.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while journal_records(&dir) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no journal record appeared before the deadline"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());

    let out = child.wait_with_output().expect("child exits");
    assert_eq!(
        out.status.code(),
        Some(5),
        "interrupted run must exit 5: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("partial report is well-formed JSON");
    assert_eq!(report.get("interrupted").unwrap().as_bool(), Some(true));
    let totals = report.get("totals").unwrap();
    assert!(totals.get("skipped").unwrap().as_u64().unwrap() >= 1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume"),
        "stderr should point at --resume: {stderr:?}"
    );

    // The journal survived the shutdown and the resume completes the batch.
    assert!(journal_records(&dir) >= 1);
    let resumed = sga_analyze(4, &["--cache-dir", &dir_s, "--canonical", "--resume"]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "resume after SIGTERM failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_report = Json::parse(&String::from_utf8_lossy(&resumed.stdout)).unwrap();
    assert_eq!(
        resumed_report
            .get("totals")
            .unwrap()
            .get("skipped")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---- the validation oracle ---------------------------------------------

/// `--validate` on a healthy corpus — including a budget-degraded unit —
/// finds nothing: every unit is independently re-checked and passes.
#[test]
fn validation_passes_on_a_degraded_corpus() {
    let report = run(
        &corpus(3),
        &PipelineOptions {
            canonical: true,
            validate: true,
            faults: FaultPlan::parse("budget@1=30").unwrap(),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("invalid").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("validated").unwrap().as_u64(), Some(3));
    assert_eq!(totals.get("degraded").unwrap().as_u64(), Some(1));
    for (i, unit) in report
        .get("units")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .enumerate()
    {
        let v = unit.get("validation").unwrap();
        assert_eq!(
            v.get("violations").unwrap().as_arr().unwrap().len(),
            0,
            "unit {i} has violations"
        );
        // The degraded unit's fixpoint legitimately differs from the dense
        // reference, so Lemma 1 is skipped there — and only there.
        assert_eq!(
            v.get("lemma1_skipped").unwrap().as_bool(),
            Some(i == 1),
            "unit {i}: unexpected lemma1_skipped"
        );
        assert!(v.get("interval_points").unwrap().as_u64().unwrap() > 0);
        assert!(v.get("octagon_points").unwrap().as_u64().unwrap() > 0);
    }
}

/// A forged cache entry — wrong content resealed under a *valid* checksum,
/// so the envelope cannot catch it — is exposed by the oracle's
/// recompute-and-compare, reported `invalid` (CLI exit 4), quarantined, and
/// never re-cached; the next run recomputes and recovers.
#[test]
fn forged_cache_entry_is_caught_invalid_and_quarantined() {
    let dir = scratch_dir("forge");
    let dir_s = dir.to_string_lossy().into_owned();

    // Seed the cache, then forge unit 1's entry in place.
    let seeded = sga_analyze(2, &["--cache-dir", &dir_s, "--faults", "forge@1"]);
    assert_eq!(seeded.status.code(), Some(0));

    let caught = sga_analyze(2, &["--cache-dir", &dir_s, "--validate"]);
    assert_eq!(caught.status.code(), Some(4), "forged entry must exit 4");
    let report = Json::parse(&String::from_utf8_lossy(&caught.stdout)).unwrap();
    let units = report.get("units").unwrap().as_arr().unwrap();
    assert_eq!(units[0].get("outcome").unwrap().as_str(), Some("ok"));
    assert_eq!(units[1].get("outcome").unwrap().as_str(), Some("invalid"));
    let violations = units[1]
        .get("validation")
        .unwrap()
        .get("violations")
        .unwrap()
        .as_arr()
        .unwrap();
    assert!(
        violations
            .iter()
            .any(|v| v.as_str().unwrap().starts_with("cache_mismatch:")),
        "missing cache_mismatch violation: {violations:?}"
    );
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("invalid").unwrap().as_u64(), Some(1));
    assert_eq!(totals.get("validated").unwrap().as_u64(), Some(1));
    assert!(
        String::from_utf8_lossy(&caught.stderr).contains("failed validation"),
        "stderr missing validation notice"
    );

    // The forged entry moved to quarantine and was not replaced by the
    // invalid result — so the next run recomputes, passes, and re-caches.
    assert_eq!(
        std::fs::read_dir(dir.join("quarantine")).unwrap().count(),
        1
    );
    let healed = sga_analyze(2, &["--cache-dir", &dir_s, "--validate"]);
    assert_eq!(healed.status.code(), Some(0), "recovery run must pass");
    let healed_report = Json::parse(&String::from_utf8_lossy(&healed.stdout)).unwrap();
    assert_eq!(
        healed_report
            .get("totals")
            .unwrap()
            .get("invalid")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `sga cache gc` prunes quarantine and sweeps stranded temp files.
#[test]
fn cache_gc_subcommand_prunes_and_reports() {
    let dir = scratch_dir("gc-cli");
    let seeded = sga_analyze(2, &["--cache-dir", &dir.to_string_lossy()]);
    assert_eq!(seeded.status.code(), Some(0));
    std::fs::write(dir.join("stranded.json.tmp"), b"torn").unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sga"))
        .args(["cache", "gc", &dir.to_string_lossy(), "--keep", "0"])
        .output()
        .expect("sga binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "cache gc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 temp file"),
        "unexpected gc output: {stdout}"
    );
    assert!(!dir.join("stranded.json.tmp").exists());

    let _ = std::fs::remove_dir_all(&dir);
}

// ---- CLI exit codes ----------------------------------------------------

#[test]
fn partial_failure_exits_with_code_3() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sga"))
        .args([
            "analyze",
            "--corpus",
            "units=2,kloc=1,seed=11",
            "--no-cache",
            "--canonical",
            "--faults",
            "panic@0",
        ])
        .output()
        .expect("sga binary runs");
    assert_eq!(out.status.code(), Some(3), "partial failure must exit 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"crashed\": 1"),
        "report missing crash total"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unit(s) crashed"),
        "stderr missing partial-failure notice: {stderr:?}"
    );
}
