//! Golden alarm corpus and diagnostic-subsystem invariants.
//!
//! `tests/alarms/` holds eighteen small C files, each annotated with the
//! alarms it should raise. Every file has a `.expected` sidecar listing
//! the exact diagnostics (fingerprint, triage status, rendering). The
//! `path_*.c` family exercises the path-condition layer: dead dominating
//! guards, contradictory guard chains, and — just as important — guards
//! that are loop-carried or merely uncertain and must *never* be
//! path-discharged. The tests here pin four properties of the triage
//! subsystem:
//!
//! 1. **Engine/widening agreement.** Both fixpoint engines and all three
//!    widening strategies produce byte-identical diagnostics — sparse
//!    evaluation and widening tactics change cost, never findings.
//! 2. **Golden stability.** The corpus diagnostics match the checked-in
//!    sidecars, so fingerprints and renderings cannot drift silently.
//!    Regenerate with `SGA_BLESS=1 cargo test -q --test diagnostics`.
//! 3. **Pipeline determinism.** Canonical batch reports over the corpus
//!    are byte-identical across `--jobs 1/2/8` and warm/cold cache.
//! 4. **Output formats.** The SARIF export validates against the
//!    vendored 2.1.0 schema, and a report diffed against itself as a
//!    baseline classifies everything `unchanged`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use sga::analysis::budget::Budget;
use sga::analysis::interval::{self, AnalyzeOptions, Engine};
use sga::analysis::triage::{self, TriageMode, TriageOptions};
use sga::analysis::widening::{WideningConfig, WideningStrategy};
use sga::analysis::{checker, preanalysis};
use sga::diag::{sarif, schema, Diagnostic, DischargeMethod, Status};
use sga::pipeline::{self, PipelineOptions, Project};
use sga::utils::Json;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/alarms")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/alarms must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    files.sort();
    assert_eq!(
        files.len(),
        18,
        "golden corpus should hold eighteen C files"
    );
    files
}

fn diagnose(src: &str, engine: Engine, widening: WideningConfig) -> Vec<Diagnostic> {
    diagnose_with(src, engine, widening, TriageMode::default())
}

fn diagnose_with(
    src: &str,
    engine: Engine,
    widening: WideningConfig,
    mode: TriageMode,
) -> Vec<Diagnostic> {
    let program = sga::frontend::parse(src).expect("corpus file must parse");
    let pre = preanalysis::run(&program);
    let result = interval::analyze_with(
        &program,
        engine,
        AnalyzeOptions {
            widening,
            ..Default::default()
        },
    );
    let mut diags = checker::check_all(&program, &result, &pre);
    triage::discharge(
        &program,
        &pre,
        &result,
        &mut diags,
        &TriageOptions {
            engine,
            widening,
            budget: triage::derived_budget(result.stats.iterations, &Budget::unbounded()),
            mode,
            ..Default::default()
        },
    );
    diags
}

/// One line per diagnostic: fingerprint, triage status, rendering.
fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let status = match &d.status {
            Status::Open => "open".to_string(),
            Status::Discharged { method, pack, .. } => {
                format!("discharged[{}:{pack}]", method.id())
            }
        };
        writeln!(out, "{:016x} {status} {d}", d.fingerprint).unwrap();
    }
    out
}

#[test]
fn golden_corpus_agrees_across_engines_and_widenings() {
    let bless = std::env::var_os("SGA_BLESS").is_some();
    for file in corpus_files() {
        let src = std::fs::read_to_string(&file).unwrap();
        let reference = render(&diagnose(&src, Engine::Sparse, WideningConfig::default()));

        let sidecar = file.with_extension("expected");
        if bless {
            std::fs::write(&sidecar, &reference).unwrap();
        }
        let expected = std::fs::read_to_string(&sidecar).unwrap_or_else(|_| {
            panic!(
                "missing golden sidecar {}; regenerate with SGA_BLESS=1",
                sidecar.display()
            )
        });
        assert_eq!(
            reference,
            expected,
            "{} diverged from its golden sidecar",
            file.display()
        );

        for engine in [Engine::Base, Engine::Sparse] {
            for strategy in ["naive", "threshold", "delayed"] {
                let widening = WideningConfig::of(WideningStrategy::parse(strategy).unwrap());
                let got = render(&diagnose(&src, engine, widening));
                assert_eq!(
                    got,
                    reference,
                    "{}: {engine:?}/{strategy} disagrees with Sparse/default",
                    file.display()
                );
            }
        }
    }
}

#[test]
fn triage_discharges_possible_alarms_and_keeps_definite_ones() {
    let mut discharged_files = Vec::new();
    for file in corpus_files() {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&file).unwrap();
        let diags = diagnose(&src, Engine::Sparse, WideningConfig::default());

        for d in &diags {
            if d.definite {
                assert!(
                    d.is_open(),
                    "{name}: definite alarm must never be discharged: {d}"
                );
            }
        }
        if diags.iter().any(|d| !d.is_open()) {
            discharged_files.push(name.clone());
        }
        match name.as_str() {
            "clean.c" => assert!(diags.is_empty(), "clean.c must raise no alarms"),
            "overrun_const.c" | "null_definite.c" | "div_zero.c" | "uninit.c" => {
                assert!(
                    diags.iter().any(|d| d.definite && d.is_open()),
                    "{name}: expected a surviving definite alarm"
                );
            }
            "overrun_loop.c" | "div_guarded.c" => {
                assert!(
                    diags.iter().all(|d| !d.is_open()),
                    "{name}: every alarm should be octagon-discharged"
                );
                assert!(!diags.is_empty(), "{name}: expected at least one alarm");
            }
            _ => {}
        }
    }
    assert!(
        discharged_files.len() >= 3,
        "expected octagon discharges in at least three corpus files, got {discharged_files:?}"
    );
}

/// The `path_*.c` family, checked by name: the dead-guard and
/// contradictory-chain cases are discharged by the path layer (with a
/// proving pack naming the guard chain), while the loop-carried and
/// feasible-guard cases must never be — and octagon-only mode leaves
/// every path-only discharge open, so `both` is a strict superset.
#[test]
fn path_corpus_cases_discharge_by_name() {
    let path_discharged = [
        "path_dead_guard.c",
        "path_contra_null.c",
        "path_else_dead.c",
        "path_overrun_dead.c",
        "path_div_dead.c",
        "path_chain.c",
    ];
    let never_path_discharged = ["path_loop_carried.c", "path_feasible_guard.c"];

    for name in path_discharged {
        let src = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        let diags = diagnose(&src, Engine::Sparse, WideningConfig::default());
        assert_eq!(diags.len(), 1, "{name}: expected exactly one alarm");
        let Status::Discharged {
            method,
            pack,
            reason,
        } = &diags[0].status
        else {
            panic!("{name}: alarm should be path-discharged: {}", diags[0]);
        };
        assert_eq!(
            *method,
            DischargeMethod::PathInfeasible,
            "{name}: wrong discharge method"
        );
        assert!(
            pack.contains('@') && pack.contains('('),
            "{name}: proving pack must name the guard chain, got {pack:?}"
        );
        assert!(
            reason.contains("never holds") || reason.contains("conflict"),
            "{name}: reason must state the infeasibility, got {reason:?}"
        );

        // Octagon-only mode cannot reach these: the alarm stays open.
        let octagon = diagnose_with(
            &src,
            Engine::Sparse,
            WideningConfig::default(),
            TriageMode::Octagon,
        );
        assert!(
            octagon.iter().all(Diagnostic::is_open),
            "{name}: octagon-only mode should leave the alarm open"
        );
    }

    // Polarity spot checks: the else-branch cases carry `else@` in the
    // pack, the then-branch cases `then@`.
    for (name, label) in [
        ("path_dead_guard.c", "then@"),
        ("path_else_dead.c", "else@"),
        ("path_chain.c", "else@"),
    ] {
        let src = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        let diags = diagnose(&src, Engine::Sparse, WideningConfig::default());
        let Status::Discharged { pack, .. } = &diags[0].status else {
            panic!("{name}: expected a discharge");
        };
        assert!(pack.contains(label), "{name}: pack {pack:?} lacks {label}");
    }

    for name in never_path_discharged {
        let src = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        // In path-only mode nothing may be discharged at all.
        let path_only = diagnose_with(
            &src,
            Engine::Sparse,
            WideningConfig::default(),
            TriageMode::Path,
        );
        assert!(!path_only.is_empty(), "{name}: expected an alarm");
        assert!(
            path_only.iter().all(Diagnostic::is_open),
            "{name}: the path layer must not discharge a feasible guard"
        );
        // And in both mode any discharge must come from the octagon.
        let both = diagnose(&src, Engine::Sparse, WideningConfig::default());
        for d in &both {
            if let Status::Discharged { method, .. } = &d.status {
                assert_eq!(
                    *method,
                    DischargeMethod::Octagon,
                    "{name}: unexpected path discharge: {d}"
                );
            }
        }
    }
}

#[test]
fn repeated_subjects_get_distinct_fingerprints() {
    let src = std::fs::read_to_string(corpus_dir().join("repeat_subject.c")).unwrap();
    let diags = diagnose(&src, Engine::Sparse, WideningConfig::default());
    assert!(diags.len() >= 2, "expected two null-deref alarms");
    let mut fps: Vec<u64> = diags.iter().map(|d| d.fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), diags.len(), "fingerprints must be distinct");
}

fn corpus_report(jobs: usize, cache_dir: Option<PathBuf>) -> Json {
    let options = PipelineOptions {
        jobs,
        canonical: true,
        cache_dir,
        ..Default::default()
    };
    pipeline::run(&Project::Dir(corpus_dir()), &options).expect("pipeline run")
}

/// The analysis content of a report: per-unit name, value fingerprint,
/// and rendered diagnostics. Cache-status fields (`"off"`/`"miss"`/
/// `"hit"`) legitimately differ across cache states, so cached and
/// uncached runs are compared on this projection.
fn analysis_content(report: &Json) -> String {
    let mut out = String::new();
    for unit in report.get("units").unwrap().as_arr().unwrap() {
        writeln!(
            out,
            "{} {} {}",
            unit.get("name").unwrap().to_pretty(),
            unit.get("fingerprint").unwrap().to_pretty(),
            unit.get("diagnostics").unwrap().to_pretty(),
        )
        .unwrap();
    }
    out
}

#[test]
fn corpus_report_is_byte_identical_across_jobs_and_cache_state() {
    let reference = corpus_report(1, None);
    for jobs in [2, 8] {
        assert_eq!(
            corpus_report(jobs, None).to_pretty(),
            reference.to_pretty(),
            "--jobs {jobs} changed the canonical report"
        );
    }

    let tmp = tempdir("diag-cache");
    let cold = corpus_report(4, Some(tmp.clone()));
    let warm = corpus_report(4, Some(tmp.clone()));
    assert_eq!(
        analysis_content(&cold),
        analysis_content(&reference),
        "cold cached run changed the diagnostics"
    );
    assert_eq!(
        analysis_content(&warm),
        analysis_content(&reference),
        "warm cached run changed the diagnostics"
    );
    let hits = warm
        .get("totals")
        .and_then(|t| t.get("cache_hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(hits > 0, "warm run should be served from cache");
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn sarif_export_validates_against_vendored_schema() {
    let src = std::fs::read_to_string(corpus_dir().join("mixed.c")).unwrap();
    let diags = diagnose(&src, Engine::Sparse, WideningConfig::default());
    assert!(!diags.is_empty());

    let log = sarif::to_sarif("tests/alarms/mixed.c", &diags);
    let violations = schema::validate(&log, &schema::vendored_sarif_schema());
    assert!(
        violations.is_empty(),
        "SARIF log violates the vendored 2.1.0 schema: {violations:?}"
    );

    let results = log.get("runs").unwrap().as_arr().unwrap()[0]
        .get("results")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(results.len(), diags.len());
    for r in results {
        assert!(
            r.get("partialFingerprints")
                .and_then(|f| f.get("sga/v1"))
                .is_some(),
            "every result must carry the sga/v1 partial fingerprint"
        );
    }
}

#[test]
fn baseline_against_self_reports_everything_unchanged() {
    let tmp = tempdir("diag-baseline");
    let baseline_path = tmp.join("baseline.json");
    let first = corpus_report(2, None);
    std::fs::write(&baseline_path, first.to_pretty()).unwrap();

    let options = PipelineOptions {
        jobs: 2,
        canonical: true,
        baseline: Some(baseline_path),
        ..Default::default()
    };
    let report = pipeline::run(&Project::Dir(corpus_dir()), &options).expect("pipeline run");
    let block = report.get("baseline").expect("baseline block");
    assert_eq!(block.get("new").unwrap().as_arr().unwrap().len(), 0);
    assert_eq!(block.get("fixed").unwrap().as_arr().unwrap().len(), 0);
    assert_eq!(block.get("new_definite").and_then(Json::as_u64), Some(0));
    let open = first
        .get("totals")
        .unwrap()
        .get("alarms")
        .and_then(Json::as_u64);
    assert_eq!(block.get("unchanged").and_then(Json::as_u64), open);
    std::fs::remove_dir_all(&tmp).ok();
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
