int x;
int f(int a, int
