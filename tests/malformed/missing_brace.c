int f(int n) { if (n > 0) { return n;
int main() { return f(3); }
