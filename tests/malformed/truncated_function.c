int main() { int x = 1; x = x +
