int main() { int c = 'x; return c; }
