int main() { int x = 1 @ 2; return x; }
