int main() { return 0; } /* this comment never ends
