int main() { break; return 0; }
