int main() { char *s = "no closing quote; return 0; }
