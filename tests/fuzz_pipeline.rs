//! Property-based end-to-end fuzzing: random generator configurations must
//! produce programs that parse, validate, analyze under every engine, and
//! stay sound against concrete runs. This is the closest thing to throwing
//! arbitrary C at the pipeline while staying deterministic.

use proptest::prelude::*;
use sga::analysis::depgen::DepGenOptions;
use sga::analysis::depstore::{CsrDeps, DepBackend};
use sga::analysis::interval::{analyze, analyze_with, AnalyzeOptions, Engine, Pipeline};
use sga::analysis::widening::{WideningConfig, WideningStrategy};
use sga::cgen::GenConfig;
use sga::domains::{AbsLoc, Lattice};
use sga::ir::interp::{self, CVal, InterpConfig, ObservedLoc, Place};

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (
        any::<u64>(),
        200usize..800,
        2usize..30,
        0usize..40,
        0usize..6,
        0usize..8,
        0.0f64..0.5,
    )
        .prop_map(
            |(seed, loc, functions, globals, global_ptrs, max_scc, ptr_density)| GenConfig {
                seed,
                target_loc: loc,
                functions,
                globals: globals.max(1),
                global_ptrs,
                max_scc,
                ptr_density,
                stmts_per_block: 5,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_never_panics_and_stays_sound(config in arb_config()) {
        let src = sga::cgen::generate(&config);
        let program = sga::frontend::parse(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}"));
        prop_assert!(sga::ir::validate::validate(&program).is_empty());

        let sparse = analyze(&program, Engine::Sparse);
        let base = analyze(&program, Engine::Base);
        prop_assert!(sparse.stats.iterations > 0);

        // Concrete runs must be covered by both engines' claims.
        let run = interp::run(
            &program,
            &InterpConfig {
                main_args: vec![3],
                unknown_supply: vec![1, -7, 100],
                fuel: 200_000,
                max_depth: 400,
            },
        );
        for obs in &run.log {
            let loc = match obs.target {
                ObservedLoc::Var(v) => AbsLoc::Var(v),
                ObservedLoc::Field(v, f) => AbsLoc::Field(v, f),
                ObservedLoc::AllocSite(cp) => AbsLoc::Alloc(sga::domains::locs::AllocSite(cp)),
                ObservedLoc::AllocField(cp, f) => {
                    AbsLoc::AllocField(sga::domains::locs::AllocSite(cp), f)
                }
            };
            for result in [&sparse, &base] {
                // Dense engines bind call results on the successor edge.
                let mut aval = result.value_at(obs.cp, &loc);
                if matches!(program.cmd(obs.cp), sga::ir::Cmd::Call { .. }) {
                    for &s in program.procs[obs.cp.proc].succs_of(obs.cp.node) {
                        aval = aval.join(
                            &result.value_at(sga::ir::Cp::new(obs.cp.proc, s), &loc),
                        );
                    }
                }
                let ok = match &obs.value {
                    CVal::Uninit => true,
                    CVal::Int(n) => aval.itv.contains(*n),
                    CVal::Fn(p) => aval.procs.contains(&AbsLoc::Proc(*p)),
                    CVal::Ptr(place, _) => match place {
                        Place::Global(v) | Place::Local(_, v) => {
                            aval.ptr.iter().any(|l| l.var() == Some(*v))
                                || aval.arr.iter().any(|(b, _)| b.var() == Some(*v))
                        }
                        Place::Heap(_, site) => {
                            let l = AbsLoc::Alloc(sga::domains::locs::AllocSite(*site));
                            aval.ptr.contains(&l) || aval.arr.iter().any(|(b, _)| *b == l)
                        }
                    },
                };
                prop_assert!(
                    ok,
                    "UNSOUND seed {} at {} for {loc:?}: concrete {:?} ⊄ {:?}",
                    config.seed,
                    obs.cp,
                    obs.value,
                    aval
                );
            }
        }
    }

    /// The widening strategies only ever *gain* precision over the naive
    /// baseline: every binding of a threshold or delayed fixpoint must be
    /// ⊑ the corresponding naive binding.
    #[test]
    fn strategy_fixpoints_refine_naive(config in arb_config()) {
        let src = sga::cgen::generate(&config);
        let program = sga::frontend::parse(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}"));

        let with_strategy = |strategy| {
            analyze_with(
                &program,
                Engine::Sparse,
                AnalyzeOptions {
                    widening: WideningConfig::of(strategy),
                    ..AnalyzeOptions::default()
                },
            )
        };
        let naive = with_strategy(WideningStrategy::Naive);
        for strategy in [WideningStrategy::Threshold, WideningStrategy::Delayed] {
            let refined = with_strategy(strategy);
            for (cp, st) in &refined.values {
                for (loc, v) in st.iter() {
                    let nv = naive.value_at(*cp, loc);
                    prop_assert!(
                        v.le(&nv),
                        "seed {}: {:?} at {cp} {loc:?} not ⊑ naive: {v:?} vs {nv:?}",
                        config.seed,
                        strategy.name()
                    );
                }
            }
        }
    }

    /// Injected faults never leak: whatever a seeded fault plan throws at a
    /// corpus (panics, starved budgets, cache corruption, IO errors), every
    /// unit the plan does not touch reports byte-identically to the
    /// fault-free run, at any worker count.
    #[test]
    fn faults_never_leak_into_nonfaulted_units(fault_seed in any::<u64>()) {
        use sga::pipeline::{run, FaultPlan, PipelineOptions, Project};

        const UNITS: usize = 3;
        let corpus = Project::Corpus { units: UNITS, kloc: 1, seed: 11 };
        let plan = FaultPlan::seeded(fault_seed, UNITS);

        // Each run gets its own cold cache so the cache-corruption and
        // IO-error faults exercise real stores.
        let render = |jobs: usize, faults: &FaultPlan, tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "sga-fuzz-fault-{}-{fault_seed:016x}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let report = run(
                &corpus,
                &PipelineOptions {
                    jobs,
                    cache_dir: Some(dir.clone()),
                    canonical: true,
                    faults: faults.clone(),
                    ..PipelineOptions::default()
                },
            )
            .expect("keep-going run completes");
            let _ = std::fs::remove_dir_all(&dir);
            report
        };

        let clean = render(1, &FaultPlan::none(), "clean");
        let faulted = render(1, &plan, "faulted");
        prop_assert!(
            faulted.to_pretty() == render(4, &plan, "faulted-par").to_pretty(),
            "faulted report not deterministic across jobs (seed {fault_seed})"
        );

        let faulted_units = plan.faulted_units();
        let clean_units = clean.get("units").unwrap().as_arr().unwrap();
        let units = faulted.get("units").unwrap().as_arr().unwrap();
        for i in 0..UNITS {
            if faulted_units.contains(&i) {
                continue;
            }
            prop_assert!(
                units[i].to_pretty() == clean_units[i].to_pretty(),
                "seed {fault_seed}: fault leaked into unit {i}"
            );
        }

        // Exactly one panic is injected, and a panicking worker never
        // produces artifacts — it must show up as exactly one crash.
        let crashed = faulted
            .get("totals").unwrap()
            .get("crashed").unwrap()
            .as_u64().unwrap();
        prop_assert!(crashed == 1, "seed {fault_seed}: expected 1 crash, got {crashed}");
    }

    /// Warm-vs-cold validator agreement: the oracle's verdict on a unit is
    /// a property of the unit, not of where its artifacts came from. A
    /// validated run over a cold cache and a second over the warm cache
    /// (where every hit is held back and cross-checked against a
    /// recomputation) must produce identical per-unit validation blocks and
    /// outcomes.
    #[test]
    fn validator_verdicts_identical_warm_and_cold(corpus_seed in any::<u64>()) {
        use sga::pipeline::{run, PipelineOptions, Project};

        let corpus = Project::Corpus { units: 2, kloc: 1, seed: corpus_seed };
        let dir = std::env::temp_dir().join(format!(
            "sga-fuzz-validate-{}-{corpus_seed:016x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = PipelineOptions {
            cache_dir: Some(dir.clone()),
            canonical: true,
            validate: true,
            ..PipelineOptions::default()
        };
        let cold = run(&corpus, &opts).expect("cold validated run completes");
        let warm = run(&corpus, &opts).expect("warm validated run completes");
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert!(
            warm.get("totals").unwrap().get("invalid").unwrap().as_u64() == Some(0),
            "seed {corpus_seed}: warm run found invalid units"
        );
        let cold_units = cold.get("units").unwrap().as_arr().unwrap();
        let warm_units = warm.get("units").unwrap().as_arr().unwrap();
        for (i, (c, w)) in cold_units.iter().zip(warm_units).enumerate() {
            // The cache field legitimately differs (miss vs hit); the
            // verdict and every check count must not.
            prop_assert!(
                c.get("outcome") == w.get("outcome"),
                "seed {corpus_seed}: unit {i} outcome differs warm vs cold"
            );
            prop_assert!(
                c.get("validation").unwrap().to_pretty()
                    == w.get("validation").unwrap().to_pretty(),
                "seed {corpus_seed}: unit {i} validation differs warm vs cold"
            );
        }
    }

    /// The two dependency backends are the same relation in different
    /// clothes: the lowered CSR store must hold exactly the triples of the
    /// hash-map store (mirrored through the BDD store as a third witness),
    /// and the sparse fixpoint must produce bit-identical bindings over
    /// either one.
    #[test]
    fn dep_backends_agree(config in arb_config()) {
        use sga::bdd::DepStore as _;
        use std::collections::BTreeSet;

        let src = sga::cgen::generate(&config);
        let program = sga::frontend::parse(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}"));

        let pl = Pipeline::prepare(&program, AnalyzeOptions::default());
        let csr = CsrDeps::build(&program, &pl.icfg, &pl.deps);
        let set_triples: BTreeSet<_> = pl.deps.iter().collect();
        let csr_triples: BTreeSet<_> = csr.iter().collect();
        prop_assert!(
            set_triples == csr_triples,
            "seed {}: CSR rows diverge from the hash-map rows",
            config.seed
        );

        let numbering = program.point_numbering();
        let mut bdd = sga::bdd::BddDepStore::new(
            numbering.len() as u32,
            pl.du.locs.len() as u32,
        );
        for (from, loc, to) in pl.deps.iter() {
            bdd.insert(sga::bdd::relation::DepTriple {
                from: numbering.index(from) as u32,
                to: numbering.index(to) as u32,
                loc,
            });
        }
        prop_assert!(
            bdd.len() == set_triples.len(),
            "seed {}: BDD mirror lost or invented triples",
            config.seed
        );

        let with_backend = |backend| {
            analyze_with(
                &program,
                Engine::Sparse,
                AnalyzeOptions {
                    dep_backend: backend,
                    ..AnalyzeOptions::default()
                },
            )
        };
        let over_csr = with_backend(DepBackend::Csr);
        let over_bdd = with_backend(DepBackend::Bdd);
        prop_assert_eq!(over_csr.stats.iterations, over_bdd.stats.iterations);
        prop_assert_eq!(over_csr.values.len(), over_bdd.values.len());
        for (cp, st) in &over_csr.values {
            for (loc, v) in st.iter() {
                let ov = over_bdd.value_at(*cp, loc);
                prop_assert!(
                    *v == ov,
                    "seed {}: backends disagree at {cp} {loc:?}: {v:?} vs {ov:?}",
                    config.seed
                );
            }
        }
    }

    /// Triage-mode lattice: over seeded generated programs, the alarms
    /// discharged by `--triage both` must be a superset of those discharged
    /// by `--triage octagon` (and of `path`) — the layered pass only ever
    /// adds discharges. And the set of *definite* alarms is untouchable: its
    /// fingerprint set is byte-identical across every triage mode and both
    /// dependency backends.
    #[test]
    fn triage_modes_form_a_superset_lattice(config in arb_config()) {
        use sga::analysis::triage::{self, TriageMode, TriageOptions};
        use sga::analysis::{checker, preanalysis};
        use sga::analysis::budget::Budget;
        use std::collections::BTreeSet;

        let src = sga::cgen::generate(&config);
        let program = sga::frontend::parse(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}"));
        let pre = preanalysis::run(&program);

        let mut discharged: std::collections::BTreeMap<&str, BTreeSet<u64>> =
            Default::default();
        let mut definite_renderings: BTreeSet<String> = Default::default();
        for backend in [DepBackend::Csr, DepBackend::Bdd] {
            let result = analyze_with(
                &program,
                Engine::Sparse,
                AnalyzeOptions {
                    dep_backend: backend,
                    ..AnalyzeOptions::default()
                },
            );
            for mode in [TriageMode::Octagon, TriageMode::Path, TriageMode::Both] {
                let mut diags = checker::check_all(&program, &result, &pre);
                triage::discharge(
                    &program,
                    &pre,
                    &result,
                    &mut diags,
                    &TriageOptions {
                        dep_backend: backend,
                        budget: triage::derived_budget(
                            result.stats.iterations,
                            &Budget::unbounded(),
                        ),
                        mode,
                        ..TriageOptions::default()
                    },
                );
                let fps: BTreeSet<u64> = diags
                    .iter()
                    .filter(|d| !d.is_open())
                    .map(|d| d.fingerprint)
                    .collect();
                // The same mode must discharge the same alarms over either
                // backend; accumulate via union and check against both.
                let entry = discharged.entry(mode.name()).or_default();
                prop_assert!(
                    entry.is_empty() || *entry == fps,
                    "seed {}: {} discharges differ across dep backends",
                    config.seed,
                    mode.name()
                );
                *entry = fps;
                let definite: String = diags
                    .iter()
                    .filter(|d| d.definite)
                    .map(|d| format!("{:016x} {d}\n", d.fingerprint))
                    .collect();
                definite_renderings.insert(definite);
            }
        }
        let octagon = &discharged["octagon"];
        let path = &discharged["path"];
        let both = &discharged["both"];
        prop_assert!(
            octagon.is_subset(both),
            "seed {}: both-mode lost octagon discharges",
            config.seed
        );
        prop_assert!(
            path.is_subset(both),
            "seed {}: both-mode lost path discharges",
            config.seed
        );
        prop_assert!(
            definite_renderings.len() == 1,
            "seed {}: definite alarms differ across triage modes or backends",
            config.seed
        );
    }

    /// Under the default `delayed` strategy the §5 bypass contraction is a
    /// pure optimization: bypass on/off produce bit-identical bindings.
    #[test]
    fn bypass_is_invisible_under_delayed(config in arb_config()) {
        let src = sga::cgen::generate(&config);
        let program = sga::frontend::parse(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}"));

        let with_bypass = |bypass| {
            analyze_with(
                &program,
                Engine::Sparse,
                AnalyzeOptions {
                    depgen: DepGenOptions { bypass },
                    widening: WideningConfig::of(WideningStrategy::Delayed),
                    ..AnalyzeOptions::default()
                },
            )
        };
        let on = with_bypass(true);
        let off = with_bypass(false);
        // Bypass-off stores extra bindings at relay nodes, so compare the
        // bypass-on bindings (the contracted graph's) against the other run.
        for (cp, st) in &on.values {
            for (loc, v) in st.iter() {
                let ov = off.value_at(*cp, loc);
                prop_assert!(
                    *v == ov,
                    "seed {}: bypass changed {cp} {loc:?}: {v:?} vs {ov:?}",
                    config.seed
                );
            }
        }
    }
}

// Each case below spawns three full `sga analyze` child processes, so the
// durability property runs fewer cases than the in-process suite above.
proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Kill-and-resume byte-identity, fuzzed: a seeded fault plan picks
    /// which unit hard-aborts (`std::process::abort`, no unwinding — an OOM
    /// kill to the next run) and which unit runs under a starved budget.
    /// The killed run's journal plus `--resume` must reproduce, byte for
    /// byte, the canonical report of a run that was never killed.
    #[test]
    fn killed_runs_resume_byte_identically(plan_seed in any::<u64>()) {
        const UNITS: usize = 3;
        let abort_at = (plan_seed % UNITS as u64) as usize;
        let budget_at = ((plan_seed >> 8) % UNITS as u64) as usize;
        let budget_steps = 20 + ((plan_seed >> 16) % 40);
        // The budget fault shapes the run either way; only the abort is
        // exclusive to the killed run.
        let base_faults = format!("budget@{budget_at}={budget_steps}");
        let kill_faults = format!("{base_faults},abort@{abort_at}");

        let analyze = |dir: &std::path::Path, faults: &str, resume: bool| {
            let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_sga"));
            cmd.args([
                "analyze",
                "--corpus",
                &format!("units={UNITS},kloc=1,seed=11"),
                "--cache-dir",
                &dir.to_string_lossy(),
                "--canonical",
                "--faults",
                faults,
            ]);
            if resume {
                cmd.arg("--resume");
            }
            cmd.output().expect("sga binary runs")
        };
        let scratch = |tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "sga-fuzz-abort-{}-{plan_seed:016x}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };

        let killed_dir = scratch("killed");
        let killed = analyze(&killed_dir, &kill_faults, false);
        prop_assert!(!killed.status.success(), "seed {plan_seed}: abort must kill the run");

        let resumed = analyze(&killed_dir, &base_faults, true);
        prop_assert!(
            resumed.status.code() == Some(0),
            "seed {plan_seed}: resume failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );

        let fresh_dir = scratch("fresh");
        let fresh = analyze(&fresh_dir, &base_faults, false);
        prop_assert!(fresh.status.code() == Some(0));
        prop_assert!(
            resumed.stdout == fresh.stdout,
            "seed {plan_seed}: resumed report differs from the uninterrupted run"
        );

        let _ = std::fs::remove_dir_all(&killed_dir);
        let _ = std::fs::remove_dir_all(&fresh_dir);
    }
}
