//! Frontend robustness: a battery of C-subset programs that must parse,
//! lower to valid IR, and analyze without panicking — plus targeted checks
//! that the analysis results are sensible.

use sga::analysis::interval::{analyze, Engine};
use sga::domains::{AbsLoc, Interval, Lattice};
use sga::frontend::parse;
use sga::ir::{Cmd, LVal, Program, VarId};

fn analyze_ok(src: &str) -> (Program, sga::analysis::interval::IntervalResult) {
    let program = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let errs = sga::ir::validate::validate(&program);
    assert!(errs.is_empty(), "{errs:?}");
    let r = analyze(&program, Engine::Sparse);
    (program, r)
}

fn var(program: &Program, name: &str) -> VarId {
    program
        .vars
        .iter_enumerated()
        .find(|(_, v)| v.name == name)
        .map(|(i, _)| i)
        .unwrap_or_else(|| panic!("no var {name}"))
}

fn last_def(program: &Program, name: &str) -> sga::ir::Cp {
    let v = var(program, name);
    program
        .all_points()
        .filter(|cp| matches!(program.cmd(*cp), Cmd::Assign(LVal::Var(x), _) if *x == v))
        .last()
        .unwrap_or_else(|| panic!("no assignment to {name}"))
}

#[test]
fn control_flow_zoo() {
    analyze_ok(
        "int main(int argc) {
            int x = 0;
            for (int i = 0; i < 10; i++) { if (i % 2) continue; x += i; }
            do { x--; } while (x > 3);
            switch (argc) {
                case 0: x = 1; break;
                case 1: case 2: x = 2; break;
                default: x = 3; break;
            }
            int guard = 0;
          again:
            guard++;
            if (guard < 2) goto again;
            while (1) { if (x) break; x++; }
            return x;
        }",
    );
}

#[test]
fn expression_zoo() {
    analyze_ok(
        "int main(int a, int b) {
            int x = a ? b : -b;
            x = (a, b, x);
            x += 1; x -= 2; x *= 3; x /= 2; x %= 7;
            x = a && b || !a;
            x = a & b | a ^ b;
            x = a << 2 >> 1;
            x = ~a;
            int pre = ++x;
            int post = x--;
            return pre + post;
        }",
    );
}

#[test]
fn pointer_zoo() {
    let (p, r) = analyze_ok(
        "int g1; int g2;
         int main(int c) {
            int local = 4;
            int *p = &local;
            int **pp = &p;
            **pp = 8;
            int v = *p;
            if (c) p = &g1;
            *p = 15;
            int w = g1;
            return v + w;
         }",
    );
    // **pp = 8 strong-updates local through the unique chain.
    let v = r.value_at(last_def(&p, "v"), &AbsLoc::Var(var(&p, "v")));
    assert_eq!(v.itv, Interval::constant(8), "v = {v:?}");
    // g1 receives 15 weakly (p may be local or &g1).
    let w = r.value_at(last_def(&p, "w"), &AbsLoc::Var(var(&p, "w")));
    assert!(Interval::constant(15).le(&w.itv), "w = {w:?}");
}

#[test]
fn struct_zoo() {
    let (p, r) = analyze_ok(
        "struct point { int x; int y; };
         struct rect { int w; int h; };
         int main() {
            struct point a;
            a.x = 3; a.y = 4;
            struct point *pa = &a;
            pa->x = pa->x + pa->y;
            struct rect *pr = malloc(8);
            pr->w = a.x;
            int area = pr->w;
            return area;
         }",
    );
    let area = r.value_at(last_def(&p, "area"), &AbsLoc::Var(var(&p, "area")));
    assert_eq!(area.itv, Interval::constant(7), "area = {area:?}");
}

#[test]
fn string_and_stub_zoo() {
    analyze_ok(
        "int main() {
            char *msg = \"hello world\";
            char *buf = malloc(32);
            strcpy(buf, msg);
            int n = strlen(buf);
            printf(\"%s %d\", msg, n);
            free(buf);
            int r = rand() % 10;
            if (r < 0) r = 0;
            return r;
        }",
    );
}

#[test]
fn recursion_zoo() {
    let (p, r) = analyze_ok(
        "int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
         }
         int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
         }
         int main() { int a = fib(10); int b = fact(5); return a + b; }",
    );
    // No exact values expected (widening over recursion), but both must be
    // bound and non-⊥ at their definitions.
    for name in ["a", "b"] {
        let v = r.value_at(last_def(&p, name), &AbsLoc::Var(var(&p, name)));
        assert!(!v.itv.is_bottom(), "{name} = {v:?}");
    }
}

#[test]
fn mutual_recursion_with_globals() {
    let (p, r) = analyze_ok(
        "int depth;
         int odd(int n);
         int even(int n) {
            depth = depth + 1;
            if (n == 0) return 1;
            return odd(n - 1);
         }
         int odd(int n) {
            if (n == 0) return 0;
            return even(n - 1);
         }
         int main() { depth = 0; int r = even(8); return r; }",
    );
    // Widening over the mutual-recursion cycle may lose either bound
    // (which bound survives depends on iteration order); the exact result
    // {0, 1} must be included and at least one side must stay finite.
    let rv = r.value_at(last_def(&p, "r"), &AbsLoc::Var(var(&p, "r")));
    assert!(Interval::range(0, 1).le(&rv.itv), "r = {rv:?}");
    assert_ne!(rv.itv, Interval::top(), "r lost both bounds");
}

#[test]
fn interval_refinement_through_conditionals() {
    let (p, r) = analyze_ok(
        "int clamp(int v, int lo, int hi) {
            if (v < lo) return lo;
            if (v > hi) return hi;
            return v;
         }
         int main(int raw) {
            int c = clamp(raw, 0, 100);
            return c;
         }",
    );
    let c = r.value_at(last_def(&p, "c"), &AbsLoc::Var(var(&p, "c")));
    assert_eq!(c.itv, Interval::range(0, 100), "clamped = {c:?}");
}

#[test]
fn globals_initialized_before_main_body() {
    let (p, r) = analyze_ok(
        "int table_size = 64;
         int limit = 100;
         int main() {
            int x = table_size + limit;
            return x;
         }",
    );
    let x = r.value_at(last_def(&p, "x"), &AbsLoc::Var(var(&p, "x")));
    assert_eq!(x.itv, Interval::constant(164));
}

#[test]
fn frontend_rejects_garbage_with_line_numbers() {
    for (src, line) in [
        ("int main() {\n  int x = ;\n}", 2),
        ("int main() {\n\n  foo bar baz;\n}", 3),
        ("int main() { return 0; } struct {", 1),
    ] {
        let err = parse(src).unwrap_err();
        assert!(err.line >= 1, "error should carry a line: {err}");
        let _ = line;
    }
}

#[test]
fn larger_generated_program_full_pipeline() {
    let cfg = sga::cgen::GenConfig::sized(123, 2);
    let src = sga::cgen::generate(&cfg);
    let (program, r) = analyze_ok(&src);
    assert!(program.num_points() > 1000);
    let alarms = sga::analysis::checker::check_overruns(&program, &r);
    // The generator indexes gbuf within bounds by construction.
    assert!(alarms.iter().all(|a| !a.definite), "{alarms:#?}");
}
