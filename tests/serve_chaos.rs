//! Chaos suite: a real `sga serve` child process is SIGKILLed at seeded
//! random points in a randomized edit sequence and restarted with
//! `--resume`. After every kill the restarted daemon must warm-resume
//! from its round journal and its accumulated report must be
//! byte-identical to a cold `sga analyze --no-cache --canonical` batch
//! run of the corpus directory — the PR 6 convergence invariant holds
//! through `kill -9`.
//!
//! The corpus directory is the ground truth: sources are persisted there
//! before a round analyzes them, so whatever instant the kill lands
//! (before persist, mid-persist, mid-analysis, mid-journal-write), the
//! dir plus the journal describe a state the resumed daemon and the cold
//! run agree on. One kill is aimed into an injected `stall@` window to
//! pin the most delicate interleaving: sources persisted, analysis not
//! yet journaled.

#![cfg(unix)]

use sga::serve::client;
use sga::utils::Json;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const T: Option<Duration> = Some(Duration::from_secs(60));

/// Deterministic xorshift so the "random" kill points and edit contents
/// reproduce across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A unit source: always a `main`, plus a helper whose store index makes
/// the overrun alarm come and go as the sequence mutates it.
fn unit_source(value: u64, idx: u64) -> String {
    format!(
        "int main() {{ return {}; }}\n\
         int helper(int a) {{ int *b = malloc(4); b[{}] = a; return a; }}\n",
        value % 100,
        idx % 10
    )
}

/// Spawns `sga serve` over `corpus`, waits for the port file, and returns
/// the child plus the address it bound.
fn spawn_daemon(corpus: &Path, cache: &Path, port_file: &Path, resume: bool) -> (Child, String) {
    // A stale port file from a killed predecessor must not satisfy the
    // readiness poll below.
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sga"));
    cmd.arg("serve")
        .arg(corpus)
        .args(["--tcp", "127.0.0.1:0", "--jobs", "1"])
        .arg("--port-file")
        .arg(port_file)
        .arg("--cache-dir")
        .arg(cache)
        // Round 2 of every incarnation stalls, widening the window where
        // sources are persisted but results are not yet journaled.
        .args(["--faults", "stall@2=400"]);
    if resume {
        cmd.arg("--resume");
    }
    let child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("sga serve spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            let s = s.trim();
            if !s.is_empty() {
                break s.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    (child, addr)
}

/// Cold batch run of the corpus dir, canonically rendered.
fn cold_pretty(corpus: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_sga"))
        .arg("analyze")
        .arg(corpus)
        .args(["--no-cache", "--canonical", "--jobs", "1"])
        .output()
        .expect("cold analyze runs");
    assert!(
        out.status.success(),
        "cold analyze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("cold report is JSON")
        .to_pretty()
}

/// Live daemon report, canonically rendered for comparison.
fn live_pretty(addr: &str) -> String {
    let report = client::report_t(addr, T).expect("live report");
    Json::parse(&report)
        .expect("live report is JSON")
        .to_pretty()
}

#[test]
fn sigkill_anywhere_resume_converges() {
    let root = scratch("kill9");
    let corpus = root.join("corpus");
    let cache = root.join("cache");
    let port_file = root.join("port");
    std::fs::create_dir_all(&corpus).expect("corpus dir");
    let mut rng = Rng(0x5ea1_ed5e_ed00_d5a7);
    for u in 0..3u64 {
        std::fs::write(
            corpus.join(format!("unit{u}.c")),
            unit_source(rng.next(), rng.next()),
        )
        .expect("seed unit");
    }

    let (mut child, mut addr) = spawn_daemon(&corpus, &cache, &port_file, false);
    let mut restarts = 0usize;
    let mut resumed_total = 0u64;

    for step in 0..12u64 {
        let unit = format!("unit{}.c", rng.next() % 3);
        let source = unit_source(rng.next(), rng.next());
        let (reply, _sheds) =
            client::edit_with_retry(&addr, &unit, &source, T, 10).expect("edit reaches daemon");
        assert!(
            !client::is_shed(&reply),
            "edit permanently shed in an unloaded test: {reply}"
        );

        // Kill at seeded points: right after the ack the round is in
        // flight (or queued), so SIGKILL lands at an arbitrary phase of
        // the persist → analyze → journal sequence. On the stall steps
        // the extra sleep drops the kill inside the injected 400ms
        // window — after persist, before journal.
        let kill_now = matches!(step, 1 | 5 | 9);
        if kill_now {
            if step == 1 {
                // Second round of this incarnation: stall@2 is active.
                std::thread::sleep(Duration::from_millis(150));
            } else {
                std::thread::sleep(Duration::from_millis(rng.next() % 120));
            }
            child.kill().expect("SIGKILL");
            child.wait().expect("killed child reaped");

            let (c, a) = spawn_daemon(&corpus, &cache, &port_file, true);
            child = c;
            addr = a;
            restarts += 1;

            // The restarted daemon warm-resumed from the journal...
            let status = client::status_t(&addr, T).expect("status after resume");
            let status = Json::parse(&status).expect("status json");
            let resumed = status
                .get("resumed_units")
                .and_then(Json::as_u64)
                .expect("status carries resumed_units");
            assert!(
                resumed >= 1,
                "restart never replayed the journal: {}",
                status.to_pretty()
            );
            resumed_total += resumed;

            // ...and its report is byte-identical to a cold run of the
            // corpus dir, whatever the kill interrupted.
            assert_eq!(
                live_pretty(&addr),
                cold_pretty(&corpus),
                "convergence broken after SIGKILL at step {step}"
            );
        }
    }

    assert_eq!(restarts, 3);
    assert!(
        resumed_total >= 3,
        "across {restarts} restarts the journal replayed only {resumed_total} units"
    );

    // Final state: still converged, still serving.
    assert_eq!(live_pretty(&addr), cold_pretty(&corpus));
    client::shutdown_t(&addr, T).expect("shutdown");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exited non-zero after shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

/// A kill *between* rounds (daemon idle, journal complete) must resume
/// every unit without recomputation and reproduce the report exactly.
#[test]
fn sigkill_at_rest_resumes_every_unit() {
    let root = scratch("at-rest");
    let corpus = root.join("corpus");
    let cache = root.join("cache");
    let port_file = root.join("port");
    std::fs::create_dir_all(&corpus).expect("corpus dir");
    for u in 0..3u64 {
        std::fs::write(corpus.join(format!("unit{u}.c")), unit_source(u, u + 3))
            .expect("seed unit");
    }

    let (mut child, addr) = spawn_daemon(&corpus, &cache, &port_file, false);
    let (reply, _) =
        client::edit_with_retry(&addr, "unit0.c", &unit_source(41, 7), T, 10).expect("edit");
    assert!(!client::is_shed(&reply));
    // Quiesce: a successful report implies the round completed (the
    // engine thread serves requests in order).
    let before = live_pretty(&addr);
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");

    let (mut child, addr) = spawn_daemon(&corpus, &cache, &port_file, true);
    let status = client::status_t(&addr, T).expect("status");
    let status = Json::parse(&status).expect("status json");
    assert_eq!(
        status.get("resumed_units").and_then(Json::as_u64),
        Some(3),
        "an at-rest kill must warm-resume all 3 units: {}",
        status.to_pretty()
    );
    assert_eq!(live_pretty(&addr), before, "resumed report differs");
    assert_eq!(live_pretty(&addr), cold_pretty(&corpus));

    client::shutdown_t(&addr, T).expect("shutdown");
    child.wait().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&root);
}
