/* An unconditionally null pointer: a definite null dereference. */
int main() {
    int *p = 0;
    *p = 2;
    return 0;
}
