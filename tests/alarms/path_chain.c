/* Mixed polarities along the chain: the alarm sits under the *else* of
 * n >= 0 (so n < 0 holds there) and then under n > 5 — contradictory,
 * so the possible deref is path-discharged with a two-guard pack. */
int g;

int main(int n, int c) {
    int *p = 0;
    if (c) {
        p = &g;
    }
    if (n >= 0) {
        n = n + 1;
    } else {
        if (n > 5) {
            *p = 1;
        }
    }
    return n;
}
