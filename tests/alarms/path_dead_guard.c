/* The deref is dominated by the guard x > 10, but x is the constant 3:
 * the guard can never hold, so the path layer discharges the possible
 * null dereference the interval checker still raises. */
int g;

int main(int c) {
    int x = 3;
    int *p = 0;
    if (c) {
        p = &g;
    }
    if (x > 10) {
        *p = 1;
    }
    return 0;
}
