/* A loop-bounded access: the interval analysis alarms (offset [0,+oo]
 * against size [1,+oo]) but the packed octagon proves i >= 0 and
 * i - n <= -1, so triage discharges the alarm. */
int fill(int n) {
    int s = 0;
    if (n > 0) {
        int *buf = malloc(n);
        int i = 0;
        while (i < n) {
            buf[i] = i;
            i = i + 1;
        }
        s = i;
    }
    return s;
}

int main(int argc) {
    return fill(argc);
}
