/* A possible (index unknown) buffer overrun under a guard that can
 * never hold: the path layer discharges it; the octagon pass cannot,
 * because i really is unconstrained. */
int main(int i) {
    int a[4];
    int x = 3;
    a[0] = 0;
    if (x > 10) {
        a[i] = 1;
    }
    return a[0];
}
