/* A constant zero divisor: a definite division by zero. */
int main(int y) {
    int z = 0;
    return y / z;
}
