/* The same possibly-null pointer dereferenced twice in one procedure:
 * two findings with the same (kind, proc, subject) must get distinct
 * ordinals and therefore distinct fingerprints. */
int g;

int main(int c) {
    int *p = 0;
    if (c) {
        p = &g;
    }
    *p = 1;
    *p = 2;
    return 0;
}
