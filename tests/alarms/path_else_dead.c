/* The deref sits in the else branch, so the dominating guard is the
 * negation !(x < 10); with x the constant 3 that negation never holds.
 * Pins the else polarity in the proving pack. */
int g;

int main(int c) {
    int x = 3;
    int *p = 0;
    if (c) {
        p = &g;
    }
    if (x < 10) {
        x = x + 1;
    } else {
        *p = 1;
    }
    return x;
}
