/* A perfectly feasible dominating guard: c > 0 is satisfiable, so the
 * possible null dereference under it must stay open under every triage
 * mode — the path layer refutes only contradictions, never mere
 * uncertainty. */
int g;

int main(int c) {
    int *p = 0;
    if (c > 3) {
        p = &g;
    }
    if (c > 0) {
        *p = 1;
    }
    return 0;
}
