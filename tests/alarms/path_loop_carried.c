/* A loop-carried guard must never be path-discharged: the guard i < n
 * holds on entry to each iteration, the body writes i, and the access
 * is genuinely reachable. The alarm (offset top vs size [1, +oo]) is
 * octagon-discharged in `both` mode, and must simply stay open in
 * `path` mode — no false path refutation. */
int probe(int n) {
    int s = 0;
    if (n > 0) {
        int *buf = malloc(n);
        int i = 0;
        while (i < n) {
            buf[i] = i;
            i = i + 2;
        }
        s = i;
    }
    return s;
}

int main(int argc) {
    return probe(argc);
}
