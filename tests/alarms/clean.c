/* No alarms of any kind: in-bounds constant indexing, initialized
 * locals, non-null pointers, nonzero divisors. */
int g;

int main() {
    int *buf = malloc(8);
    int i = 0;
    buf[3] = 4;
    int *p = &g;
    *p = 5;
    i = 10 / 2;
    return i;
}
