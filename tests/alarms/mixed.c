/* Several kinds across two procedures: a dischargeable loop overrun in
 * one, a definite division by zero and an uninitialized read in the
 * other. */
int sum(int n) {
    int s = 0;
    if (n > 0) {
        int *buf = malloc(n);
        int i = 0;
        while (i < n) {
            buf[i] = i;
            i = i + 1;
        }
        s = s + i;
    }
    return s;
}

int main(int argc) {
    int w;
    int z = 0;
    int r = sum(argc);
    r = r + 7 / z;
    return r + w;
}
