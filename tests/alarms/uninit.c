/* x is read but no execution path ever assigns it: the flow-insensitive
 * pre-analysis leaves its location unbound, which proves the read
 * uninitialized. */
int main() {
    int x;
    int y = 1;
    return x + y;
}
