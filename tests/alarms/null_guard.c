/* A pointer that is null on one path and &g on the other: a possible
 * (not definite) null dereference. */
int g;

int main(int c) {
    int *p = 0;
    if (c) {
        p = &g;
    }
    *p = 1;
    return 0;
}
