/* The divisor n - m is relationally positive under the guard m < n.
 * Interval analysis knows nothing about n - m; the octagon pack carries
 * m - n <= -1, so triage discharges the division alarm. */
int main(int n, int m) {
    int r = 0;
    if (m < n) {
        r = 100 / (n - m);
    }
    return r;
}
