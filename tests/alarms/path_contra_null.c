/* Two dominating guards on the same variable contradict each other:
 * inside n > 5 the refined value [6, +oo] makes n < 3 dead, so the
 * nested possible null dereference is path-discharged. The octagon
 * pass has no relation to offer here — p may genuinely be null. */
int g;

int main(int n, int c) {
    int *p = 0;
    if (c) {
        p = &g;
    }
    if (n > 5) {
        if (n < 3) {
            *p = 1;
        }
    }
    return 0;
}
