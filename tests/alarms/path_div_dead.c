/* A possible division by zero (the divisor is an unconstrained
 * parameter) inside a branch whose guard is constant-false. Only the
 * path layer can discharge it — no relation constrains d. */
int main(int d) {
    int x = 3;
    int r = 0;
    if (x > 10) {
        r = 100 / d;
    }
    return r;
}
