/* A definite overrun: index 9 into a 4-byte block. Definite alarms are
 * never triage candidates. */
int main() {
    int *buf = malloc(4);
    buf[9] = 1;
    return 0;
}
