//! Soundness, executably: every value a concrete run writes must be
//! included in what the abstract analyses claim at that control point.
//!
//! The IR interpreter ([`sga::ir::interp`]) logs `(control point, location,
//! concrete value)` triples; for each engine we assert the abstract value
//! `X(c)(l)` covers the concrete one — integers land in the interval,
//! pointers' targets land in the points-to/array components, function
//! pointers in the procedure set.

use sga::analysis::interval::{analyze, Engine, IntervalResult};
use sga::domains::{AbsLoc, Lattice, Value};
use sga::frontend::parse;
use sga::ir::interp::{self, CVal, InterpConfig, ObservedLoc, Outcome, Place};
use sga::ir::Program;

// Small shim: translate interpreter observations to abstract locations.
mod shim {
    use super::*;
    pub fn abs_loc(program: &Program, target: &ObservedLoc) -> AbsLoc {
        match *target {
            ObservedLoc::Var(v) => AbsLoc::Var(v),
            ObservedLoc::Field(v, f) => AbsLoc::Field(v, f),
            ObservedLoc::AllocSite(cp) => AbsLoc::Alloc(sga::domains::locs::AllocSite(cp)),
            ObservedLoc::AllocField(cp, f) => {
                AbsLoc::AllocField(sga::domains::locs::AllocSite(cp), f)
            }
        }
        .tap(program)
    }
    trait Tap {
        fn tap(self, _p: &Program) -> Self
        where
            Self: Sized,
        {
            self
        }
    }
    impl Tap for AbsLoc {}
}

/// The abstract value for `loc` at `cp`, widened to the call's successors
/// when `cp` is a call — dense engines materialize return-value bindings on
/// the return edge (i.e. in the successor's post-state), the sparse engine
/// at the call node itself.
fn abstract_at(program: &Program, result: &IntervalResult, cp: sga::ir::Cp, loc: &AbsLoc) -> Value {
    let mut aval = result.value_at(cp, loc);
    if matches!(program.cmd(cp), sga::ir::Cmd::Call { .. }) {
        for &s in program.procs[cp.proc].succs_of(cp.node) {
            aval = aval.join(&result.value_at(sga::ir::Cp::new(cp.proc, s), loc));
        }
    }
    aval
}

/// Whether concrete `cval` is covered by abstract `aval`.
fn covered(cval: &CVal, aval: &Value) -> bool {
    match cval {
        CVal::Uninit => true,
        CVal::Int(n) => aval.itv.contains(*n),
        CVal::Fn(p) => aval.procs.contains(&AbsLoc::Proc(*p)),
        CVal::Ptr(place, _off) => match place {
            Place::Global(v) | Place::Local(_, v) => {
                // Field-refined pointers lower to the variable; accept any
                // component of the variable in the abstract set.
                aval.ptr.iter().any(|l| l.var() == Some(*v))
                    || aval.arr.iter().any(|(b, _)| b.var() == Some(*v))
            }
            Place::Heap(_, site) => {
                let l = AbsLoc::Alloc(sga::domains::locs::AllocSite(*site));
                aval.ptr.contains(&l) || aval.arr.iter().any(|(b, _)| *b == l)
            }
        },
    }
}

fn check_run(
    program: &Program,
    result: &IntervalResult,
    config: &InterpConfig,
    engine: Engine,
    src_tag: &str,
) {
    let run = interp::run(program, config);
    assert!(
        !matches!(run.outcome, Outcome::Trap(_)),
        "{src_tag}: interpreter trapped: {:?}",
        run.outcome
    );
    for obs in &run.log {
        let loc = shim::abs_loc(program, &obs.target);
        let aval = abstract_at(program, result, obs.cp, &loc);
        assert!(
            covered(&obs.value, &aval),
            "{src_tag} {engine:?}: UNSOUND at {} for {loc:?}\n  concrete {:?}\n  abstract {:?}\n  cmd: {}",
            obs.cp,
            obs.value,
            aval,
            sga::ir::pretty::cmd(program, program.cmd(obs.cp)),
        );
    }
}

fn check_sources(src: &str, configs: &[InterpConfig]) {
    let program = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
        let result = analyze(&program, engine);
        for config in configs {
            check_run(&program, &result, config, engine, "handwritten");
        }
    }
}

fn arg_sweep() -> Vec<InterpConfig> {
    [-3i64, 0, 1, 5, 42, 1000]
        .into_iter()
        .map(|a| InterpConfig {
            main_args: vec![a],
            unknown_supply: vec![a, 9, -1],
            ..Default::default()
        })
        .collect()
}

#[test]
fn sound_on_loops_and_branches() {
    check_sources(
        "int main(int n) {
            int i = 0; int s = 0;
            while (i < 50) {
                if (i % 3 == 0) s = s + i; else s = s - 1;
                i = i + 1;
            }
            int r = s + n;
            return r;
         }",
        &arg_sweep(),
    );
}

#[test]
fn sound_on_pointers_and_heap() {
    check_sources(
        "int g;
         int main(int n) {
            int *p = malloc(4);
            *p = n;
            int *q = p;
            *q = *q + 1;
            g = *p;
            int *r = &g;
            *r = *r * 2;
            return g;
         }",
        &arg_sweep(),
    );
}

#[test]
fn sound_on_calls_and_recursion() {
    check_sources(
        "int gcd(int a, int b) {
            if (b == 0) return a;
            return gcd(b, a % b);
         }
         int main(int n) {
            if (n < 1) n = 1;
            int r = gcd(n + 12, n);
            return r;
         }",
        &arg_sweep(),
    );
}

#[test]
fn sound_on_structs_and_fields() {
    check_sources(
        "struct box { int v; struct box *next; };
         int main(int n) {
            struct box a;
            struct box b;
            a.v = n;
            a.next = &b;
            struct box *p = &a;
            p->next->v = n * 2;
            int r = b.v + a.v;
            return r;
         }",
        &arg_sweep(),
    );
}

#[test]
fn sound_on_function_pointers() {
    check_sources(
        "int inc(int x) { return x + 1; }
         int dec(int x) { return x - 1; }
         int main(int n) {
            int (*op)(int);
            if (n > 0) op = inc; else op = dec;
            int r = op(n);
            return r;
         }",
        &arg_sweep(),
    );
}

#[test]
fn sound_on_generated_programs() {
    for seed in [21u64, 77, 2026] {
        let cfg = sga::cgen::GenConfig::sized(seed, 1);
        let src = sga::cgen::generate(&cfg);
        let program = parse(&src).expect("generated source parses");
        let result = analyze(&program, Engine::Sparse);
        for args in [vec![0i64], vec![3], vec![100]] {
            let config = InterpConfig {
                main_args: args,
                unknown_supply: vec![5, -2, 11],
                fuel: 500_000,
                max_depth: 600,
            };
            let run = interp::run(&program, &config);
            // Generated programs always terminate (bounded loops, guarded
            // recursion) — but don't insist, just check what executed.
            for obs in &run.log {
                let loc = shim::abs_loc(&program, &obs.target);
                let aval = abstract_at(&program, &result, obs.cp, &loc);
                assert!(
                    covered(&obs.value, &aval),
                    "seed {seed}: UNSOUND at {} for {loc:?}: {:?} ⊄ {:?}\n  cmd: {}",
                    obs.cp,
                    obs.value,
                    aval,
                    sga::ir::pretty::cmd(&program, program.cmd(obs.cp)),
                );
            }
        }
    }
}
