//! Process-isolation suite: the worker-pool guarantees of
//! `--isolation process`.
//!
//! * the canonical report is byte-identical to the in-thread engine at any
//!   `--jobs` — isolation is an execution detail, not a semantic choice;
//! * aborts, OOM kills, and spinning workers degrade to the `crashed`
//!   outcome (exit 3) while the parent survives and finishes the batch;
//! * a worker that blows the wall-clock limit is SIGKILLed and the report
//!   says so;
//! * cooperative budget exhaustion (`--timeout-ms`) stays `degraded`, not
//!   `crashed` — the two timeouts are distinguishable in the report;
//! * the daemon refuses fault directives it cannot interpret.

use sga::utils::Json;
use std::process::{Command, Output};

fn sga_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sga")
}

fn run_sga(args: &[&str]) -> Output {
    Command::new(sga_bin())
        .args(args)
        .output()
        .expect("spawn sga")
}

fn stdout_json(out: &Output) -> Json {
    let text = String::from_utf8_lossy(&out.stdout);
    Json::parse(&text).unwrap_or_else(|e| panic!("report is not JSON ({e}): {text}"))
}

fn total(report: &Json, field: &str) -> u64 {
    report
        .get("totals")
        .and_then(|t| t.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("totals.{field} missing"))
}

fn isolation_counter(report: &Json, field: &str) -> u64 {
    report
        .get("isolation")
        .and_then(|i| i.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("isolation.{field} missing"))
}

// ---- byte identity -----------------------------------------------------

#[test]
fn process_isolation_report_is_byte_identical_to_thread() {
    let mut reports = Vec::new();
    for isolation in ["thread", "process"] {
        for jobs in ["1", "4"] {
            let out = run_sga(&[
                "analyze",
                "--corpus",
                "units=4,kloc=1,seed=11",
                "--canonical",
                "--no-cache",
                "--jobs",
                jobs,
                "--isolation",
                isolation,
            ]);
            assert!(
                out.status.success(),
                "clean corpus failed under --isolation {isolation} --jobs {jobs}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            reports.push(out.stdout);
        }
    }
    for r in &reports[1..] {
        assert_eq!(
            &reports[0], r,
            "canonical report must not depend on isolation mode or jobs"
        );
    }
}

// ---- fatal faults survive as crashed outcomes --------------------------

#[test]
fn abort_oom_and_spin_degrade_to_crashed_while_the_parent_survives() {
    let out = run_sga(&[
        "analyze",
        "--corpus",
        "units=8,kloc=1,seed=11",
        "--no-cache",
        "--jobs",
        "2",
        "--isolation",
        "process",
        "--worker-mem-mb",
        "512",
        "--worker-timeout-ms",
        "60000",
        "--faults",
        "abort@2,oom@4=4096,spin@6=500",
    ]);
    // Exit 3: partial failure, parent alive to render the report.
    assert_eq!(
        out.status.code(),
        Some(3),
        "expected exit 3 (crashed units)"
    );
    let report = stdout_json(&out);
    assert_eq!(total(&report, "crashed"), 3);
    assert_eq!(total(&report, "units"), 8);
    // Each fatal unit dies on both attempts; the OOM heuristic must
    // classify at least the oom@4 deaths.
    assert!(isolation_counter(&report, "killed") >= 3);
    assert!(isolation_counter(&report, "retried") >= 3);
    assert!(isolation_counter(&report, "oom") >= 1);
    let units = report.get("units").and_then(Json::as_arr).expect("units");
    let crashed: Vec<&str> = units
        .iter()
        .filter(|u| u.get("outcome").and_then(Json::as_str) == Some("crashed"))
        .map(|u| u.get("name").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(crashed, ["unit002", "unit004", "unit006"]);
}

#[test]
fn stack_overflow_is_contained_by_the_worker_process() {
    let out = run_sga(&[
        "analyze",
        "--corpus",
        "units=3,kloc=1,seed=11",
        "--no-cache",
        "--jobs",
        "1",
        "--isolation",
        "process",
        "--faults",
        "stackoverflow@1",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let report = stdout_json(&out);
    assert_eq!(total(&report, "crashed"), 1);
    let units = report.get("units").and_then(Json::as_arr).expect("units");
    let ok = units
        .iter()
        .filter(|u| u.get("outcome").and_then(Json::as_str) == Some("ok"))
        .count();
    assert_eq!(ok, 2, "the other two units must finish");
}

// ---- hard stall vs cooperative timeout ---------------------------------

#[test]
fn hard_stall_is_sigkilled_and_reported_as_a_wall_clock_kill() {
    // A single unit that spins for two minutes: the 1500 ms supervisor
    // must SIGKILL it (twice, with the retry) long before that. One unit
    // only, so a slow loaded machine cannot trip the limit on a clean
    // sibling unit.
    let out = run_sga(&[
        "analyze",
        "--corpus",
        "units=1,kloc=1,seed=11",
        "--no-cache",
        "--jobs",
        "1",
        "--isolation",
        "process",
        "--worker-timeout-ms",
        "1500",
        "--faults",
        "spin@0=120000",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let report = stdout_json(&out);
    assert_eq!(total(&report, "crashed"), 1);
    assert!(isolation_counter(&report, "stalls") >= 1);
    let units = report.get("units").and_then(Json::as_arr).expect("units");
    let error = units[0]
        .get("error")
        .and_then(Json::as_str)
        .expect("crashed unit error");
    assert!(
        error.contains("wall-clock"),
        "stall error should name the wall-clock limit, got: {error}"
    );
}

#[test]
fn cooperative_timeout_degrades_instead_of_crashing() {
    let out = run_sga(&[
        "analyze",
        "--corpus",
        "units=2,kloc=1,seed=11",
        "--no-cache",
        "--jobs",
        "1",
        "--isolation",
        "process",
        "--timeout-ms",
        "1",
    ]);
    // Degraded is sound, not fatal: exit 0 and zero crashes.
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = stdout_json(&out);
    assert_eq!(total(&report, "crashed"), 0);
    assert_eq!(total(&report, "degraded"), 2);
}

// ---- env override for foreign harnesses --------------------------------

#[test]
fn worker_binary_env_override_is_honored() {
    let out = Command::new(sga_bin())
        .env("SGA_WORKER_BIN", sga_bin())
        .args([
            "analyze",
            "--corpus",
            "units=2,kloc=1,seed=11",
            "--no-cache",
            "--jobs",
            "1",
            "--isolation",
            "process",
        ])
        .output()
        .expect("spawn sga");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

// ---- isolated single-file check ----------------------------------------

#[test]
fn isolated_check_analyzes_and_reports_frontend_errors_without_dying() {
    let dir = std::env::temp_dir().join(format!("sga-iso-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ok = dir.join("ok.c");
    std::fs::write(&ok, "int main() { int a = 1; return a; }\n").unwrap();
    let out = run_sga(&["check", ok.to_str().unwrap(), "--isolation", "process"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let bad = dir.join("bad.c");
    std::fs::write(&bad, "int main( {\n").unwrap();
    let out = run_sga(&["check", bad.to_str().unwrap(), "--isolation", "process"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad.c"),
        "frontend error should name the file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- daemon fault-plan rejection ---------------------------------------

#[test]
fn serve_rejects_fault_directives_it_cannot_interpret() {
    let out = run_sga(&["serve", "/nonexistent", "--faults", "abort@1,panic@2"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("serve cannot interpret abort"),
        "got: {stderr}"
    );
}
