//! Cross-crate integration tests: generator → frontend → IR → analyses →
//! checker, exercised end to end.

use sga::analysis::checker::check_overruns;
use sga::analysis::interval::{analyze, Engine};
use sga::analysis::{octagon, preanalysis};
use sga::cgen::{generate, GenConfig};
use sga::domains::{AbsLoc, Interval, Lattice};
use sga::frontend::parse;
use sga::ir::metrics::ProgramMetrics;
use sga::ir::{Cmd, LVal, Program, VarId};

fn var(program: &Program, name: &str) -> VarId {
    program
        .vars
        .iter_enumerated()
        .find(|(_, v)| v.name == name)
        .map(|(i, _)| i)
        .unwrap_or_else(|| panic!("no var {name}"))
}

fn def_of(program: &Program, name: &str) -> sga::ir::Cp {
    let v = var(program, name);
    program
        .all_points()
        .filter(|cp| matches!(program.cmd(*cp), Cmd::Assign(LVal::Var(x), _) if *x == v))
        .last()
        .unwrap_or_else(|| panic!("no assignment to {name}"))
}

#[test]
fn generated_programs_run_through_all_engines() {
    for seed in [1, 7, 42] {
        let cfg = GenConfig::sized(seed, 1);
        let src = generate(&cfg);
        let program = parse(&src).expect("generated source parses");
        assert!(sga::ir::validate::validate(&program).is_empty());
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            let r = analyze(&program, engine);
            assert!(r.stats.iterations > 0, "seed {seed} {engine:?} did nothing");
            assert!(!r.values.is_empty());
        }
    }
}

#[test]
fn metrics_reflect_generator_knobs() {
    let cfg = GenConfig {
        max_scc: 5,
        functions: 12,
        ..GenConfig::default()
    };
    let src = generate(&cfg);
    let program = parse(&src).unwrap();
    let pre = preanalysis::run(&program);
    let m = ProgramMetrics::measure(&program, &pre.callgraph);
    assert!(m.functions >= 12, "functions: {}", m.functions);
    assert!(m.max_scc >= 2 && m.max_scc <= 5, "maxSCC: {}", m.max_scc);
    assert!(m.statements > 0 && m.blocks > 0);
}

#[test]
fn whole_pipeline_on_linked_list_program() {
    // Pointers, structs, heap allocation, a loop and a helper — the paper's
    // Example-1 ingredients in one program.
    let src = r#"
        struct node { int data; struct node *next; };

        struct node *cons(int v, struct node *tail) {
            struct node *n = malloc(16);
            n->data = v;
            n->next = tail;
            return n;
        }

        int sum(struct node *l) {
            int s = 0;
            while (l != 0) {
                s = s + l->data;
                l = l->next;
            }
            return s;
        }

        int main() {
            struct node *list = 0;
            int i = 0;
            while (i < 5) {
                list = cons(i, list);
                i = i + 1;
            }
            int total = sum(list);
            return total;
        }
    "#;
    let program = parse(src).unwrap();
    for engine in [Engine::Base, Engine::Sparse] {
        let r = analyze(&program, engine);
        // i is bounded by the loop condition.
        let i_def = def_of(&program, "i");
        let iv = r.value_at(i_def, &AbsLoc::Var(var(&program, "i")));
        assert!(
            iv.itv.le(&Interval::range(1, 5)),
            "{engine:?}: i = {:?}",
            iv.itv
        );
        // list points to the single allocation site in cons.
        let list_def = def_of(&program, "list");
        let lv = r.value_at(list_def, &AbsLoc::Var(var(&program, "list")));
        assert!(
            !lv.arr.is_empty() || !lv.ptr.is_empty(),
            "{engine:?}: list = {lv:?}"
        );
    }
}

#[test]
fn checker_agrees_across_engines_on_generated_code() {
    for seed in [3, 9] {
        let cfg = GenConfig::sized(seed, 1);
        let src = generate(&cfg);
        let program = parse(&src).unwrap();
        let base = check_overruns(&program, &analyze(&program, Engine::Base));
        let sparse = check_overruns(&program, &analyze(&program, Engine::Sparse));
        // Identical alarm sets — the client-level statement of precision
        // preservation.
        assert_eq!(
            base.len(),
            sparse.len(),
            "seed {seed}: base {base:#?} vs sparse {sparse:#?}"
        );
    }
}

#[test]
fn octagon_engines_run_on_generated_code() {
    let cfg = GenConfig::sized(11, 1);
    let src = generate(&cfg);
    let program = parse(&src).unwrap();
    for engine in [octagon::Engine::Base, octagon::Engine::Sparse] {
        let r = octagon::analyze(&program, engine);
        assert!(r.stats.iterations > 0);
        assert!(!r.packs.is_empty());
    }
}

#[test]
fn function_pointers_resolve_end_to_end() {
    let src = r#"
        int twice(int x) { return x + x; }
        int thrice(int x) { return x + x + x; }
        int apply(int (*f)(int), int v) { return f(v); }
        int main(int c) {
            int (*op)(int);
            if (c) op = twice; else op = thrice;
            int r = apply(op, 7);
            return r;
        }
    "#;
    let program = parse(src).unwrap();
    let pre = preanalysis::run(&program);
    let apply = program.proc_by_name("apply").unwrap();
    let twice = program.proc_by_name("twice").unwrap();
    let thrice = program.proc_by_name("thrice").unwrap();
    assert!(pre.callgraph.callees[apply].contains(&twice));
    assert!(pre.callgraph.callees[apply].contains(&thrice));
    for engine in [Engine::Base, Engine::Sparse] {
        let r = analyze(&program, engine);
        let rv = r.value_at(def_of(&program, "r"), &AbsLoc::Var(var(&program, "r")));
        // twice(7)=14, thrice(7)=21: result ∈ [14, 21].
        assert!(
            rv.itv.le(&Interval::range(14, 21)),
            "{engine:?}: r = {:?}",
            rv.itv
        );
        assert!(
            Interval::constant(14).le(&rv.itv),
            "{engine:?}: r = {:?}",
            rv.itv
        );
    }
}

#[test]
fn dependency_stores_capture_generated_relation() {
    use sga::analysis::interval::{AnalyzeOptions, Pipeline};
    use sga::bdd::{BddDepStore, DepStore, SetDepStore};

    let cfg = GenConfig::sized(5, 1);
    let src = generate(&cfg);
    let program = parse(&src).unwrap();
    let pl = Pipeline::prepare(&program, AnalyzeOptions::default());
    let numbering = program.point_numbering();

    let mut set = SetDepStore::new();
    let mut bdd = BddDepStore::new(numbering.len() as u32, pl.du.locs.len() as u32);
    for (from, loc, to) in pl.deps.iter() {
        let t = sga::bdd::relation::DepTriple {
            from: numbering.index(from) as u32,
            to: numbering.index(to) as u32,
            loc,
        };
        set.insert(t);
        bdd.insert(t);
    }
    assert_eq!(set.len(), bdd.len());
    assert_eq!(set.len(), pl.deps.stats.final_edges);
    // Spot-check membership parity on the actual triples.
    for (from, loc, to) in pl.deps.iter().take(500) {
        let t = sga::bdd::relation::DepTriple {
            from: numbering.index(from) as u32,
            to: numbering.index(to) as u32,
            loc,
        };
        assert!(set.contains(t) && bdd.contains(t));
    }
}
