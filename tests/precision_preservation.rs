//! Lemma 2 as an executable oath: the sparse analysis preserves the
//! baseline's precision.
//!
//! * On intraprocedural programs the results are **identical** on every
//!   `D̂(c)` entry (Lemma 1/2 verbatim — dependencies are exact there).
//! * Interprocedurally, the engines place widening points differently
//!   (WTO heads + recursive entries vs. dependency cycles), so individual
//!   entries may differ by over-approximation — usually in one direction
//!   (⊑-comparable), occasionally each losing a *different* bound on
//!   recursion-heavy code (incomparable but still sound; the soundness
//!   suite checks both against concrete runs). The overwhelming majority
//!   must be exactly equal.
//!
//! Comparisons skip call nodes: the sparse engine stores parameter/relay
//! bindings there, which dense engines keep on ICFG edges.

use sga::analysis::interval::{analyze, Engine, IntervalResult};
use sga::domains::Lattice;
use sga::frontend::parse;
use sga::ir::{Cmd, Program};

struct Comparison {
    checked: usize,
    equal: usize,
    comparable: usize,
    incomparable: Vec<String>,
}

fn compare(program: &Program, base: &IntervalResult, sparse: &IntervalResult) -> Comparison {
    let mut cmp = Comparison {
        checked: 0,
        equal: 0,
        comparable: 0,
        incomparable: Vec::new(),
    };
    for (cp, st) in &sparse.values {
        if matches!(program.cmd(*cp), Cmd::Call { .. }) {
            continue;
        }
        for (loc, v) in st.iter() {
            if v.is_bottom() {
                continue;
            }
            cmp.checked += 1;
            let bv = base.value_at(*cp, loc);
            if *v == bv {
                cmp.equal += 1;
            } else if v.le(&bv) || bv.le(v) {
                cmp.comparable += 1;
            } else {
                cmp.incomparable.push(format!(
                    "{cp} {loc:?}: sparse {v:?} vs base {bv:?} ({})",
                    sga::ir::pretty::cmd(program, program.cmd(*cp))
                ));
            }
        }
    }
    cmp
}

fn assert_exact(src: &str) {
    let program = parse(src).unwrap();
    let base = analyze(&program, Engine::Base);
    let sparse = analyze(&program, Engine::Sparse);
    let cmp = compare(&program, &base, &sparse);
    assert!(cmp.checked > 0, "nothing compared");
    assert_eq!(
        cmp.equal, cmp.checked,
        "expected exact equality, got {} / {} ({:?})",
        cmp.equal, cmp.checked, cmp.incomparable
    );
}

#[test]
fn exact_on_straight_line() {
    assert_exact(
        "int main() {
            int a = 3; int b = a * 2; int c = b - a;
            return c;
        }",
    );
}

#[test]
fn exact_on_branches() {
    assert_exact(
        "int main(int c) {
            int x = 0;
            if (c > 10) { x = c; } else { x = 10 - c; }
            int y = x + 1;
            return y;
        }",
    );
}

#[test]
fn exact_on_loops() {
    assert_exact(
        "int main() {
            int i = 0; int s = 0;
            while (i < 100) { s = s + 2; i = i + 1; }
            int t = s - i;
            return t;
        }",
    );
}

#[test]
fn exact_on_nested_loops() {
    assert_exact(
        "int main() {
            int i = 0; int total = 0;
            while (i < 10) {
                int j = 0;
                while (j < i) { total = total + 1; j = j + 1; }
                i = i + 1;
            }
            return total;
        }",
    );
}

#[test]
fn exact_on_pointers_weak_and_strong() {
    assert_exact(
        "int x; int y; int *p; int *q;
         int main(int c) {
            q = &x;
            *q = 5;            /* strong: q = {x} */
            if (c) p = &x; else p = &y;
            *p = 9;            /* weak: p = {x, y} */
            int r = x + y;
            return r;
         }",
    );
}

#[test]
fn exact_on_arrays() {
    assert_exact(
        "int main() {
            int a[10];
            int i = 0;
            while (i < 10) { a[i] = i; i = i + 1; }
            int v = a[3];
            return v;
        }",
    );
}

#[test]
fn exact_on_paper_example_program() {
    // The §2 running example (p ↦ {x, y} via branching).
    assert_exact(
        "int y; int z; int *x; int **p;
         int main(int c) {
            if (c) p = &x; else p = (int**)&y;
            x = &y;
            *p = &z;
            y = (int)x;
            return 0;
         }",
    );
}

#[test]
fn interprocedural_single_call_chain_is_exact() {
    assert_exact(
        "int g;
         int h() { g = g + 1; return g; }
         int f() { return h() + 1; }
         int main() { g = 10; int r = f(); return r + g; }",
    );
}

#[test]
fn interprocedural_comparable_and_mostly_equal() {
    for seed in [2026, 13, 99] {
        let cfg = sga::cgen::GenConfig::sized(seed, 1);
        let src = sga::cgen::generate(&cfg);
        let program = parse(&src).unwrap();
        let base = analyze(&program, Engine::Base);
        let sparse = analyze(&program, Engine::Sparse);
        let cmp = compare(&program, &base, &sparse);
        let equal_ratio = cmp.equal as f64 / cmp.checked as f64;
        let incomparable_ratio = cmp.incomparable.len() as f64 / cmp.checked as f64;
        assert!(
            equal_ratio > 0.90,
            "seed {seed}: only {:.1}% of {} bindings equal",
            equal_ratio * 100.0,
            cmp.checked
        );
        assert!(
            incomparable_ratio < 0.02,
            "seed {seed}: {:.1}% incomparable bindings — more than widening-point \
             placement explains:\n{}",
            incomparable_ratio * 100.0,
            cmp.incomparable.join("\n")
        );
    }
}

#[test]
fn octagon_sparse_matches_base_on_relations() {
    let src = "int main(int n) {
            int i = 0; int j = 0; int k = 5;
            while (i < n) { i = i + 1; j = j + 1; }
            int d = i - j;
            int e = k + 1;
            return d + e;
         }";
    let program = parse(src).unwrap();
    let base = sga::analysis::octagon::analyze(&program, Engine::Base);
    let sparse = sga::analysis::octagon::analyze(&program, Engine::Sparse);
    for name in ["d", "e", "k"] {
        let v = program
            .vars
            .iter_enumerated()
            .find(|(_, info)| info.name == name)
            .map(|(i, _)| i)
            .unwrap();
        let def = program
            .all_points()
            .filter(
                |cp| matches!(program.cmd(*cp), Cmd::Assign(sga::ir::LVal::Var(x), _) if *x == v),
            )
            .last()
            .unwrap();
        assert_eq!(
            base.itv_of(def, v),
            sparse.itv_of(def, v),
            "octagon precision differs on {name}"
        );
    }
}

// Bit-equality between bypass on/off is *not* graph-shape-independent under
// naive widening: without bypass, joins reach a cycle node through relay
// hops in several worklist steps, so the node observes a transiently growing
// bound and widens it to ±oo, while with bypass the full join arrives in one
// step and the bound stays stable (on cgen seed 77, naive widening leaves 6
// of ~1629 bindings differing by a lost lower bound, e.g. [9, 30] vs
// [-oo, 30]). The default `delayed` strategy restores equality: the first
// DEFAULT_DELAY *changing* joins at each cycle head are plain joins, which
// absorbs the relay-hop transients, so both evaluation orders enter actual
// widening with the same accumulated state.
#[test]
fn bypass_optimization_preserves_results() {
    use sga::analysis::depgen::DepGenOptions;
    use sga::analysis::interval::{analyze_with, AnalyzeOptions};
    let cfg = sga::cgen::GenConfig::sized(77, 1);
    let src = sga::cgen::generate(&cfg);
    let program = parse(&src).unwrap();
    let with = analyze_with(
        &program,
        Engine::Sparse,
        AnalyzeOptions {
            depgen: DepGenOptions { bypass: true },
            ..Default::default()
        },
    );
    let without = analyze_with(
        &program,
        Engine::Sparse,
        AnalyzeOptions {
            depgen: DepGenOptions { bypass: false },
            ..Default::default()
        },
    );
    // The optimization only shortens chains; every binding must be equal.
    let mut checked = 0;
    for (cp, st) in &with.values {
        for (loc, v) in st.iter() {
            if v.is_bottom() {
                continue;
            }
            checked += 1;
            assert_eq!(
                *v,
                without.value_at(*cp, loc),
                "bypass changed the result at {cp} {loc:?}"
            );
        }
    }
    assert!(checked > 100, "too few bindings compared: {checked}");
}
