//! A miniature Sparrow: scan C code for buffer overruns with the sparse
//! interval analysis — the paper's motivating client (sound static error
//! detection that scales).
//!
//! ```sh
//! cargo run -p sga --example overrun_checker [file.c]
//! ```
//!
//! Without an argument, a built-in demo program with two planted bugs is
//! checked.

use sga::analysis::checker::check_overruns;
use sga::analysis::interval::{analyze, Engine};
use sga::frontend;

const DEMO: &str = r#"
int fill(int *buf, int n) {
    int i = 0;
    while (i <= n) {        /* BUG: off-by-one when n == size */
        buf[i] = i;
        i = i + 1;
    }
    return i;
}

int sum_head(int *buf) {
    int s = 0;
    int k = 0;
    while (k < 4) {
        s = s + buf[k];
        k = k + 1;
    }
    return s;
}

int main() {
    int *small = malloc(8);
    int *big = malloc(64);
    fill(small, 8);          /* overruns small[8] */
    fill(big, 32);           /* also joins into the same summary */
    int s = sum_head(small); /* fine: reads [0,3] */
    big[70] = s;             /* BUG: definite out-of-bounds write */
    return s;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (name, src) = match std::env::args().nth(1) {
        Some(path) => (path.clone(), std::fs::read_to_string(&path)?),
        None => ("<demo>".to_string(), DEMO.to_string()),
    };

    let program = frontend::parse(&src)?;
    let result = analyze(&program, Engine::Sparse);
    let alarms = check_overruns(&program, &result);

    println!(
        "checked {name}: {} potential buffer overrun(s)",
        alarms.len()
    );
    for alarm in &alarms {
        println!("  {alarm}");
    }
    if alarms.is_empty() {
        println!("  no overruns provable or suspected — clean bill of health");
    }

    // Exit nonzero when a definite bug is found, like a real linter.
    if alarms.iter().any(|a| a.definite) {
        std::process::exit(1);
    }
    Ok(())
}
