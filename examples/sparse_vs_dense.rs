//! Sparse vs. dense, head to head: generate a synthetic program, run all
//! three interval analyzers, and print the paper's Table-2-style row —
//! times, state sizes, dependency counts, and the precision check.
//!
//! ```sh
//! cargo run --release -p sga --example sparse_vs_dense [kloc]
//! ```

use sga::analysis::interval::{analyze, Engine};
use sga::cgen::{generate, GenConfig};
use sga::domains::Lattice;
use sga::frontend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kloc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let config = GenConfig::sized(2026, kloc);
    let src = generate(&config);
    let program = frontend::parse(&src)?;
    println!(
        "generated ~{} LOC ({} procedures, {} control points)\n",
        src.lines().count(),
        program.procs.len(),
        program.num_points()
    );

    let mut results = Vec::new();
    for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
        // The point of the paper: the dense global analysis does not scale.
        // Don't make the demo wait for it beyond a few KLOC.
        if engine == Engine::Vanilla && kloc > 3 {
            println!(
                "{:8}  skipped (dense global analysis beyond 3 KLOC takes minutes–hours)",
                "Vanilla"
            );
            continue;
        }
        let r = analyze(&program, engine);
        let bindings: usize = r.values.values().map(|s| s.len()).sum();
        println!(
            "{:8}  total {:>9.3?}  fix {:>9.3?}  evaluations {:>8}  state bindings {:>9}",
            format!("{engine:?}"),
            r.stats.total_time,
            r.stats.fix_time,
            r.stats.iterations,
            bindings,
        );
        if engine == Engine::Sparse {
            println!(
                "{:8}  dep-gen {:?} ({} edges, {} before bypass), avg |D̂|={:.1} |Û|={:.1}",
                "",
                r.stats.dep_phase(),
                r.stats.dep_edges,
                r.stats.dep_edges_raw,
                r.stats.avg_defs,
                r.stats.avg_uses,
            );
        }
        results.push((engine, r));
    }

    // Precision: sparse must match base on every location it binds
    // (Lemma 2: same result on D̂(c)).
    let base = &results[results.len() - 2].1;
    let sparse = &results[results.len() - 1].1;
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for (cp, st) in &sparse.values {
        // Call nodes hold edge-owned bindings (parameters, callee relays)
        // that dense engines keep on ICFG edges; skip them.
        if matches!(program.cmd(*cp), sga::ir::Cmd::Call { .. }) {
            continue;
        }
        for (loc, v) in st.iter() {
            if v.is_bottom() {
                continue;
            }
            checked += 1;
            if *v != base.value_at(*cp, loc) {
                mismatches += 1;
            }
        }
    }
    println!(
        "\nprecision: {checked} sparse bindings compared against base, {mismatches} mismatches"
    );
    Ok(())
}
