//! The relational payoff: properties intervals cannot prove but octagons
//! can — reproduced with the §4 packed-octagon instance, sparse engine.
//!
//! ```sh
//! cargo run -p sga --example octagon_relations
//! ```

use sga::analysis::interval;
use sga::analysis::octagon;
use sga::frontend;
use sga::ir::{Cmd, LVal};

const SRC: &str = r#"
int main(int n) {
    int i = 0;
    int j = 0;
    while (i < n) {
        i = i + 1;
        j = j + 1;
    }
    /* The loop keeps i == j; intervals see two unbounded counters. */
    int diff = i - j;
    int buf_ok = diff;          /* should be exactly 0 */
    return buf_ok;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = frontend::parse(SRC)?;
    let diff_var = program
        .vars
        .iter_enumerated()
        .find(|(_, v)| v.name == "diff")
        .map(|(i, _)| i)
        .expect("diff exists");
    let diff_def = program
        .all_points()
        .find(|cp| matches!(program.cmd(*cp), Cmd::Assign(LVal::Var(v), _) if *v == diff_var))
        .expect("diff is assigned");

    // Interval instance: diff is the difference of two ⊤ counters — ⊤.
    let iv = interval::analyze(&program, interval::Engine::Sparse);
    let interval_diff = iv
        .value_at(diff_def, &sga::domains::AbsLoc::Var(diff_var))
        .itv;
    println!("interval analysis:  diff = {interval_diff}");

    // Octagon instance: the pack ⟪i, j, diff⟫ carries i − j = 0 through the
    // loop (widening stabilizes the relation even though both grow).
    let oct = octagon::analyze(&program, octagon::Engine::Sparse);
    let oct_diff = oct.itv_of(diff_def, diff_var);
    println!("octagon  analysis:  diff = {oct_diff}");
    println!(
        "packs: {} (average size {:.1})",
        oct.packs.len(),
        oct.packs.average_size()
    );

    assert_eq!(
        oct_diff,
        sga::domains::Interval::constant(0),
        "octagons must prove diff == 0"
    );
    assert_ne!(
        interval_diff,
        sga::domains::Interval::constant(0),
        "intervals alone cannot prove it"
    );
    println!("\n⇒ the relational instance proves diff == 0; intervals cannot.");
    Ok(())
}
