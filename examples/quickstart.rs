//! Quickstart: parse a C snippet, run the sparse interval analysis, and
//! print what the analyzer knows at every definition point.
//!
//! ```sh
//! cargo run -p sga --example quickstart
//! ```

use sga::analysis::interval::{analyze, Engine};
use sga::frontend;
use sga::ir::pretty;

const SRC: &str = r#"
int total;

int sum_to(int n) {
    int i = 0;
    int acc = 0;
    while (i <= n) {
        acc = acc + i;
        i = i + 1;
    }
    return acc;
}

int main() {
    total = sum_to(10);
    return total;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = frontend::parse(SRC)?;

    println!("== Lowered IR ==");
    print!("{}", pretty::program(&program));

    let result = analyze(&program, Engine::Sparse);
    println!("== Sparse interval analysis ==");
    println!(
        "fixpoint in {} node evaluations ({} dependency edges)\n",
        result.stats.iterations, result.stats.dep_edges
    );

    // Sparse results live exactly at definition points: print them all.
    let mut rows: Vec<(String, String)> = Vec::new();
    for cp in program.all_points() {
        let state = result.state_at(cp);
        if state.is_empty() {
            continue;
        }
        for (loc, value) in state.iter() {
            rows.push((
                format!("{cp}: {}", pretty::cmd(&program, program.cmd(cp))),
                format!("{loc:?} = {value:?}"),
            ));
        }
    }
    rows.sort();
    for (at, binding) in rows {
        println!("  [{at}]  {binding}");
    }

    // The headline fact: main's return value.
    let main = program.main;
    let ret = sga::domains::AbsLoc::Var(program.procs[main].ret_var);
    let ret_cp = program
        .all_points()
        .find(|cp| cp.proc == main && matches!(program.cmd(*cp), sga::ir::Cmd::Return(Some(_))))
        .expect("main returns");
    println!("\nmain() returns {:?}", result.value_at(ret_cp, &ret).itv);
    Ok(())
}
