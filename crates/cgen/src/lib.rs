//! Deterministic synthetic C program generator — the benchmark substrate.
//!
//! The paper evaluates on 16 open-source C packages (gzip … ghostscript,
//! 7 KLOC – 1.4 MLOC). Those sources aren't reproducible inputs for a
//! self-contained library, and §6.3's own discussion says analysis cost
//! tracks *shape* — sparsity (average D̂/Û size) and the call graph's
//! largest SCC — rather than raw line count. This generator exposes exactly
//! those shape knobs, so the benchmark harness can synthesize stand-ins
//! whose Table 1 characteristics mirror each paper row:
//!
//! * [`GenConfig::target_loc`] — approximate source size;
//! * [`GenConfig::functions`] — function count;
//! * [`GenConfig::globals`] — global-variable count (drives sparsity:
//!   globals are what flows interprocedurally);
//! * [`GenConfig::max_scc`] — size of a deliberately constructed recursion
//!   cycle in the call graph (the `maxSCC` column; §6 blames large SCCs for
//!   emacs-like slowdowns);
//! * [`GenConfig::ptr_density`] — fraction of statements manipulating
//!   pointers/arrays rather than scalars.
//!
//! Generation is seeded and fully deterministic: the same config yields the
//! same program byte-for-byte. The output is real C-subset source that goes
//! through the full `sga-cfront` pipeline — the generator exercises the
//! frontend as hard as the analyzers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Shape parameters for one synthetic program.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed; same seed + same knobs ⇒ identical source.
    pub seed: u64,
    /// Approximate lines of code to generate.
    pub target_loc: usize,
    /// Number of functions (besides `main`).
    pub functions: usize,
    /// Number of global scalar variables.
    pub globals: usize,
    /// Number of global pointer variables.
    pub global_ptrs: usize,
    /// Size of the recursion cycle to build into the call graph
    /// (0 or 1 = no recursion).
    pub max_scc: usize,
    /// Fraction (0–1) of statements that do pointer/array work.
    pub ptr_density: f64,
    /// Average number of statements per function body block.
    pub stmts_per_block: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0xC0FFEE,
            target_loc: 1000,
            functions: 20,
            globals: 12,
            global_ptrs: 4,
            max_scc: 2,
            ptr_density: 0.2,
            stmts_per_block: 6,
        }
    }
}

impl GenConfig {
    /// A config scaled to roughly `kloc` thousand lines with proportionate
    /// shape, handy for sweeps.
    pub fn sized(seed: u64, kloc: usize) -> GenConfig {
        let loc = kloc.max(1) * 1000;
        GenConfig {
            seed,
            target_loc: loc,
            functions: (loc / 25).max(4),
            globals: (loc / 90).max(6),
            global_ptrs: (loc / 400).max(2),
            max_scc: 2,
            ptr_density: 0.2,
            stmts_per_block: 6,
        }
    }
}

/// Generates one C-subset translation unit from the config.
pub fn generate(config: &GenConfig) -> String {
    Generator::new(config).run()
}

struct Generator<'c> {
    cfg: &'c GenConfig,
    rng: StdRng,
    out: String,
    loc: usize,
    /// (name, arity) of every generated function, for call sites.
    funcs: Vec<(String, usize)>,
}

impl<'c> Generator<'c> {
    fn new(cfg: &'c GenConfig) -> Self {
        Generator {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            out: String::new(),
            loc: 0,
            funcs: Vec::new(),
        }
    }

    fn line(&mut self, indent: usize, text: &str) {
        for _ in 0..indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
        self.loc += 1;
    }

    fn global(&self, i: usize) -> String {
        format!("g{i}")
    }

    fn gptr(&self, i: usize) -> String {
        format!("gp{i}")
    }

    fn run(mut self) -> String {
        let cfg = self.cfg.clone();
        // Globals.
        for i in 0..cfg.globals {
            let init = self.rng.gen_range(0..100);
            let g = self.global(i);
            self.line(0, &format!("int {g} = {init};"));
        }
        for i in 0..cfg.global_ptrs {
            let g = self.gptr(i);
            self.line(0, &format!("int *{g};"));
        }
        self.line(0, "int gbuf[64];");
        // A function-pointer table and a global struct: indirect calls and
        // field accesses keep the frontend and pre-analysis honest.
        self.line(0, "int (*gfp)(int, int);");
        self.line(0, "struct rec { int val; int cnt; };");
        self.line(0, "struct rec grec;");

        // Function set: a recursion cycle of max_scc members, then a DAG of
        // helpers, declared leaf-first so calls are forward-resolvable via
        // prototypes.
        let nfuncs = cfg.functions.max(1);
        let cycle = cfg.max_scc.min(nfuncs);
        // Prototypes for everything (enables arbitrary call topology).
        for f in 0..nfuncs {
            self.line(0, &format!("int f{f}(int a, int b);"));
            self.funcs.push((format!("f{f}"), 2));
        }

        for f in 0..nfuncs {
            self.emit_function(f, cycle, nfuncs);
            if self.loc >= cfg.target_loc {
                // Emit remaining bodies minimally to keep prototypes honest.
                for g in (f + 1)..nfuncs {
                    self.line(0, &format!("int f{g}(int a, int b) {{ return a + b; }}"));
                }
                break;
            }
        }

        self.emit_probe();
        self.emit_main(nfuncs);
        self.out
    }

    /// A fixed call-free procedure whose two possible alarms (a loop
    /// buffer write and a guarded division) are refutable by the packed
    /// octagon but not by intervals. Every generated unit carries it so
    /// batch runs always exercise the triage discharge path end to end.
    fn emit_probe(&mut self) {
        self.line(0, "int sga_probe(int n, int m) {");
        self.line(1, "int s = 0;");
        self.line(1, "int i = 0;");
        self.line(1, "if (n > 0) {");
        self.line(2, "int *buf = malloc(n);");
        self.line(2, "i = 0;");
        self.line(2, "while (i < n) {");
        self.line(3, "buf[i] = i;");
        self.line(3, "i = i + 1;");
        self.line(2, "}");
        self.line(2, "s = s + i;");
        self.line(1, "}");
        self.line(1, "if (m < n) {");
        self.line(2, "s = s + 100 / (n - m);");
        self.line(1, "}");
        self.line(1, "return s;");
        self.line(0, "}");
    }

    /// Picks callees: cycle members call the next cycle member (building the
    /// SCC); everyone may call higher-numbered functions (a DAG otherwise).
    fn pick_callee(&mut self, f: usize, cycle: usize, nfuncs: usize) -> Option<usize> {
        if cycle >= 2 && f < cycle && self.rng.gen_bool(0.8) {
            return Some((f + 1) % cycle);
        }
        if f + 1 < nfuncs {
            Some(self.rng.gen_range(f + 1..nfuncs))
        } else {
            None
        }
    }

    fn scalar_expr(&mut self, locals: &[String]) -> String {
        let g = self.cfg.globals;
        let atom = |rng: &mut StdRng| -> String {
            match rng.gen_range(0..4) {
                0 => format!("{}", rng.gen_range(0..50)),
                1 if !locals.is_empty() => locals[rng.gen_range(0..locals.len())].clone(),
                2 if g > 0 => format!("g{}", rng.gen_range(0..g)),
                _ => "a".to_string(),
            }
        };
        let a = atom(&mut self.rng);
        match self.rng.gen_range(0..4) {
            0 => a,
            1 => format!("{a} + {}", atom(&mut self.rng)),
            2 => format!("{a} - {}", atom(&mut self.rng)),
            _ => format!("{a} + {}", self.rng.gen_range(1..5)),
        }
    }

    fn emit_stmts(
        &mut self,
        indent: usize,
        locals: &[String],
        f: usize,
        cycle: usize,
        nfuncs: usize,
    ) {
        let count = self.cfg.stmts_per_block.max(1);
        for _ in 0..count {
            let roll: f64 = self.rng.gen();
            if roll < self.cfg.ptr_density {
                // Pointer/array statement.
                match self.rng.gen_range(0..4) {
                    0 if self.cfg.global_ptrs > 0 && self.cfg.globals > 0 => {
                        let pi = self.rng.gen_range(0..self.cfg.global_ptrs);
                        let gi = self.rng.gen_range(0..self.cfg.globals);
                        let (p, g) = (self.gptr(pi), self.global(gi));
                        self.line(indent, &format!("{p} = &{g};"));
                    }
                    1 if self.cfg.global_ptrs > 0 => {
                        let pi = self.rng.gen_range(0..self.cfg.global_ptrs);
                        let p = self.gptr(pi);
                        let e = self.scalar_expr(locals);
                        self.line(indent, &format!("if ({p}) *{p} = {e};"));
                    }
                    2 => {
                        let idx = self.rng.gen_range(0..64);
                        let e = self.scalar_expr(locals);
                        self.line(indent, &format!("gbuf[{idx}] = {e};"));
                    }
                    _ => {
                        let l = &locals[self.rng.gen_range(0..locals.len())];
                        let idx = self.rng.gen_range(0..64);
                        self.line(indent, &format!("{l} = gbuf[{idx}];"));
                    }
                }
            } else {
                match self.rng.gen_range(0..7) {
                    // Indirect call through the global function pointer.
                    5 => {
                        let l = locals[self.rng.gen_range(0..locals.len())].clone();
                        // The b > 0 guard bounds indirect-recursion depth
                        // (DAG members have no base case of their own).
                        self.line(indent, &format!("if (gfp && b > 0) {l} = gfp({l}, b - 1);"));
                    }
                    // Struct field traffic.
                    6 => {
                        let l = locals[self.rng.gen_range(0..locals.len())].clone();
                        if self.rng.gen_bool(0.5) {
                            let e = self.scalar_expr(locals);
                            self.line(indent, &format!("grec.val = {e};"));
                        } else {
                            self.line(indent, &format!("{l} = grec.val + grec.cnt;"));
                        }
                    }
                    // Scalar assignment to a local.
                    0 | 1 => {
                        let l = locals[self.rng.gen_range(0..locals.len())].clone();
                        let e = self.scalar_expr(locals);
                        self.line(indent, &format!("{l} = {e};"));
                    }
                    // Global update (the interprocedural flow driver).
                    2 => {
                        let gi = self.rng.gen_range(0..self.cfg.globals);
                        let g = self.global(gi);
                        let e = self.scalar_expr(locals);
                        self.line(indent, &format!("{g} = {e};"));
                    }
                    // Call.
                    3 => {
                        if let Some(callee) = self.pick_callee(f, cycle, nfuncs) {
                            let l = locals[self.rng.gen_range(0..locals.len())].clone();
                            let e = self.scalar_expr(locals);
                            self.line(indent, &format!("{l} = f{callee}({e}, b - 1);"));
                        }
                    }
                    // Bounded loop.
                    _ => {
                        let l = locals[self.rng.gen_range(0..locals.len())].clone();
                        let bound = self.rng.gen_range(2..20);
                        let e = self.scalar_expr(locals);
                        self.line(indent, &format!("for ({l} = 0; {l} < {bound}; {l}++) {{"));
                        let gi = self.rng.gen_range(0..self.cfg.globals);
                        let g = self.global(gi);
                        self.line(indent + 1, &format!("{g} = {g} + {e};"));
                        self.line(indent, "}");
                    }
                }
            }
        }
    }

    fn emit_function(&mut self, f: usize, cycle: usize, nfuncs: usize) {
        self.line(0, &format!("int f{f}(int a, int b) {{"));
        let nlocals = self.rng.gen_range(2..6);
        let locals: Vec<String> = (0..nlocals).map(|i| format!("l{i}")).collect();
        for l in &locals {
            let init = self.rng.gen_range(0..10);
            self.line(1, &format!("int {l} = {init};"));
        }
        // Recursion guard plus a guaranteed cycle edge for cycle members:
        // the call-graph SCC must materialize regardless of random rolls.
        if cycle >= 2 && f < cycle {
            self.line(1, "if (b <= 0) { return a; }");
            let next = (f + 1) % cycle;
            self.line(1, &format!("int cyc = f{next}(a, b - 1);"));
            self.line(1, "if (cyc > a) { a = cyc; }");
        }
        let guard = self.rng.gen_range(5..50);
        self.line(1, &format!("if (a < {guard}) {{"));
        self.emit_stmts(2, &locals, f, cycle, nfuncs);
        self.line(1, "} else {");
        self.emit_stmts(2, &locals, f, cycle, nfuncs);
        self.line(1, "}");
        let l = &locals[0];
        self.line(1, &format!("return {l} + a;"));
        self.line(0, "}");
    }

    fn emit_main(&mut self, nfuncs: usize) {
        self.line(0, "int main(int argc) {");
        self.line(1, "int r = 0;");
        self.line(1, "r = r + sga_probe(argc, argc - 1);");
        // Seed the function-pointer table (deterministically, with the last
        // function — a DAG leaf — so indirect calls don't randomly reshape
        // the call-graph SCC the benchmark rows control via `max_scc`).
        let fp_target = nfuncs - 1;
        self.line(1, &format!("gfp = f{fp_target};"));
        self.line(1, "grec.val = argc;");
        self.line(1, "grec.cnt = 0;");
        // Call a spread of roots so everything is reachable.
        let roots = nfuncs.clamp(1, 8);
        for i in 0..roots {
            let f = i * nfuncs / roots;
            let mut arg = String::new();
            let _ = write!(arg, "r = r + f{f}(argc, {});", self.rng.gen_range(1..10));
            self.line(1, &arg);
        }
        self.line(1, "return r;");
        self.line(0, "}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = GenConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seed_different_program() {
        let a = generate(&GenConfig {
            seed: 1,
            ..GenConfig::default()
        });
        let b = generate(&GenConfig {
            seed: 2,
            ..GenConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn roughly_hits_target_loc() {
        for kloc in [1, 5] {
            let cfg = GenConfig::sized(42, kloc);
            let src = generate(&cfg);
            let lines = src.lines().count();
            assert!(
                lines >= cfg.target_loc / 2 && lines <= cfg.target_loc * 2,
                "kloc={kloc}: got {lines} lines for target {}",
                cfg.target_loc
            );
        }
    }

    #[test]
    fn generated_source_parses() {
        let cfg = GenConfig::sized(7, 2);
        let src = generate(&cfg);
        let program =
            sga_cfront::parse(&src).unwrap_or_else(|e| panic!("generated source must parse: {e}"));
        assert!(program.procs.len() > cfg.functions / 2);
        let errs = sga_ir::validate::validate(&program);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn recursion_cycle_materializes() {
        let cfg = GenConfig {
            max_scc: 4,
            functions: 10,
            ..GenConfig::default()
        };
        let src = generate(&cfg);
        let program = sga_cfront::parse(&src).unwrap();
        let cg = sga_ir::callgraph::CallGraph::syntactic(&program);
        assert!(
            cg.max_scc_size() >= 2,
            "expected a recursion cycle, maxSCC = {}",
            cg.max_scc_size()
        );
        assert!(
            cg.max_scc_size() <= cfg.max_scc,
            "cycle larger than requested"
        );
    }

    #[test]
    fn no_recursion_when_disabled() {
        let cfg = GenConfig {
            max_scc: 0,
            ..GenConfig::default()
        };
        let src = generate(&cfg);
        let program = sga_cfront::parse(&src).unwrap();
        let cg = sga_ir::callgraph::CallGraph::syntactic(&program);
        assert_eq!(cg.max_scc_size(), 1);
    }
}
