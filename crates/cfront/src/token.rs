//! Token definitions for the C subset.

/// A lexed token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or non-keyword name.
    Ident(String),
    /// Integer literal (includes char literals, already numeric).
    Int(i64),
    /// String literal contents (used only for its length/address).
    Str(String),
    /// A keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input sentinel.
    Eof,
}

/// Recognized keywords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kw {
    Int,
    Char,
    Long,
    Short,
    Unsigned,
    Signed,
    Void,
    Struct,
    If,
    Else,
    While,
    For,
    Do,
    Break,
    Continue,
    Return,
    Goto,
    Sizeof,
    Extern,
    Static,
    Const,
    Switch,
    Case,
    Default,
    Typedef,
    Enum,
    Null,
}

/// Punctuation and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
}

impl Tok {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Kw(k) => format!("keyword `{k:?}`").to_lowercase(),
            Tok::Punct(p) => format!("`{p:?}`"),
            Tok::Eof => "end of input".to_string(),
        }
    }
}
