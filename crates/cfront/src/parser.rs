//! Recursive-descent parser for the C subset.

use crate::ast::*;
use crate::token::{Kw, Punct, Tok, Token};
use crate::FrontError;

/// Parses a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns the first syntax error with its source line.
pub fn parse_unit(tokens: &[Token]) -> Result<Unit, FrontError> {
    Parser {
        tokens,
        pos: 0,
        depth: 0,
        typedefs: std::collections::HashMap::new(),
        enum_consts: std::collections::HashMap::new(),
    }
    .unit()
}

/// Maximum statement/expression nesting the parser accepts. Recursive
/// descent burns native stack per nesting level and a stack overflow is
/// *not* a catchable error — it aborts the whole process, defeating the
/// pipeline's panic isolation — so pathological inputs (`((((…))))`,
/// `{{{{…}}}}`) must be rejected with a structured error well before the
/// stack runs out. The parser may run on a worker or test thread with only
/// a 2 MiB stack, and a nested block costs three debug-build frames
/// (~16 KiB) per level, so the bound must stay well under ~128; 64 levels
/// is still far beyond anything a human (or our generator) writes.
const MAX_NESTING: u32 = 64;

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
    /// Current statement/expression nesting, bounded by [`MAX_NESTING`].
    depth: u32,
    /// `typedef` aliases in scope (file scope only).
    typedefs: std::collections::HashMap<String, Type>,
    /// `enum` constants in scope.
    enum_consts: std::collections::HashMap<String, i64>,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, ahead: usize) -> &Tok {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, p: Punct) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: Punct) -> Result<(), FrontError> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{p:?}`, found {}",
                self.peek().describe()
            )))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if *self.peek() == Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> FrontError {
        FrontError::new(self.line(), message)
    }

    /// Counts one level of recursion; errors out (instead of overflowing
    /// the native stack) past [`MAX_NESTING`]. Pair with [`Parser::leave`].
    fn enter(&mut self) -> Result<(), FrontError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            Err(self.err(format!("nesting deeper than {MAX_NESTING} levels")))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn ident(&mut self) -> Result<String, FrontError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ---- types ---------------------------------------------------------

    fn at_type_start(&self) -> bool {
        match self.peek() {
            Tok::Kw(
                Kw::Int
                | Kw::Char
                | Kw::Long
                | Kw::Short
                | Kw::Unsigned
                | Kw::Signed
                | Kw::Void
                | Kw::Struct
                | Kw::Enum
                | Kw::Extern
                | Kw::Static
                | Kw::Const,
            ) => true,
            // A typedef name followed by something declarator-shaped.
            Tok::Ident(name) if self.typedefs.contains_key(name) => {
                matches!(self.peek_at(1), Tok::Ident(_) | Tok::Punct(Punct::Star))
            }
            _ => false,
        }
    }

    /// Parses a type specifier (without declarator stars/arrays).
    fn type_spec(&mut self) -> Result<Type, FrontError> {
        while matches!(self.peek(), Tok::Kw(Kw::Extern | Kw::Static | Kw::Const)) {
            self.bump();
        }
        let mut saw_int = false;
        loop {
            match self.peek() {
                Tok::Kw(Kw::Int | Kw::Char | Kw::Long | Kw::Short | Kw::Unsigned | Kw::Signed) => {
                    saw_int = true;
                    self.bump();
                }
                Tok::Kw(Kw::Const) => {
                    self.bump();
                }
                _ => break,
            }
        }
        if saw_int {
            return Ok(Type::Int);
        }
        if self.eat_kw(Kw::Void) {
            return Ok(Type::Void);
        }
        if self.eat_kw(Kw::Struct) {
            let name = self.ident()?;
            return Ok(Type::Struct(name));
        }
        if self.eat_kw(Kw::Enum) {
            // `enum tag` as a type is just an integer.
            if matches!(self.peek(), Tok::Ident(_)) {
                self.bump();
            }
            return Ok(Type::Int);
        }
        if let Tok::Ident(name) = self.peek() {
            if let Some(ty) = self.typedefs.get(name).cloned() {
                self.bump();
                return Ok(ty);
            }
        }
        Err(self.err(format!("expected type, found {}", self.peek().describe())))
    }

    /// Parses declarator stars and the name: `**name` or `(*name)(...)`.
    fn declarator(&mut self, base: Type) -> Result<(String, Type), FrontError> {
        let mut ty = base;
        while self.eat(Punct::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        // Function-pointer declarator: ( * name ) ( params )
        if *self.peek() == Tok::Punct(Punct::LParen) && *self.peek_at(1) == Tok::Punct(Punct::Star)
        {
            self.bump(); // (
            self.bump(); // *
            let name = self.ident()?;
            self.expect(Punct::RParen)?;
            self.expect(Punct::LParen)?;
            let mut arity = 0;
            if !self.eat(Punct::RParen) {
                loop {
                    let base = self.type_spec()?;
                    // Parameter declarators in a prototype: stars + optional name.
                    let mut pt = base;
                    while self.eat(Punct::Star) {
                        pt = Type::Ptr(Box::new(pt));
                    }
                    if matches!(self.peek(), Tok::Ident(_)) {
                        self.bump();
                    }
                    arity += 1;
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::RParen)?;
            }
            return Ok((name, Type::FuncPtr(arity)));
        }
        let name = self.ident()?;
        // Array suffixes.
        while self.eat(Punct::LBracket) {
            let len = match self.peek() {
                Tok::Int(n) => {
                    let n = *n;
                    self.bump();
                    Some(n)
                }
                _ => None,
            };
            self.expect(Punct::RBracket)?;
            ty = Type::Array(Box::new(ty), len);
        }
        Ok((name, ty))
    }

    // ---- top level -----------------------------------------------------

    fn unit(&mut self) -> Result<Unit, FrontError> {
        let mut unit = Unit::default();
        while *self.peek() != Tok::Eof {
            self.top_item(&mut unit)?;
        }
        Ok(unit)
    }

    fn top_item(&mut self, unit: &mut Unit) -> Result<(), FrontError> {
        let line = self.line();
        // typedef <type> <name>;
        if self.eat_kw(Kw::Typedef) {
            let base = self.type_spec()?;
            let (name, ty) = self.declarator(base)?;
            self.expect(Punct::Semi)?;
            self.typedefs.insert(name, ty);
            return Ok(());
        }
        // enum [tag] { A, B = k, C };
        if *self.peek() == Tok::Kw(Kw::Enum)
            && (matches!(self.peek_at(1), Tok::Punct(Punct::LBrace))
                || (matches!(self.peek_at(1), Tok::Ident(_))
                    && matches!(self.peek_at(2), Tok::Punct(Punct::LBrace))))
        {
            self.bump();
            if matches!(self.peek(), Tok::Ident(_)) {
                self.bump();
            }
            self.expect(Punct::LBrace)?;
            let mut next = 0i64;
            while !self.eat(Punct::RBrace) {
                let name = self.ident()?;
                if self.eat(Punct::Assign) {
                    let neg = self.eat(Punct::Minus);
                    let Tok::Int(n) = self.bump() else {
                        return Err(self.err("expected integer enum value"));
                    };
                    next = if neg { -n } else { n };
                }
                self.enum_consts.insert(name, next);
                next += 1;
                if !self.eat(Punct::Comma) {
                    self.expect(Punct::RBrace)?;
                    break;
                }
            }
            self.expect(Punct::Semi)?;
            return Ok(());
        }
        // struct definition?
        if *self.peek() == Tok::Kw(Kw::Struct)
            && matches!(self.peek_at(1), Tok::Ident(_))
            && *self.peek_at(2) == Tok::Punct(Punct::LBrace)
        {
            self.bump();
            let name = self.ident()?;
            self.expect(Punct::LBrace)?;
            let mut fields = Vec::new();
            while !self.eat(Punct::RBrace) {
                let base = self.type_spec()?;
                loop {
                    let (fname, fty) = self.declarator(base.clone())?;
                    fields.push((fname, fty));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi)?;
            }
            self.expect(Punct::Semi)?;
            unit.structs.push(StructDef { name, fields, line });
            return Ok(());
        }

        let base = self.type_spec()?;
        // `type name (params) { body }` — function definition or prototype.
        let (name, ty) = self.declarator(base.clone())?;
        if !matches!(ty, Type::FuncPtr(_)) && *self.peek() == Tok::Punct(Punct::LParen) {
            return self.function(
                unit,
                name,
                matches!(base, Type::Void) && ty == Type::Void,
                line,
            );
        }
        // Global declaration(s): `type a = e, *b, c[4];`
        let mut pending = (name, ty);
        loop {
            let init = if self.eat(Punct::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            unit.globals.push(Decl {
                name: pending.0,
                ty: pending.1,
                init,
                line,
            });
            if !self.eat(Punct::Comma) {
                break;
            }
            pending = self.declarator(base.clone())?;
        }
        self.expect(Punct::Semi)?;
        Ok(())
    }

    /// Initializer: a plain expression or a braced list (abstracted to the
    /// first element joined with unknowns by the lowering pass).
    fn initializer(&mut self) -> Result<Expr, FrontError> {
        self.enter()?;
        let r = self.initializer_inner();
        self.leave();
        r
    }

    fn initializer_inner(&mut self) -> Result<Expr, FrontError> {
        if self.eat(Punct::LBrace) {
            // `{a, b, ...}` — keep the first element; array summarization
            // joins all elements into one abstract cell anyway.
            let first = if *self.peek() == Tok::Punct(Punct::RBrace) {
                Expr::Int(0)
            } else {
                let mut e = self.initializer()?;
                while self.eat(Punct::Comma) {
                    if *self.peek() == Tok::Punct(Punct::RBrace) {
                        break;
                    }
                    let next = self.initializer()?;
                    e = Expr::Comma(Box::new(e), Box::new(next));
                }
                e
            };
            self.expect(Punct::RBrace)?;
            Ok(first)
        } else {
            self.assignment_expr()
        }
    }

    fn function(
        &mut self,
        unit: &mut Unit,
        name: String,
        returns_void: bool,
        line: u32,
    ) -> Result<(), FrontError> {
        self.expect(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Punct::RParen) {
            if *self.peek() == Tok::Kw(Kw::Void) && *self.peek_at(1) == Tok::Punct(Punct::RParen) {
                self.bump();
                self.bump();
            } else {
                let mut anon = 0usize;
                loop {
                    let base = self.type_spec()?;
                    // Parameters may be anonymous in prototypes
                    // (`int f(int);`): fall back to a synthetic name.
                    let mut ty = base;
                    while self.eat(Punct::Star) {
                        ty = Type::Ptr(Box::new(ty));
                    }
                    let (pname, pty) = if matches!(self.peek(), Tok::Ident(_))
                        || *self.peek() == Tok::Punct(Punct::LParen)
                    {
                        self.declarator(ty)?
                    } else {
                        anon += 1;
                        (format!("__anon{anon}"), ty)
                    };
                    params.push((pname, pty));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::RParen)?;
            }
        }
        if self.eat(Punct::Semi) {
            unit.protos.push(Proto {
                name,
                params: params.len(),
                line,
            });
            return Ok(());
        }
        self.expect(Punct::LBrace)?;
        let body = self.block_body()?;
        unit.funcs.push(FuncDef {
            name,
            params,
            returns_void,
            body,
            line,
        });
        Ok(())
    }

    // ---- statements ----------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, FrontError> {
        let mut stmts = Vec::new();
        while !self.eat(Punct::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, FrontError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            Tok::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect(Punct::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els, line))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect(Punct::RParen)?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?), line))
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat_kw(Kw::While) {
                    return Err(self.err("expected `while` after do-body"));
                }
                self.expect(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect(Punct::RParen)?;
                self.expect(Punct::Semi)?;
                Ok(Stmt::DoWhile(body, cond, line))
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let init = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else if self.at_type_start() {
                    // C99 `for (int i = 0; ...)` — hoist as a block.
                    let decl = self.local_decl()?;
                    self.expect(Punct::Semi)?;
                    let cond = if *self.peek() == Tok::Punct(Punct::Semi) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(Punct::Semi)?;
                    let step = if *self.peek() == Tok::Punct(Punct::RParen) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(Punct::RParen)?;
                    let body = Box::new(self.stmt()?);
                    let mut block: Vec<Stmt> = decl.into_iter().map(Stmt::Decl).collect();
                    block.push(Stmt::For(None, cond, step, body, line));
                    return Ok(Stmt::Block(block));
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::Semi)?;
                let cond = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::Semi)?;
                let step = if *self.peek() == Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::RParen)?;
                Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?), line))
            }
            Tok::Kw(Kw::Switch) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(Punct::RParen)?;
                self.expect(Punct::LBrace)?;
                let mut arms: Vec<SwitchArm> = Vec::new();
                while !self.eat(Punct::RBrace) {
                    let mut values = Vec::new();
                    loop {
                        if self.eat_kw(Kw::Case) {
                            let neg = self.eat(Punct::Minus);
                            let Tok::Int(n) = self.bump() else {
                                return Err(self.err("expected integer after `case`"));
                            };
                            self.expect(Punct::Colon)?;
                            values.push(Some(if neg { -n } else { n }));
                        } else if self.eat_kw(Kw::Default) {
                            self.expect(Punct::Colon)?;
                            values.push(None);
                        } else {
                            break;
                        }
                    }
                    if values.is_empty() {
                        return Err(self.err("expected `case`/`default` in switch body"));
                    }
                    let mut body = Vec::new();
                    while !matches!(
                        self.peek(),
                        Tok::Kw(Kw::Case | Kw::Default) | Tok::Punct(Punct::RBrace)
                    ) {
                        // `break` terminates the arm; we don't model fallthrough.
                        if *self.peek() == Tok::Kw(Kw::Break) {
                            self.bump();
                            self.expect(Punct::Semi)?;
                            break;
                        }
                        body.push(self.stmt()?);
                    }
                    arms.push(SwitchArm { values, body });
                }
                Ok(Stmt::Switch(scrutinee, arms, line))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect(Punct::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect(Punct::Semi)?;
                Ok(Stmt::Continue(line))
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Punct::Semi)?;
                Ok(Stmt::Return(value, line))
            }
            Tok::Kw(Kw::Goto) => {
                self.bump();
                let label = self.ident()?;
                self.expect(Punct::Semi)?;
                Ok(Stmt::Goto(label, line))
            }
            Tok::Ident(name) if *self.peek_at(1) == Tok::Punct(Punct::Colon) => {
                self.bump();
                self.bump();
                Ok(Stmt::Label(name, Box::new(self.stmt()?)))
            }
            _ if self.at_type_start() => {
                let decls = self.local_decl()?;
                self.expect(Punct::Semi)?;
                if decls.len() == 1 {
                    Ok(Stmt::Decl(decls.into_iter().next().expect("len checked")))
                } else {
                    Ok(Stmt::Block(decls.into_iter().map(Stmt::Decl).collect()))
                }
            }
            _ => {
                let e = self.expr()?;
                self.expect(Punct::Semi)?;
                Ok(Stmt::Expr(e, line))
            }
        }
    }

    fn local_decl(&mut self) -> Result<Vec<Decl>, FrontError> {
        let line = self.line();
        let base = self.type_spec()?;
        let mut out = Vec::new();
        loop {
            let (name, ty) = self.declarator(base.clone())?;
            let init = if self.eat(Punct::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            out.push(Decl {
                name,
                ty,
                init,
                line,
            });
            if !self.eat(Punct::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, FrontError> {
        let mut e = self.assignment_expr()?;
        while self.eat(Punct::Comma) {
            let rhs = self.assignment_expr()?;
            e = Expr::Comma(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn assignment_expr(&mut self) -> Result<Expr, FrontError> {
        self.enter()?;
        let r = self.assignment_expr_inner();
        self.leave();
        r
    }

    fn assignment_expr_inner(&mut self) -> Result<Expr, FrontError> {
        let lhs = self.conditional_expr()?;
        let op = match self.peek() {
            Tok::Punct(Punct::Assign) => Some(None),
            Tok::Punct(Punct::PlusAssign) => Some(Some(BinKind::Add)),
            Tok::Punct(Punct::MinusAssign) => Some(Some(BinKind::Sub)),
            Tok::Punct(Punct::StarAssign) => Some(Some(BinKind::Mul)),
            Tok::Punct(Punct::SlashAssign) => Some(Some(BinKind::Div)),
            Tok::Punct(Punct::PercentAssign) => Some(Some(BinKind::Mod)),
            Tok::Punct(Punct::AmpAssign) => Some(Some(BinKind::BitAnd)),
            Tok::Punct(Punct::PipeAssign) => Some(Some(BinKind::BitOr)),
            Tok::Punct(Punct::CaretAssign) => Some(Some(BinKind::BitXor)),
            Tok::Punct(Punct::ShlAssign) => Some(Some(BinKind::Shl)),
            Tok::Punct(Punct::ShrAssign) => Some(Some(BinKind::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment_expr()?;
            return Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn conditional_expr(&mut self) -> Result<Expr, FrontError> {
        let cond = self.binary_expr(0)?;
        if self.eat(Punct::Question) {
            let t = self.expr()?;
            self.expect(Punct::Colon)?;
            let e = self.conditional_expr()?;
            return Ok(Expr::Cond(Box::new(cond), Box::new(t), Box::new(e)));
        }
        Ok(cond)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, FrontError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinKind, u8)> {
        let p = match self.peek() {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::PipePipe => (BinKind::LOr, 1),
            Punct::AmpAmp => (BinKind::LAnd, 2),
            Punct::Pipe => (BinKind::BitOr, 3),
            Punct::Caret => (BinKind::BitXor, 4),
            Punct::Amp => (BinKind::BitAnd, 5),
            Punct::EqEq => (BinKind::Eq, 6),
            Punct::Ne => (BinKind::Ne, 6),
            Punct::Lt => (BinKind::Lt, 7),
            Punct::Le => (BinKind::Le, 7),
            Punct::Gt => (BinKind::Gt, 7),
            Punct::Ge => (BinKind::Ge, 7),
            Punct::Shl => (BinKind::Shl, 8),
            Punct::Shr => (BinKind::Shr, 8),
            Punct::Plus => (BinKind::Add, 9),
            Punct::Minus => (BinKind::Sub, 9),
            Punct::Star => (BinKind::Mul, 10),
            Punct::Slash => (BinKind::Div, 10),
            Punct::Percent => (BinKind::Mod, 10),
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontError> {
        self.enter()?;
        let r = self.unary_expr_inner();
        self.leave();
        r
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, FrontError> {
        match self.peek().clone() {
            Tok::Punct(Punct::Star) => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.unary_expr()?)))
            }
            Tok::Punct(Punct::Amp) => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary_expr()?)))
            }
            Tok::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::Unary(UnKind::Neg, Box::new(self.unary_expr()?)))
            }
            Tok::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::Unary(UnKind::Not, Box::new(self.unary_expr()?)))
            }
            Tok::Punct(Punct::Tilde) => {
                self.bump();
                Ok(Expr::Unary(UnKind::BitNot, Box::new(self.unary_expr()?)))
            }
            Tok::Punct(Punct::Plus) => {
                self.bump();
                self.unary_expr()
            }
            Tok::Punct(Punct::PlusPlus) => {
                self.bump();
                let t = self.unary_expr()?;
                Ok(Expr::IncDec {
                    target: Box::new(t),
                    delta: 1,
                    post: false,
                })
            }
            Tok::Punct(Punct::MinusMinus) => {
                self.bump();
                let t = self.unary_expr()?;
                Ok(Expr::IncDec {
                    target: Box::new(t),
                    delta: -1,
                    post: false,
                })
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                if self.eat(Punct::LParen) {
                    // Either a type or an expression; skip to matching paren.
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            Tok::Punct(Punct::LParen) => depth += 1,
                            Tok::Punct(Punct::RParen) => depth -= 1,
                            Tok::Eof => return Err(self.err("unterminated sizeof")),
                            _ => {}
                        }
                    }
                } else {
                    self.unary_expr()?;
                }
                Ok(Expr::Sizeof)
            }
            // Cast: `(type) expr` — types are abstracted, the cast is a no-op.
            Tok::Punct(Punct::LParen) if self.type_cast_lookahead() => {
                self.bump();
                let _ = self.type_spec()?;
                while self.eat(Punct::Star) {}
                self.expect(Punct::RParen)?;
                self.unary_expr()
            }
            _ => self.postfix_expr(),
        }
    }

    /// Whether `( type-ish` follows — a cast rather than a parenthesized
    /// expression.
    fn type_cast_lookahead(&self) -> bool {
        match self.peek_at(1) {
            Tok::Kw(
                Kw::Int
                | Kw::Char
                | Kw::Long
                | Kw::Short
                | Kw::Unsigned
                | Kw::Signed
                | Kw::Void
                | Kw::Struct
                | Kw::Enum
                | Kw::Const,
            ) => true,
            // `(tydef_name)` or `(tydef_name *…)` followed by `)`/`*`.
            Tok::Ident(name) if self.typedefs.contains_key(name) => matches!(
                self.peek_at(2),
                Tok::Punct(Punct::RParen) | Tok::Punct(Punct::Star)
            ),
            _ => false,
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, FrontError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(Punct::RParen) {
                        loop {
                            args.push(self.assignment_expr()?);
                            if !self.eat(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect(Punct::RParen)?;
                    }
                    e = Expr::Call(Box::new(e), args);
                }
                Tok::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Punct::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Punct(Punct::Dot) => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Member(Box::new(e), f);
                }
                Tok::Punct(Punct::Arrow) => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Arrow(Box::new(e), f);
                }
                Tok::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr::IncDec {
                        target: Box::new(e),
                        delta: 1,
                        post: true,
                    };
                }
                Tok::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr::IncDec {
                        target: Box::new(e),
                        delta: -1,
                        post: true,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(n) => Ok(Expr::Int(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Kw(Kw::Null) => Ok(Expr::Null),
            Tok::Ident(name) => match self.enum_consts.get(&name) {
                Some(&v) => Ok(Expr::Int(v)),
                None => Ok(Expr::Ident(name)),
            },
            Tok::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect(Punct::RParen)?;
                Ok(e)
            }
            other => Err(FrontError::new(
                line,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Unit {
        parse_unit(&lex(src).unwrap()).unwrap_or_else(|e| panic!("parse failed: {e}\nin: {src}"))
    }

    #[test]
    fn parses_function_with_locals() {
        let u = parse("int main() { int x = 1; x = x + 2; return x; }");
        assert_eq!(u.funcs.len(), 1);
        assert_eq!(u.funcs[0].name, "main");
        assert_eq!(u.funcs[0].body.len(), 3);
    }

    #[test]
    fn parses_struct_def() {
        let u = parse("struct node { int data; struct node *next; }; int main() { return 0; }");
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields.len(), 2);
        assert_eq!(
            u.structs[0].fields[1].1,
            Type::Ptr(Box::new(Type::Struct("node".into())))
        );
    }

    #[test]
    fn parses_globals_and_protos() {
        let u = parse("int g = 3; char *s; int helper(int a); int main() { return g; }");
        assert_eq!(u.globals.len(), 2);
        assert_eq!(u.protos.len(), 1);
        assert_eq!(u.protos[0].params, 1);
    }

    #[test]
    fn parses_control_flow() {
        let u = parse(
            "int main() {
                int i;
                for (i = 0; i < 10; i++) { if (i == 5) break; else continue; }
                while (i > 0) i--;
                do { i += 2; } while (i < 4);
                goto done;
                done: return i;
            }",
        );
        assert_eq!(u.funcs.len(), 1);
    }

    #[test]
    fn parses_switch_as_arms() {
        let u = parse(
            "int main(int argc) {
                switch (argc) {
                    case 1: return 1;
                    case 2: case 3: argc = 0; break;
                    default: argc = 9; break;
                }
                return argc;
            }",
        );
        let Stmt::Switch(_, arms, _) = &u.funcs[0].body[0] else {
            panic!("expected switch")
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[1].values, vec![Some(2), Some(3)]);
        assert_eq!(arms[2].values, vec![None]);
    }

    #[test]
    fn parses_pointer_expressions() {
        let u = parse("int main(int *p) { *p = 3; int **q = &p; **q = *p + 1; return p[0]; }");
        assert_eq!(u.funcs[0].params.len(), 1);
    }

    #[test]
    fn parses_function_pointers() {
        let u = parse(
            "int f(int x) { return x; } int main() { int (*fp)(int); fp = f; return fp(3); }",
        );
        assert_eq!(u.funcs.len(), 2);
    }

    #[test]
    fn parses_casts_and_sizeof() {
        parse("int main() { int x = (int)3; char *p = (char *)0; x = sizeof(int); x = sizeof x; return x; }");
    }

    #[test]
    fn parses_ternary_and_comma() {
        let u = parse("int main(int a) { int b = a ? 1 : 2; b = (a, b); return b; }");
        assert_eq!(u.funcs.len(), 1);
    }

    #[test]
    fn c99_for_decl() {
        parse("int main() { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }");
    }

    #[test]
    fn error_has_line() {
        let toks = lex("int main() {\n  return +;\n}").unwrap();
        let err = parse_unit(&toks).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn array_declarations() {
        let u = parse("int buf[10]; int main() { int local[5]; local[0] = buf[9]; return 0; }");
        assert_eq!(u.globals[0].ty, Type::Array(Box::new(Type::Int), Some(10)));
    }
}

#[cfg(test)]
mod typedef_enum_tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Unit {
        parse_unit(&lex(src).unwrap()).unwrap_or_else(|e| panic!("parse failed: {e}\nin: {src}"))
    }

    #[test]
    fn typedef_of_scalar_and_pointer() {
        let u = parse(
            "typedef int size;
             typedef int *intp;
             size g = 4;
             int main() { size n = g; intp p = &g; *p = n; return n; }",
        );
        assert_eq!(u.globals.len(), 1);
        assert_eq!(u.globals[0].ty, Type::Int);
    }

    #[test]
    fn typedef_of_struct() {
        parse(
            "struct pair { int a; int b; };
             typedef struct pair pair_t;
             int main() { pair_t p; p.a = 1; return p.a; }",
        );
    }

    #[test]
    fn enum_constants_fold_to_ints() {
        let u = parse(
            "enum color { RED, GREEN = 5, BLUE };
             int main() { int x = BLUE; enum color c = RED; return x + c; }",
        );
        // BLUE folds to 6 in the initializer.
        let f = &u.funcs[0];
        let Stmt::Decl(d) = &f.body[0] else { panic!() };
        assert_eq!(d.init, Some(Expr::Int(6)));
    }

    #[test]
    fn typedef_cast() {
        parse(
            "typedef int myint;
             int main() { int x = (myint)3; myint *p = (myint *)0; return x; }",
        );
    }

    #[test]
    fn typedef_name_usable_as_variable_elsewhere() {
        // A name that is NOT typedef'd stays an ordinary identifier.
        parse("int size; int main() { size = 3; return size; }");
    }
}
