//! Widening-threshold harvesting.
//!
//! Threshold widening needs a per-program set of "landing points" — the
//! constants a loop bound is likely to stabilize at. Following Sparrow's
//! practice, we take them syntactically from the lowered IR:
//!
//! * constants in branch guards (`assume(x < 100)` yields 99/100/101 — the
//!   guard bound plus both off-by-one neighbours, covering `<` vs `<=`
//!   phrasing and pre/post-increment loops);
//! * allocation and array sizes (`alloc(n)` with constant `n`, which also
//!   covers lowered local/global array declarations);
//! * constants assigned or compared anywhere else in an expression, which
//!   catches split guards like `tmp = n - 1; assume(i <= tmp)`.
//!
//! `0` is always included: it is the overwhelmingly common loop floor, and
//! its presence keeps "counts down to zero" loops finite.
//!
//! The result is a raw (unsorted, possibly duplicated) list; the domains'
//! `Thresholds::new` normalizes it.

use sga_ir::{Cmd, Expr, Program};

/// Collects widening thresholds from every command of `program`.
pub fn harvest(program: &Program) -> Vec<i64> {
    let mut out = vec![0];
    for proc in &program.procs {
        for node in &proc.nodes {
            match &node.cmd {
                Cmd::Skip => {}
                Cmd::Assign(_, e) | Cmd::Alloc(_, e) => collect_expr(e, &mut out),
                Cmd::Assume(cond) => {
                    collect_expr(&cond.lhs, &mut out);
                    collect_expr(&cond.rhs, &mut out);
                }
                Cmd::Call { args, .. } => {
                    for a in args {
                        collect_expr(a, &mut out);
                    }
                }
                Cmd::Return(e) => {
                    if let Some(e) = e {
                        collect_expr(e, &mut out);
                    }
                }
            }
        }
    }
    out
}

/// Emits `c − 1`, `c`, `c + 1` for every literal in the expression. The
/// neighbours make the set robust to strict/non-strict guard phrasing: a
/// loop `while (i < N)` stabilizes at `N − 1` inside and `N` after.
fn collect_expr(e: &Expr, out: &mut Vec<i64>) {
    match e {
        Expr::Const(c) => {
            out.push(c.saturating_sub(1));
            out.push(*c);
            out.push(c.saturating_add(1));
        }
        Expr::Var(_)
        | Expr::Field(_, _)
        | Expr::AddrOf(_)
        | Expr::AddrOfField(_, _)
        | Expr::AddrOfProc(_)
        | Expr::Unknown => {}
        Expr::Deref(inner) | Expr::DerefField(inner, _) | Expr::Unop(_, inner) => {
            collect_expr(inner, out)
        }
        Expr::Binop(_, a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvests_guard_and_alloc_constants() {
        let src = r#"
            int main() {
                int i = 0;
                int *p = malloc(40);
                while (i < 100) { i = i + 1; }
                return i;
            }
        "#;
        let program = crate::parse(src).expect("valid source");
        let ts = harvest(&program);
        for expected in [0, 39, 40, 41, 99, 100, 101] {
            assert!(ts.contains(&expected), "missing threshold {expected}");
        }
    }

    #[test]
    fn always_includes_zero() {
        let src = "int main() { return 7; }";
        let program = crate::parse(src).expect("valid source");
        assert!(harvest(&program).contains(&0));
    }
}
