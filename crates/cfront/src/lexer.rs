//! Hand-written lexer for the C subset.

use crate::token::{Kw, Punct, Tok, Token};
use crate::FrontError;

/// Lexes `src` into tokens (with a trailing [`Tok::Eof`]).
///
/// # Errors
///
/// Returns an error on unterminated comments/strings or stray characters.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontError> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> FrontError {
        FrontError::new(self.line, message)
    }

    fn run(mut self) -> Result<Vec<Token>, FrontError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: Tok::Eof,
                    line,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                self.ident_or_kw()
            } else if c.is_ascii_digit() {
                self.number()?
            } else if c == '"' {
                self.string()?
            } else if c == '\'' {
                self.char_lit()?
            } else {
                self.punct()?
            };
            out.push(Token { kind, line });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(c), _) if c.is_whitespace() => {
                    self.bump();
                }
                (Some('/'), Some('/')) => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                (Some('/'), Some('*')) => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => {
                                return Err(FrontError::new(start, "unterminated block comment"))
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                // Preprocessor remnants: skip the whole line (inputs are
                // notionally preprocessed; #line noise shouldn't kill us).
                (Some('#'), _) => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_or_kw(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kw = match s.as_str() {
            "int" => Kw::Int,
            "char" => Kw::Char,
            "long" => Kw::Long,
            "short" => Kw::Short,
            "unsigned" => Kw::Unsigned,
            "signed" => Kw::Signed,
            "void" => Kw::Void,
            "struct" => Kw::Struct,
            "if" => Kw::If,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "do" => Kw::Do,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "return" => Kw::Return,
            "goto" => Kw::Goto,
            "sizeof" => Kw::Sizeof,
            "extern" => Kw::Extern,
            "static" => Kw::Static,
            "const" => Kw::Const,
            "switch" => Kw::Switch,
            "case" => Kw::Case,
            "default" => Kw::Default,
            "typedef" => Kw::Typedef,
            "enum" => Kw::Enum,
            "NULL" => Kw::Null,
            _ => return Tok::Ident(s),
        };
        Tok::Kw(kw)
    }

    fn number(&mut self) -> Result<Tok, FrontError> {
        let mut s = String::new();
        let mut hex = false;
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            hex = true;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_hexdigit() {
                s.push(c);
                self.bump();
            } else if matches!(c, 'u' | 'U' | 'l' | 'L') {
                self.bump(); // suffixes are dropped
            } else {
                break;
            }
        }
        let radix = if hex { 16 } else { 10 };
        let value = i64::from_str_radix(&s, radix)
            .or_else(|_| u64::from_str_radix(&s, radix).map(|u| u as i64))
            .map_err(|_| self.err(format!("invalid integer literal `{s}`")))?;
        Ok(Tok::Int(value))
    }

    fn string(&mut self) -> Result<Tok, FrontError> {
        let start = self.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| FrontError::new(start, "unterminated string"))?;
                    s.push(unescape(esc));
                }
                Some(c) => s.push(c),
                None => return Err(FrontError::new(start, "unterminated string")),
            }
        }
    }

    fn char_lit(&mut self) -> Result<Tok, FrontError> {
        let start = self.line;
        self.bump(); // opening quote
        let c = match self.bump() {
            Some('\\') => {
                let esc = self
                    .bump()
                    .ok_or_else(|| FrontError::new(start, "unterminated char literal"))?;
                unescape(esc)
            }
            Some(c) => c,
            None => return Err(FrontError::new(start, "unterminated char literal")),
        };
        if self.bump() != Some('\'') {
            return Err(FrontError::new(start, "unterminated char literal"));
        }
        Ok(Tok::Int(c as i64))
    }

    fn punct(&mut self) -> Result<Tok, FrontError> {
        use Punct::*;
        let c = self.bump().expect("punct called at end of input");
        let two = |l: &mut Lexer, next: char, yes: Punct, no: Punct| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let p = match c {
            '(' => LParen,
            ')' => RParen,
            '{' => LBrace,
            '}' => RBrace,
            '[' => LBracket,
            ']' => RBracket,
            ';' => Semi,
            ',' => Comma,
            '.' => Dot,
            '?' => Question,
            ':' => Colon,
            '~' => Tilde,
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    PlusPlus
                }
                Some('=') => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    MinusMinus
                }
                Some('=') => {
                    self.bump();
                    MinusAssign
                }
                Some('>') => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            '*' => two(self, '=', StarAssign, Star),
            '/' => two(self, '=', SlashAssign, Slash),
            '%' => two(self, '=', PercentAssign, Percent),
            '!' => two(self, '=', Ne, Bang),
            '=' => two(self, '=', EqEq, Assign),
            '^' => two(self, '=', CaretAssign, Caret),
            '&' => match self.peek() {
                Some('&') => {
                    self.bump();
                    AmpAmp
                }
                Some('=') => {
                    self.bump();
                    AmpAssign
                }
                _ => Amp,
            },
            '|' => match self.peek() {
                Some('|') => {
                    self.bump();
                    PipePipe
                }
                Some('=') => {
                    self.bump();
                    PipeAssign
                }
                _ => Pipe,
            },
            '<' => match self.peek() {
                Some('<') => {
                    self.bump();
                    two(self, '=', ShlAssign, Shl)
                }
                Some('=') => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            '>' => match self.peek() {
                Some('>') => {
                    self.bump();
                    two(self, '=', ShrAssign, Shr)
                }
                Some('=') => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        };
        Ok(Tok::Punct(p))
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("x".into()),
                Tok::Punct(Punct::Assign),
                Tok::Int(42),
                Tok::Punct(Punct::Semi),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("a <= b && c != d >> 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(Punct::Le),
                Tok::Ident("b".into()),
                Tok::Punct(Punct::AmpAmp),
                Tok::Ident("c".into()),
                Tok::Punct(Punct::Ne),
                Tok::Ident("d".into()),
                Tok::Punct(Punct::Shr),
                Tok::Int(2),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("p->f - 1"),
            vec![
                Tok::Ident("p".into()),
                Tok::Punct(Punct::Arrow),
                Tok::Ident("f".into()),
                Tok::Punct(Punct::Minus),
                Tok::Int(1),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let toks = kinds("// hi\n/* multi\nline */ x # define FOO\ny");
        assert_eq!(
            toks,
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn hex_and_char_literals() {
        assert_eq!(
            kinds("0x10 'a' '\\n'"),
            vec![Tok::Int(16), Tok::Int(97), Tok::Int(10), Tok::Eof]
        );
    }

    #[test]
    fn string_literal() {
        assert_eq!(kinds("\"ab\\n\""), vec![Tok::Str("ab\n".into()), Tok::Eof]);
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("x\n\ny").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn stray_character_errors() {
        let err = lex("int x @").unwrap_err();
        assert!(err.message.contains('@'));
    }
}
