//! A C-subset frontend: lexer, parser, and lowering to the SGA IR.
//!
//! Accepts a practical subset of (preprocessed) C: `int`/`char`/`void` and
//! pointers/arrays/structs over them, function definitions and prototypes,
//! globals with initializers, `if`/`while`/`for`/`do` control flow plus
//! `break`/`continue`/`goto`/labels, the usual expression operators
//! including assignment operators, `++`/`--`, short-circuit `&&`/`||`,
//! function pointers, and `malloc`-style allocation.
//!
//! Unknown external functions are modeled per §6 of the paper: "we assume
//! that the procedure returns arbitrary values and has no side-effect",
//! with a handful of handcrafted stubs for the standard library
//! ([`lower::stub_kind`]).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     int g;
//!     int main() {
//!         int x = 0;
//!         while (x < 10) { x = x + 1; }
//!         g = x;
//!         return g;
//!     }
//! "#;
//! let program = sga_cfront::parse(src).expect("valid C subset");
//! assert_eq!(program.procs[program.main].name, "main");
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod thresholds;
pub mod token;

use sga_ir::Program;

/// A frontend failure: lexing, parsing, or lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl FrontError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> FrontError {
        FrontError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FrontError {}

/// Parses and lowers a C-subset source file to an IR program.
///
/// # Errors
///
/// Returns a [`FrontError`] naming the first offending source line when the
/// input is outside the accepted subset or has no `main`.
pub fn parse(src: &str) -> Result<Program, FrontError> {
    let tokens = lexer::lex(src)?;
    let unit = parser::parse_unit(&tokens)?;
    lower::lower(&unit)
}
