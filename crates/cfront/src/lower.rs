//! Lowering from the C AST to the one-command-per-node IR.
//!
//! Responsibilities:
//!
//! * flattening side-effecting expressions (calls, assignments, `++`) into
//!   temporaries so IR expressions are pure;
//! * short-circuit lowering of `&&`/`||`/`!` and comparison conditions into
//!   `assume` branch nodes;
//! * desugaring loops, `switch` (to an assume cascade; fallthrough is not
//!   modeled), `goto`/labels, `break`/`continue`;
//! * array declarations and `malloc`-family calls become `alloc` commands
//!   (the allocation site is the control point, per §6.1);
//! * global initializers run in a prelude at the start of `main`;
//! * standard-library stubs ([`stub_kind`]); any other unknown procedure
//!   becomes an *external* proc that "returns arbitrary values and has no
//!   side-effect" (§6).

use crate::ast::*;
use crate::FrontError;
use sga_ir::program::FieldTable;
use sga_ir::{
    BinOp, Callee, Cmd, Cond, Expr as IrExpr, FieldId, LVal, NodeId, Proc, ProcBuilder, ProcId,
    Program, RelOp, UnOp, VarId, VarInfo, VarKind,
};
use sga_utils::{FxHashMap, Idx, IndexVec};

/// How a known library function is summarized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stub {
    /// Returns a fresh allocation of the given argument's size (`malloc`).
    Alloc,
    /// `calloc(n, size)` — allocation sized by the first argument.
    AllocZeroed,
    /// Returns an unknown integer, no side effects (`rand`, `atoi`, …).
    UnknownInt,
    /// Stores an unknown value through its first (pointer) argument and
    /// returns it (`strcpy`, `memset`, `fgets`, …).
    StoreUnknown,
    /// No effect at all (`free`, `printf`, …).
    Nop,
}

/// Looks up the stub summary for a standard-library name.
pub fn stub_kind(name: &str) -> Option<Stub> {
    Some(match name {
        "malloc" | "alloca" | "strdup" | "calloc" | "realloc" => Stub::Alloc,
        "rand" | "random" | "atoi" | "atol" | "getchar" | "getc" | "fgetc" | "strlen"
        | "strcmp" | "strncmp" | "abs" | "time" | "input" | "read" | "unknown" => Stub::UnknownInt,
        "strcpy" | "strncpy" | "strcat" | "strncat" | "memset" | "memcpy" | "memmove" | "fgets"
        | "gets" | "sprintf" | "snprintf" => Stub::StoreUnknown,
        "free" | "printf" | "fprintf" | "puts" | "putchar" | "exit" | "abort" | "assert"
        | "srand" | "fflush" | "close" => Stub::Nop,
        _ => return None,
    })
}

impl Stub {
    fn zeroed(self) -> bool {
        self == Stub::AllocZeroed
    }
}

/// Lowers a parsed unit to an IR program.
///
/// # Errors
///
/// Reports constructs outside the supported subset (e.g. struct assignment
/// by value) and a missing `main`.
pub fn lower(unit: &Unit) -> Result<Program, FrontError> {
    Lowerer::new(unit)?.run()
}

struct Lowerer<'u> {
    unit: &'u Unit,
    fields: FieldTable,
    vars: IndexVec<VarId, VarInfo>,
    globals: FxHashMap<String, VarId>,
    proc_ids: FxHashMap<String, ProcId>,
    /// Lowered bodies, indexed by ProcId; `None` until lowered.
    procs: IndexVec<ProcId, Option<Proc>>,
    /// Names of functions with bodies (definitions).
    defined: FxHashMap<String, &'u FuncDef>,
}

impl<'u> Lowerer<'u> {
    fn new(unit: &'u Unit) -> Result<Lowerer<'u>, FrontError> {
        let mut me = Lowerer {
            unit,
            fields: FieldTable::new(),
            vars: IndexVec::new(),
            globals: FxHashMap::default(),
            proc_ids: FxHashMap::default(),
            procs: IndexVec::new(),
            defined: FxHashMap::default(),
        };
        for f in &unit.funcs {
            if me.defined.insert(f.name.clone(), f).is_some() {
                return Err(FrontError::new(
                    f.line,
                    format!("duplicate function `{}`", f.name),
                ));
            }
            let id = me.procs.push(None);
            me.proc_ids.insert(f.name.clone(), id);
        }
        for p in &unit.protos {
            if !me.proc_ids.contains_key(&p.name) && stub_kind(&p.name).is_none() {
                let id = me.procs.push(None);
                me.proc_ids.insert(p.name.clone(), id);
            }
        }
        for g in &unit.globals {
            let v = me.vars.push(VarInfo {
                name: g.name.clone(),
                kind: VarKind::Global,
                address_taken: false,
            });
            me.globals.insert(g.name.clone(), v);
        }
        Ok(me)
    }

    fn external_proc(&mut self, name: &str) -> ProcId {
        if let Some(&id) = self.proc_ids.get(name) {
            return id;
        }
        let id = self.procs.push(None);
        self.proc_ids.insert(name.to_string(), id);
        id
    }

    fn run(mut self) -> Result<Program, FrontError> {
        // Lower defined functions in declaration order.
        for f in &self.unit.funcs {
            let id = self.proc_ids[&f.name];
            let proc = self.lower_fn(f, id)?;
            self.procs[id] = Some(proc);
        }
        // Materialize externals (protos + on-demand) as trivial bodies.
        let mut procs: IndexVec<ProcId, Proc> = IndexVec::with_capacity(self.procs.len());
        let names: FxHashMap<ProcId, String> =
            self.proc_ids.iter().map(|(n, &i)| (i, n.clone())).collect();
        for (id, slot) in self.procs.into_raw().into_iter().enumerate() {
            let id = ProcId::new(id);
            match slot {
                Some(p) => {
                    procs.push(p);
                }
                None => {
                    let name = names
                        .get(&id)
                        .cloned()
                        .unwrap_or_else(|| format!("extern_{id}"));
                    let ret = self.vars.push(VarInfo {
                        name: format!("__ret_{name}"),
                        kind: VarKind::Return(id),
                        address_taken: false,
                    });
                    let mut b = ProcBuilder::new(name, ret);
                    b.external();
                    let (en, ex) = (b.entry(), b.exit());
                    b.edge(en, ex);
                    procs.push(b.finish());
                }
            }
        }
        let main = procs
            .iter_enumerated()
            .find(|(_, p)| p.name == "main")
            .map(|(id, _)| id)
            .ok_or_else(|| FrontError::new(1, "program has no `main`"))?;
        let program = Program {
            procs,
            vars: self.vars,
            fields: self.fields.into_names(),
            main,
        };
        debug_assert!(
            sga_ir::validate::validate(&program).is_empty(),
            "lowering produced malformed IR: {:?}",
            sga_ir::validate::validate(&program)
        );
        Ok(program)
    }

    fn lower_fn(&mut self, f: &'u FuncDef, id: ProcId) -> Result<Proc, FrontError> {
        let ret = self.vars.push(VarInfo {
            name: format!("__ret_{}", f.name),
            kind: VarKind::Return(id),
            address_taken: false,
        });
        let mut ctx = FnCtx {
            b: ProcBuilder::new(f.name.clone(), ret),
            proc: id,
            cur: None,
            scopes: vec![FxHashMap::default()],
            breaks: Vec::new(),
            continues: Vec::new(),
            labels: FxHashMap::default(),
            pending_gotos: Vec::new(),
            temp_count: 0,
            line: f.line,
        };
        ctx.cur = Some(ctx.b.entry());
        for (pname, pty) in &f.params {
            let v = self.vars.push(VarInfo {
                name: pname.clone(),
                kind: VarKind::Param(id),
                address_taken: false,
            });
            ctx.b.param(v);
            ctx.scopes[0].insert(pname.clone(), v);
            // Array-typed parameters behave as pointers; nothing to allocate.
            let _ = pty;
        }
        // Global-initialization prelude runs at the start of main.
        if f.name == "main" {
            for g in self.unit.globals.iter() {
                let gv = self.globals[&g.name];
                self.lower_decl_body(&mut ctx, gv, g)?;
            }
        }
        for stmt in &f.body {
            self.lower_stmt(&mut ctx, stmt)?;
        }
        // Fall off the end: implicit return.
        if let Some(cur) = ctx.cur {
            let exit = ctx.b.exit();
            ctx.b.edge(cur, exit);
        }
        // Patch gotos.
        for (label, from, line) in std::mem::take(&mut ctx.pending_gotos) {
            let Some(&target) = ctx.labels.get(&label) else {
                return Err(FrontError::new(
                    line,
                    format!("goto to unknown label `{label}`"),
                ));
            };
            ctx.b.edge(from, target);
        }
        Ok(ctx.b.finish())
    }

    /// Lowers a declaration's storage setup + initializer into the CFG.
    ///
    /// C initialization semantics are made explicit: file-scope objects
    /// without initializers are zero-initialized (scalars and pointers to
    /// `0`, array cells and struct fields to `0`); uninitialized *local*
    /// arrays get ⊤ cells (their contents are arbitrary). Uninitialized
    /// local scalars stay unbound — reading them is undefined behaviour.
    fn lower_decl_body(
        &mut self,
        ctx: &mut FnCtx,
        var: VarId,
        decl: &Decl,
    ) -> Result<(), FrontError> {
        ctx.line = decl.line;
        let is_global = self.vars[var].kind == VarKind::Global;
        match &decl.ty {
            Type::Array(_, len) => {
                let size = match len {
                    Some(n) => IrExpr::Const(*n),
                    None => IrExpr::Unknown,
                };
                ctx.emit(Cmd::Alloc(LVal::Var(var), size));
                let tmp = self.fresh_temp(ctx);
                ctx.emit(Cmd::Assign(LVal::Var(tmp), IrExpr::Var(var)));
                if let Some(init) = &decl.init {
                    // Array initializer: every element summarized into the
                    // block's single abstract cell (weak store). Unlisted
                    // elements are zero.
                    let (e, _) = self.lower_expr(ctx, init)?;
                    ctx.emit(Cmd::Assign(LVal::Deref(tmp), e));
                    ctx.emit(Cmd::Assign(LVal::Deref(tmp), IrExpr::Const(0)));
                } else if is_global {
                    ctx.emit(Cmd::Assign(LVal::Deref(tmp), IrExpr::Const(0)));
                } else {
                    ctx.emit(Cmd::Assign(LVal::Deref(tmp), IrExpr::Unknown));
                }
            }
            Type::Struct(tag) => {
                if decl.init.is_some() {
                    return Err(FrontError::new(
                        decl.line,
                        "struct initializers are not supported",
                    ));
                }
                if is_global {
                    // Zero-initialize every declared field.
                    let fields: Vec<FieldId> = self
                        .unit
                        .structs
                        .iter()
                        .find(|sd| sd.name == *tag)
                        .map(|sd| {
                            sd.fields
                                .iter()
                                .map(|(fname, _)| self.fields.intern(fname))
                                .collect()
                        })
                        .unwrap_or_default();
                    for f in fields {
                        ctx.emit(Cmd::Assign(LVal::Field(var, f), IrExpr::Const(0)));
                    }
                }
            }
            _ => {
                if let Some(init) = &decl.init {
                    let (e, _) = self.lower_expr(ctx, init)?;
                    ctx.emit(Cmd::Assign(LVal::Var(var), e));
                } else if is_global {
                    // File-scope objects are zero-initialized.
                    ctx.emit(Cmd::Assign(LVal::Var(var), IrExpr::Const(0)));
                }
            }
        }
        Ok(())
    }

    fn fresh_temp(&mut self, ctx: &mut FnCtx) -> VarId {
        ctx.temp_count += 1;
        let v = self.vars.push(VarInfo {
            name: format!("__t{}_{}", ctx.proc.index(), ctx.temp_count),
            kind: VarKind::Temp(ctx.proc),
            address_taken: false,
        });
        ctx.b.local(v);
        v
    }

    fn lookup(&mut self, ctx: &FnCtx, name: &str) -> Option<VarId> {
        for scope in ctx.scopes.iter().rev() {
            if let Some(&v) = scope.get(name) {
                return Some(v);
            }
        }
        self.globals.get(name).copied()
    }

    // ---- statements ----------------------------------------------------

    fn lower_stmt(&mut self, ctx: &mut FnCtx, stmt: &Stmt) -> Result<(), FrontError> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Label(name, inner) => {
                let node = *ctx
                    .labels
                    .entry(name.clone())
                    .or_insert_with(|| ctx.b.node(Cmd::Skip));
                if let Some(cur) = ctx.cur {
                    ctx.b.edge(cur, node);
                }
                ctx.cur = Some(node);
                self.lower_stmt(ctx, inner)
            }
            _ if ctx.cur.is_none() => Ok(()), // unreachable code: drop
            Stmt::Block(stmts) => {
                ctx.scopes.push(FxHashMap::default());
                for s in stmts {
                    self.lower_stmt(ctx, s)?;
                }
                ctx.scopes.pop();
                Ok(())
            }
            Stmt::Decl(decl) => {
                let v = self.vars.push(VarInfo {
                    name: decl.name.clone(),
                    kind: VarKind::Local(ctx.proc),
                    address_taken: false,
                });
                ctx.b.local(v);
                self.lower_decl_body(ctx, v, decl)?;
                ctx.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(decl.name.clone(), v);
                Ok(())
            }
            Stmt::Expr(e, line) => {
                ctx.line = *line;
                // Statement position: an assignment's value is discarded, so
                // skip the value-pinning temp of expression-position assigns.
                if let Expr::Assign(None, lhs, rhs) = e {
                    let (rv, _) = self.lower_expr(ctx, rhs)?;
                    let lv = self.lower_lval(ctx, lhs)?;
                    ctx.emit(Cmd::Assign(lv, rv));
                } else {
                    self.lower_expr(ctx, e)?;
                }
                Ok(())
            }
            Stmt::If(cond, then, els, line) => {
                ctx.line = *line;
                let (t, f) = self.branch(ctx, cond)?;
                ctx.cur = Some(t);
                self.lower_stmt(ctx, then)?;
                let t_end = ctx.cur;
                ctx.cur = Some(f);
                if let Some(e) = els {
                    self.lower_stmt(ctx, e)?;
                }
                let f_end = ctx.cur;
                ctx.cur = match (t_end, f_end) {
                    (None, None) => None,
                    (Some(only), None) | (None, Some(only)) => Some(only),
                    (Some(a), Some(b)) => {
                        let join = ctx.b.node(Cmd::Skip);
                        ctx.b.edge(a, join);
                        ctx.b.edge(b, join);
                        Some(join)
                    }
                };
                Ok(())
            }
            Stmt::While(cond, body, line) => {
                ctx.line = *line;
                let head = ctx.b.node(Cmd::Skip);
                ctx.connect_to(head);
                ctx.cur = Some(head);
                let (t, f) = self.branch(ctx, cond)?;
                ctx.breaks.push(Lazy::fixed(f));
                ctx.continues.push(Lazy::fixed(head));
                ctx.cur = Some(t);
                self.lower_stmt(ctx, body)?;
                if let Some(end) = ctx.cur {
                    ctx.b.edge(end, head);
                }
                let brk = ctx.breaks.pop().expect("break stack");
                ctx.continues.pop();
                ctx.cur = Some(brk.node.expect("while break target is the false branch"));
                Ok(())
            }
            Stmt::DoWhile(body, cond, line) => {
                ctx.line = *line;
                let head = ctx.b.node(Cmd::Skip);
                ctx.connect_to(head);
                ctx.cur = Some(head);
                ctx.breaks.push(Lazy::new());
                ctx.continues.push(Lazy::new());
                self.lower_stmt(ctx, body)?;
                let cont = ctx.continues.pop().expect("continue stack");
                // The condition runs if the body falls through or continues.
                if let Some(cnode) = cont.node {
                    ctx.connect_to(cnode);
                    ctx.cur = Some(cnode);
                }
                if ctx.cur.is_some() {
                    let (t, f) = self.branch(ctx, cond)?;
                    ctx.b.edge(t, head);
                    ctx.cur = Some(f);
                } else {
                    ctx.cur = None;
                }
                let brk = ctx.breaks.pop().expect("break stack");
                if let Some(bnode) = brk.node {
                    ctx.connect_to(bnode);
                    ctx.cur = Some(bnode);
                }
                Ok(())
            }
            Stmt::For(init, cond, step, body, line) => {
                ctx.line = *line;
                if let Some(e) = init {
                    self.lower_expr(ctx, e)?;
                }
                let head = ctx.b.node(Cmd::Skip);
                ctx.connect_to(head);
                ctx.cur = Some(head);
                match cond {
                    Some(c) => {
                        // The false branch is the loop exit; breaks join it.
                        let (t, f) = self.branch(ctx, c)?;
                        ctx.breaks.push(Lazy::fixed(f));
                        ctx.cur = Some(t);
                    }
                    None => {
                        // `for(;;)`: the body hangs directly off the head;
                        // the exit only exists if a `break` creates it.
                        ctx.breaks.push(Lazy::new());
                        ctx.cur = Some(head);
                    }
                }
                ctx.continues.push(Lazy::new());
                self.lower_stmt(ctx, body)?;
                let cont = ctx.continues.pop().expect("continue stack");
                if ctx.cur.is_some() || cont.node.is_some() {
                    if let Some(cnode) = cont.node {
                        ctx.connect_to(cnode);
                        ctx.cur = Some(cnode);
                    }
                    if let Some(e) = step {
                        self.lower_expr(ctx, e)?;
                    }
                    if let Some(end) = ctx.cur {
                        if end == head {
                            // Empty infinite loop: a self-loop on the head.
                            ctx.b.edge(head, head);
                        } else {
                            ctx.b.edge(end, head);
                        }
                    }
                }
                let brk = ctx.breaks.pop().expect("break stack");
                ctx.cur = brk.node;
                Ok(())
            }
            Stmt::Switch(scrutinee, arms, line) => {
                ctx.line = *line;
                let (e, _) = self.lower_expr(ctx, scrutinee)?;
                let v = self.force_var(ctx, e);
                let after = Lazy::new();
                ctx.breaks.push(after);
                let mut fall_cur = ctx.cur; // path where no case matched yet
                let mut default_body: Option<&[Stmt]> = None;
                for arm in arms {
                    if arm.values.contains(&None) {
                        default_body = Some(&arm.body);
                        continue;
                    }
                    // assume(v == k) for each label, all entering this body.
                    let entry = ctx.b.node(Cmd::Skip);
                    let mut next_fall = None;
                    for val in arm.values.iter().flatten() {
                        let Some(from) = fall_cur else { break };
                        let t = ctx.b.node(Cmd::Assume(Cond::new(
                            IrExpr::Var(v),
                            RelOp::Eq,
                            IrExpr::Const(*val),
                        )));
                        let nf = ctx.b.node(Cmd::Assume(Cond::new(
                            IrExpr::Var(v),
                            RelOp::Ne,
                            IrExpr::Const(*val),
                        )));
                        ctx.b.edge(from, t);
                        ctx.b.edge(from, nf);
                        ctx.b.edge(t, entry);
                        fall_cur = Some(nf);
                        next_fall = Some(nf);
                    }
                    let _ = next_fall;
                    ctx.cur = Some(entry);
                    for s in &arm.body {
                        self.lower_stmt(ctx, s)?;
                    }
                    if ctx.cur.is_some() {
                        let a = ctx.breaks.last_mut().expect("switch break").get(&mut ctx.b);
                        ctx.connect_to_node(a);
                    }
                }
                // Default (or implicit empty default).
                ctx.cur = fall_cur;
                if let Some(body) = default_body {
                    for s in body {
                        self.lower_stmt(ctx, s)?;
                    }
                }
                if ctx.cur.is_some() {
                    let a = ctx.breaks.last_mut().expect("switch break").get(&mut ctx.b);
                    ctx.connect_to_node(a);
                }
                let after = ctx.breaks.pop().expect("switch break");
                ctx.cur = after.node;
                Ok(())
            }
            Stmt::Break(line) => {
                ctx.line = *line;
                let Some(target) = ctx.breaks.last_mut() else {
                    return Err(FrontError::new(*line, "`break` outside loop/switch"));
                };
                let node = target.get(&mut ctx.b);
                ctx.connect_to_node(node);
                ctx.cur = None;
                Ok(())
            }
            Stmt::Continue(line) => {
                ctx.line = *line;
                let Some(target) = ctx.continues.last_mut() else {
                    return Err(FrontError::new(*line, "`continue` outside loop"));
                };
                let node = target.get(&mut ctx.b);
                ctx.connect_to_node(node);
                ctx.cur = None;
                Ok(())
            }
            Stmt::Return(value, line) => {
                ctx.line = *line;
                let expr = match value {
                    Some(e) => Some(self.lower_expr(ctx, e)?.0),
                    None => None,
                };
                ctx.emit(Cmd::Return(expr));
                let exit = ctx.b.exit();
                ctx.connect_to(exit);
                ctx.cur = None;
                Ok(())
            }
            Stmt::Goto(label, line) => {
                ctx.line = *line;
                let cur = ctx.cur.expect("guarded by unreachable-code check");
                if let Some(&target) = ctx.labels.get(label) {
                    ctx.b.edge(cur, target);
                } else {
                    // Forward goto: create the label node now so the edge can
                    // be patched later without dangling.
                    let node = ctx.b.node(Cmd::Skip);
                    ctx.labels.insert(label.clone(), node);
                    ctx.b.edge(cur, node);
                }
                ctx.cur = None;
                Ok(())
            }
        }
    }

    // ---- conditions ------------------------------------------------------

    /// Lowers a condition into assume-branches hanging off `ctx.cur`;
    /// returns `(true_exit, false_exit)` nodes.
    fn branch(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(NodeId, NodeId), FrontError> {
        match e {
            Expr::Unary(UnKind::Not, inner) => {
                let (t, f) = self.branch(ctx, inner)?;
                Ok((f, t))
            }
            Expr::Binary(BinKind::LAnd, a, b) => {
                let (ta, fa) = self.branch(ctx, a)?;
                ctx.cur = Some(ta);
                let (tb, fb) = self.branch(ctx, b)?;
                let f = ctx.b.node(Cmd::Skip);
                ctx.b.edge(fa, f);
                ctx.b.edge(fb, f);
                Ok((tb, f))
            }
            Expr::Binary(BinKind::LOr, a, b) => {
                let (ta, fa) = self.branch(ctx, a)?;
                ctx.cur = Some(fa);
                let (tb, fb) = self.branch(ctx, b)?;
                let t = ctx.b.node(Cmd::Skip);
                ctx.b.edge(ta, t);
                ctx.b.edge(tb, t);
                Ok((t, fb))
            }
            Expr::Binary(k, a, b) if relop_of(*k).is_some() => {
                let op = relop_of(*k).expect("guard checked");
                let (pa, _) = self.lower_expr(ctx, a)?;
                let (pb, _) = self.lower_expr(ctx, b)?;
                Ok(self.emit_cmp(ctx, pa, op, pb))
            }
            other => {
                let (p, _) = self.lower_expr(ctx, other)?;
                Ok(self.emit_cmp(ctx, p, RelOp::Ne, IrExpr::Const(0)))
            }
        }
    }

    fn emit_cmp(
        &mut self,
        ctx: &mut FnCtx,
        lhs: IrExpr,
        op: RelOp,
        rhs: IrExpr,
    ) -> (NodeId, NodeId) {
        let cond = Cond::new(lhs, op, rhs);
        let t = ctx.b.node_at_line(Cmd::Assume(cond.clone()), ctx.line);
        let f = ctx.b.node_at_line(Cmd::Assume(cond.negate()), ctx.line);
        let from = ctx.cur.expect("branch from dead code");
        ctx.b.edge(from, t);
        ctx.b.edge(from, f);
        (t, f)
    }

    // ---- expressions -----------------------------------------------------

    /// Lowers `e` to a pure IR expression, emitting any side effects onto the
    /// current chain. The second component is the line for diagnostics.
    fn lower_expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(IrExpr, u32), FrontError> {
        let line = ctx.line;
        let out = match e {
            Expr::Int(n) => IrExpr::Const(*n),
            Expr::Null => IrExpr::Const(0),
            Expr::Sizeof => IrExpr::Const(8),
            Expr::Str(s) => {
                // A string literal is an anonymous constant array.
                let tmp = self.fresh_temp(ctx);
                ctx.emit(Cmd::Alloc(
                    LVal::Var(tmp),
                    IrExpr::Const(s.len() as i64 + 1),
                ));
                IrExpr::Var(tmp)
            }
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(ctx, name) {
                    IrExpr::Var(v)
                } else if let Some(&p) = self.proc_ids.get(name.as_str()) {
                    IrExpr::AddrOfProc(p)
                } else if stub_kind(name).is_some() || self.defined.contains_key(name) {
                    let p = self.external_proc(name);
                    IrExpr::AddrOfProc(p)
                } else {
                    return Err(FrontError::new(
                        line,
                        format!("unknown identifier `{name}`"),
                    ));
                }
            }
            Expr::Binary(BinKind::LAnd | BinKind::LOr, _, _)
            | Expr::Binary(
                BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge | BinKind::Eq | BinKind::Ne,
                _,
                _,
            ) => {
                // A comparison used as a value: materialize 0/1 via branching
                // so assume-refinement still applies.
                let tmp = self.fresh_temp(ctx);
                let (t, f) = self.branch(ctx, e)?;
                ctx.cur = Some(t);
                ctx.emit(Cmd::Assign(LVal::Var(tmp), IrExpr::Const(1)));
                let t_end = ctx.cur.expect("assign keeps control");
                ctx.cur = Some(f);
                ctx.emit(Cmd::Assign(LVal::Var(tmp), IrExpr::Const(0)));
                let f_end = ctx.cur.expect("assign keeps control");
                let join = ctx.b.node(Cmd::Skip);
                ctx.b.edge(t_end, join);
                ctx.b.edge(f_end, join);
                ctx.cur = Some(join);
                IrExpr::Var(tmp)
            }
            Expr::Binary(k, a, b) => {
                let (pa, _) = self.lower_expr(ctx, a)?;
                let (pb, _) = self.lower_expr(ctx, b)?;
                IrExpr::binop(irop_of(*k), pa, pb)
            }
            Expr::Unary(k, a) => {
                let (pa, _) = self.lower_expr(ctx, a)?;
                let op = match k {
                    UnKind::Neg => UnOp::Neg,
                    UnKind::Not => UnOp::Not,
                    UnKind::BitNot => UnOp::BitNot,
                };
                IrExpr::Unop(op, Box::new(pa))
            }
            Expr::Deref(inner) => {
                let (p, _) = self.lower_expr(ctx, inner)?;
                IrExpr::deref(p)
            }
            Expr::AddrOf(inner) => self.lower_addr_of(ctx, inner)?,
            Expr::Index(base, idx) => {
                let (pb, _) = self.lower_expr(ctx, base)?;
                let (pi, _) = self.lower_expr(ctx, idx)?;
                IrExpr::deref(IrExpr::binop(BinOp::Add, pb, pi))
            }
            Expr::Member(base, fname) => {
                let f = self.fields.intern(fname);
                match &**base {
                    Expr::Ident(name) => {
                        let v = self.lookup(ctx, name).ok_or_else(|| {
                            FrontError::new(line, format!("unknown identifier `{name}`"))
                        })?;
                        IrExpr::Field(v, f)
                    }
                    Expr::Deref(p) => {
                        let (pp, _) = self.lower_expr(ctx, p)?;
                        IrExpr::DerefField(Box::new(pp), f)
                    }
                    other => {
                        // (complex).f — evaluate the aggregate conservatively.
                        let (pe, _) = self.lower_expr(ctx, other)?;
                        IrExpr::DerefField(Box::new(pe), f)
                    }
                }
            }
            Expr::Arrow(base, fname) => {
                let f = self.fields.intern(fname);
                let (pb, _) = self.lower_expr(ctx, base)?;
                IrExpr::DerefField(Box::new(pb), f)
            }
            Expr::Call(callee, args) => self.lower_call(ctx, callee, args)?,
            Expr::Assign(op, lhs, rhs) => {
                let (rv, _) = self.lower_expr(ctx, rhs)?;
                let rv = match op {
                    None => rv,
                    Some(k) => {
                        let (cur, _) = self.lower_read_of_lval(ctx, lhs)?;
                        IrExpr::binop(irop_of(*k), cur, rv)
                    }
                };
                // Pin complex RHS in a temp so the stored value is
                // re-readable as the expression's result.
                let stored = match rv {
                    IrExpr::Var(_) | IrExpr::Const(_) => rv,
                    other => IrExpr::Var(self.force_var(ctx, other)),
                };
                let lv = self.lower_lval(ctx, lhs)?;
                ctx.emit(Cmd::Assign(lv, stored.clone()));
                stored
            }
            Expr::IncDec {
                target,
                delta,
                post,
            } => {
                let (old, _) = self.lower_read_of_lval(ctx, target)?;
                let old_var = self.force_var(ctx, old);
                let new_val =
                    IrExpr::binop(BinOp::Add, IrExpr::Var(old_var), IrExpr::Const(*delta));
                let new_var = self.force_var(ctx, new_val);
                let lv = self.lower_lval(ctx, target)?;
                ctx.emit(Cmd::Assign(lv, IrExpr::Var(new_var)));
                IrExpr::Var(if *post { old_var } else { new_var })
            }
            Expr::Cond(c, t, e2) => {
                let tmp = self.fresh_temp(ctx);
                let (tn, fn_) = self.branch(ctx, c)?;
                ctx.cur = Some(tn);
                let (tv, _) = self.lower_expr(ctx, t)?;
                ctx.emit(Cmd::Assign(LVal::Var(tmp), tv));
                let t_end = ctx.cur.expect("assign keeps control");
                ctx.cur = Some(fn_);
                let (fv, _) = self.lower_expr(ctx, e2)?;
                ctx.emit(Cmd::Assign(LVal::Var(tmp), fv));
                let f_end = ctx.cur.expect("assign keeps control");
                let join = ctx.b.node(Cmd::Skip);
                ctx.b.edge(t_end, join);
                ctx.b.edge(f_end, join);
                ctx.cur = Some(join);
                IrExpr::Var(tmp)
            }
            Expr::Comma(a, b) => {
                self.lower_expr(ctx, a)?;
                self.lower_expr(ctx, b)?.0
            }
        };
        Ok((out, line))
    }

    fn lower_addr_of(&mut self, ctx: &mut FnCtx, inner: &Expr) -> Result<IrExpr, FrontError> {
        match inner {
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(ctx, name) {
                    self.vars[v].address_taken = true;
                    Ok(IrExpr::AddrOf(v))
                } else if let Some(&p) = self.proc_ids.get(name.as_str()) {
                    Ok(IrExpr::AddrOfProc(p))
                } else {
                    Err(FrontError::new(
                        ctx.line,
                        format!("unknown identifier `{name}`"),
                    ))
                }
            }
            Expr::Member(base, fname) => {
                let f = self.fields.intern(fname);
                if let Expr::Ident(name) = &**base {
                    let v = self.lookup(ctx, name).ok_or_else(|| {
                        FrontError::new(ctx.line, format!("unknown identifier `{name}`"))
                    })?;
                    self.vars[v].address_taken = true;
                    Ok(IrExpr::AddrOfField(v, f))
                } else {
                    // &(complex.f): approximate by the aggregate's address.
                    self.lower_addr_of(ctx, base)
                }
            }
            Expr::Deref(p) => Ok(self.lower_expr(ctx, p)?.0), // &*p ≡ p
            Expr::Index(base, idx) => {
                // &a[i] ≡ a + i (pointer into the array block).
                let (pb, _) = self.lower_expr(ctx, base)?;
                let (pi, _) = self.lower_expr(ctx, idx)?;
                Ok(IrExpr::binop(BinOp::Add, pb, pi))
            }
            Expr::Arrow(base, _fname) => {
                // &(p->f): approximated by p's value — field-insensitive
                // pointer into the same object.
                Ok(self.lower_expr(ctx, base)?.0)
            }
            other => Err(FrontError::new(
                ctx.line,
                format!("cannot take the address of this expression: {other:?}"),
            )),
        }
    }

    /// Reads the current value of an l-value expression (for `+=`, `++`).
    fn lower_read_of_lval(
        &mut self,
        ctx: &mut FnCtx,
        e: &Expr,
    ) -> Result<(IrExpr, u32), FrontError> {
        self.lower_expr(ctx, e)
    }

    /// Lowers an assignment target.
    fn lower_lval(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<LVal, FrontError> {
        match e {
            Expr::Ident(name) => {
                let v = self.lookup(ctx, name).ok_or_else(|| {
                    FrontError::new(ctx.line, format!("unknown identifier `{name}`"))
                })?;
                Ok(LVal::Var(v))
            }
            Expr::Deref(inner) => {
                let (p, _) = self.lower_expr(ctx, inner)?;
                Ok(LVal::Deref(self.force_var(ctx, p)))
            }
            Expr::Index(base, idx) => {
                let (pb, _) = self.lower_expr(ctx, base)?;
                let (pi, _) = self.lower_expr(ctx, idx)?;
                let ptr = IrExpr::binop(BinOp::Add, pb, pi);
                Ok(LVal::Deref(self.force_var(ctx, ptr)))
            }
            Expr::Member(base, fname) => {
                let f = self.fields.intern(fname);
                match &**base {
                    Expr::Ident(name) => {
                        let v = self.lookup(ctx, name).ok_or_else(|| {
                            FrontError::new(ctx.line, format!("unknown identifier `{name}`"))
                        })?;
                        Ok(LVal::Field(v, f))
                    }
                    Expr::Deref(p) => {
                        let (pp, _) = self.lower_expr(ctx, p)?;
                        Ok(LVal::DerefField(self.force_var(ctx, pp), f))
                    }
                    other => Err(FrontError::new(
                        ctx.line,
                        format!("unsupported struct l-value: {other:?}"),
                    )),
                }
            }
            Expr::Arrow(base, fname) => {
                let f = self.fields.intern(fname);
                let (pb, _) = self.lower_expr(ctx, base)?;
                Ok(LVal::DerefField(self.force_var(ctx, pb), f))
            }
            other => Err(FrontError::new(
                ctx.line,
                format!("not an l-value: {other:?}"),
            )),
        }
    }

    /// Ensures a pure expression is a variable (inserting a temp if needed).
    fn force_var(&mut self, ctx: &mut FnCtx, e: IrExpr) -> VarId {
        if let IrExpr::Var(v) = e {
            return v;
        }
        let tmp = self.fresh_temp(ctx);
        ctx.emit(Cmd::Assign(LVal::Var(tmp), e));
        tmp
    }

    fn lower_call(
        &mut self,
        ctx: &mut FnCtx,
        callee: &Expr,
        args: &[Expr],
    ) -> Result<IrExpr, FrontError> {
        // Stub dispatch happens on direct calls by name.
        if let Expr::Ident(name) = callee {
            if self.lookup(ctx, name).is_none() && !self.proc_ids.contains_key(name.as_str()) {
                if let Some(stub) = stub_kind(name) {
                    return self.lower_stub_call(ctx, name, stub, args);
                }
            }
        }
        let mut arg_exprs = Vec::with_capacity(args.len());
        for a in args {
            arg_exprs.push(self.lower_expr(ctx, a)?.0);
        }
        let ret_tmp = self.fresh_temp(ctx);
        let target = match callee {
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(ctx, name) {
                    Callee::Indirect(IrExpr::Var(v))
                } else if let Some(&p) = self.proc_ids.get(name.as_str()) {
                    Callee::Direct(p)
                } else {
                    Callee::Direct(self.external_proc(name))
                }
            }
            Expr::Deref(inner) => {
                let (p, _) = self.lower_expr(ctx, inner)?;
                Callee::Indirect(p)
            }
            other => {
                let (p, _) = self.lower_expr(ctx, other)?;
                Callee::Indirect(p)
            }
        };
        ctx.emit(Cmd::Call {
            ret: Some(LVal::Var(ret_tmp)),
            callee: target,
            args: arg_exprs,
        });
        Ok(IrExpr::Var(ret_tmp))
    }

    fn lower_stub_call(
        &mut self,
        ctx: &mut FnCtx,
        name: &str,
        stub: Stub,
        args: &[Expr],
    ) -> Result<IrExpr, FrontError> {
        let mut arg_exprs = Vec::with_capacity(args.len());
        for a in args {
            arg_exprs.push(self.lower_expr(ctx, a)?.0);
        }
        Ok(match stub {
            Stub::Alloc | Stub::AllocZeroed => {
                let size = match (name, arg_exprs.as_slice()) {
                    ("calloc", [n, _sz]) => n.clone(),
                    ("realloc", [_p, n]) => n.clone(),
                    ("strdup", _) => IrExpr::Unknown,
                    (_, [n, ..]) => n.clone(),
                    _ => IrExpr::Unknown,
                };
                let tmp = self.fresh_temp(ctx);
                ctx.emit(Cmd::Alloc(LVal::Var(tmp), size));
                if !stub.zeroed() {
                    // Contents of a fresh malloc are arbitrary.
                    let t2 = self.fresh_temp(ctx);
                    ctx.emit(Cmd::Assign(LVal::Var(t2), IrExpr::Var(tmp)));
                    ctx.emit(Cmd::Assign(LVal::Deref(t2), IrExpr::Unknown));
                }
                IrExpr::Var(tmp)
            }
            Stub::UnknownInt => {
                let tmp = self.fresh_temp(ctx);
                ctx.emit(Cmd::Assign(LVal::Var(tmp), IrExpr::Unknown));
                IrExpr::Var(tmp)
            }
            Stub::StoreUnknown => {
                if let Some(dest) = arg_exprs.first().cloned() {
                    let d = self.force_var(ctx, dest);
                    ctx.emit(Cmd::Assign(LVal::Deref(d), IrExpr::Unknown));
                    IrExpr::Var(d)
                } else {
                    IrExpr::Unknown
                }
            }
            Stub::Nop => IrExpr::Const(0),
        })
    }
}

fn relop_of(k: BinKind) -> Option<RelOp> {
    Some(match k {
        BinKind::Lt => RelOp::Lt,
        BinKind::Le => RelOp::Le,
        BinKind::Gt => RelOp::Gt,
        BinKind::Ge => RelOp::Ge,
        BinKind::Eq => RelOp::Eq,
        BinKind::Ne => RelOp::Ne,
        _ => return None,
    })
}

fn irop_of(k: BinKind) -> BinOp {
    match k {
        BinKind::Add => BinOp::Add,
        BinKind::Sub => BinOp::Sub,
        BinKind::Mul => BinOp::Mul,
        BinKind::Div => BinOp::Div,
        BinKind::Mod => BinOp::Mod,
        BinKind::Lt => BinOp::Cmp(RelOp::Lt),
        BinKind::Le => BinOp::Cmp(RelOp::Le),
        BinKind::Gt => BinOp::Cmp(RelOp::Gt),
        BinKind::Ge => BinOp::Cmp(RelOp::Ge),
        BinKind::Eq => BinOp::Cmp(RelOp::Eq),
        BinKind::Ne => BinOp::Cmp(RelOp::Ne),
        BinKind::LAnd => BinOp::And,
        BinKind::LOr => BinOp::Or,
        BinKind::BitAnd | BinKind::BitOr | BinKind::BitXor | BinKind::Shl | BinKind::Shr => {
            BinOp::Bits
        }
    }
}

/// A lazily created skip node (break/continue targets that may go unused).
struct Lazy {
    node: Option<NodeId>,
}

impl Lazy {
    fn new() -> Lazy {
        Lazy { node: None }
    }

    /// A target that already exists and is reachable.
    fn fixed(node: NodeId) -> Lazy {
        Lazy { node: Some(node) }
    }

    fn get(&mut self, b: &mut ProcBuilder) -> NodeId {
        *self.node.get_or_insert_with(|| b.node(Cmd::Skip))
    }
}

struct FnCtx {
    b: ProcBuilder,
    proc: ProcId,
    cur: Option<NodeId>,
    scopes: Vec<FxHashMap<String, VarId>>,
    breaks: Vec<Lazy>,
    continues: Vec<Lazy>,
    labels: FxHashMap<String, NodeId>,
    pending_gotos: Vec<(String, NodeId, u32)>,
    temp_count: u32,
    line: u32,
}

impl FnCtx {
    /// Appends a command node to the current chain.
    fn emit(&mut self, cmd: Cmd) {
        let n = self.b.node_at_line(cmd, self.line);
        if let Some(cur) = self.cur {
            self.b.edge(cur, n);
        }
        self.cur = Some(n);
    }

    /// Connects the current node (if any) to `target` without moving `cur`.
    fn connect_to(&mut self, target: NodeId) {
        if let Some(cur) = self.cur {
            if cur != target {
                self.b.edge(cur, target);
            }
        }
    }

    fn connect_to_node(&mut self, target: NodeId) {
        self.connect_to(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use sga_ir::pretty;

    fn lower_ok(src: &str) -> Program {
        let p = parse(src).unwrap_or_else(|e| panic!("frontend failed: {e}\nsource: {src}"));
        let errs = sga_ir::validate::validate(&p);
        assert!(
            errs.is_empty(),
            "invalid IR: {errs:?}\n{}",
            pretty::program(&p)
        );
        p
    }

    #[test]
    fn lowers_straight_line() {
        let p = lower_ok("int main() { int x = 1; int y = x + 2; return y; }");
        let text = pretty::program(&p);
        assert!(text.contains("x := 1"), "{text}");
        assert!(text.contains("y := (x + 2)"), "{text}");
        assert!(text.contains("return y"), "{text}");
    }

    #[test]
    fn lowers_while_loop_with_assumes() {
        let p = lower_ok("int main() { int i = 0; while (i < 10) { i = i + 1; } return i; }");
        let text = pretty::program(&p);
        assert!(text.contains("assume(i < 10)"), "{text}");
        assert!(text.contains("assume(i >= 10)"), "{text}");
    }

    #[test]
    fn lowers_pointers_and_malloc() {
        let p = lower_ok(
            "int main() { int x; int *p = &x; *p = 5; int *q = malloc(4); *q = x; return *q; }",
        );
        let text = pretty::program(&p);
        assert!(text.contains("p := &x"), "{text}");
        assert!(text.contains("*p := "), "{text}");
        assert!(text.contains("alloc("), "{text}");
        // &x marks x address-taken.
        let x = p.vars.iter().find(|v| v.name == "x").unwrap();
        assert!(x.address_taken);
    }

    #[test]
    fn lowers_calls_direct_and_fp() {
        let p = lower_ok(
            "int add(int a, int b) { return a + b; }
             int main() { int (*fp)(int, int); fp = add; return fp(1, add(2, 3)); }",
        );
        let text = pretty::program(&p);
        assert!(text.contains("add("), "{text}");
        assert!(text.contains("(*fp)") || text.contains("(*"), "{text}");
        assert!(text.contains("&add"), "{text}");
    }

    #[test]
    fn globals_initialized_in_main_prelude() {
        let p = lower_ok("int g = 7; int main() { return g; }");
        let main = &p.procs[p.main];
        let text = pretty::proc(&p, main);
        assert!(text.contains("g := 7"), "{text}");
    }

    #[test]
    fn lowers_structs() {
        let p = lower_ok(
            "struct pt { int x; int y; };
             int main() { struct pt p; p.x = 1; struct pt *q = &p; q->y = p.x; return q->y; }",
        );
        let text = pretty::program(&p);
        assert!(text.contains("p.x := 1"), "{text}");
        assert!(text.contains("->y :="), "{text}");
    }

    #[test]
    fn lowers_arrays() {
        let p = lower_ok("int main() { int a[10]; int i = 0; a[i] = 3; int x = a[5]; return x; }");
        let text = pretty::program(&p);
        assert!(text.contains("alloc(10)"), "{text}");
    }

    #[test]
    fn lowers_switch() {
        let p = lower_ok(
            "int main(int argc) {
                int r = 0;
                switch (argc) { case 1: r = 10; break; case 2: r = 20; break; default: r = 9; break; }
                return r;
             }",
        );
        let text = pretty::program(&p);
        assert!(text.contains("assume(argc == 1)"), "{text}");
        assert!(text.contains("assume(argc != 1)"), "{text}");
    }

    #[test]
    fn lowers_goto_forward_and_back() {
        lower_ok(
            "int main() {
                int i = 0;
              top:
                i = i + 1;
                if (i < 3) goto top;
                goto done;
              done:
                return i;
             }",
        );
    }

    #[test]
    fn lowers_do_while_and_for() {
        lower_ok(
            "int main() {
                int s = 0;
                for (int i = 0; i < 4; i++) { if (i == 2) continue; s += i; }
                do { s--; } while (s > 0);
                for (;;) { break; }
                return s;
             }",
        );
    }

    #[test]
    fn infinite_loop_without_break() {
        lower_ok("int main() { for (;;) { } return 0; }");
    }

    #[test]
    fn unreachable_code_dropped() {
        let p = lower_ok("int main() { return 1; return 2; }");
        let text = pretty::program(&p);
        assert!(text.contains("return 1"));
        assert!(!text.contains("return 2"), "{text}");
    }

    #[test]
    fn unknown_extern_becomes_external_proc() {
        let p = lower_ok("int mystery(int); int main() { return mystery(1); }");
        let ext = p.procs.iter().find(|x| x.name == "mystery").unwrap();
        assert!(ext.is_external);
    }

    #[test]
    fn stub_calls_have_no_proc() {
        let p = lower_ok("int main() { int *p = malloc(8); free(p); return rand(); }");
        assert!(
            p.proc_by_name("malloc").is_none(),
            "malloc lowered inline, not as a call"
        );
        let text = pretty::program(&p);
        assert!(text.contains("alloc(8)"), "{text}");
        assert!(text.contains("⊤"), "{text}");
    }

    #[test]
    fn ternary_and_logical_values() {
        lower_ok(
            "int main(int a, int b) {
                int m = a > b ? a : b;
                int c = (a < 3) && (b > 1);
                return m + c;
             }",
        );
    }

    #[test]
    fn missing_main_is_error() {
        assert!(parse("int f() { return 0; }").is_err());
    }

    #[test]
    fn string_literals_allocate() {
        let p = lower_ok("int main() { char *s = \"hi\"; return 0; }");
        let text = pretty::program(&p);
        assert!(text.contains("alloc(3)"), "{text}");
    }
}
