//! Abstract syntax tree for the C subset.

/// A parsed translation unit.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// Struct definitions, in order.
    pub structs: Vec<StructDef>,
    /// File-scope variable declarations.
    pub globals: Vec<Decl>,
    /// Function definitions (prototypes without bodies become externals).
    pub funcs: Vec<FuncDef>,
    /// Names declared by prototypes only (external procedures).
    pub protos: Vec<Proto>,
}

/// `struct name { fields };`
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Field names with their types.
    pub fields: Vec<(String, Type)>,
    /// Source line.
    pub line: u32,
}

/// A function prototype (no body).
#[derive(Clone, Debug)]
pub struct Proto {
    /// Function name.
    pub name: String,
    /// Number of declared parameters.
    pub params: usize,
    /// Source line.
    pub line: u32,
}

/// Types (sizes are abstracted; `char`/`short`/`long` all behave as `int`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// Any integer type.
    Int,
    /// `void` (function returns only).
    Void,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Array of `T` with optional constant length.
    Array(Box<Type>, Option<i64>),
    /// A named struct.
    Struct(String),
    /// Pointer-to-function (arity only).
    FuncPtr(usize),
}

impl Type {
    /// Whether values of the type live in memory as aggregates.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Type::Array(_, _) | Type::Struct(_))
    }
}

/// A variable declaration, possibly initialized.
#[derive(Clone, Debug)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initializer expression, if any.
    pub init: Option<Expr>,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<(String, Type)>,
    /// Whether the return type is `void`.
    pub returns_void: bool,
    /// The body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A nested block with its own scope.
    Block(Vec<Stmt>),
    /// Local declaration.
    Decl(Decl),
    /// Expression statement.
    Expr(Expr, u32),
    /// `if (c) t else e`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>, u32),
    /// `while (c) body`.
    While(Expr, Box<Stmt>, u32),
    /// `do body while (c);`
    DoWhile(Box<Stmt>, Expr, u32),
    /// `for (init; cond; step) body` — any clause may be absent.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>, u32),
    /// `switch (e) { case k: ... }` — lowered to an if-else cascade.
    Switch(Expr, Vec<SwitchArm>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `return e?;`
    Return(Option<Expr>, u32),
    /// `goto label;`
    Goto(String, u32),
    /// `label: stmt`
    Label(String, Box<Stmt>),
    /// `;`
    Empty,
}

/// One arm of a `switch`.
#[derive(Clone, Debug)]
pub struct SwitchArm {
    /// Case values (`None` = `default`). Multiple labels share one body.
    pub values: Vec<Option<i64>>,
    /// Body statements (fall-through is not modeled; each arm is closed).
    pub body: Vec<Stmt>,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal (used as an anonymous constant array).
    Str(String),
    /// Variable (or function) reference.
    Ident(String),
    /// `e1 op e2` (non-assignment binary operator).
    Binary(BinKind, Box<Expr>, Box<Expr>),
    /// `op e`.
    Unary(UnKind, Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// `e1[e2]`.
    Index(Box<Expr>, Box<Expr>),
    /// `e.field`.
    Member(Box<Expr>, String),
    /// `e->field`.
    Arrow(Box<Expr>, String),
    /// `callee(args)`; callee may be any expression (function pointers).
    Call(Box<Expr>, Vec<Expr>),
    /// `lhs = rhs` or compound assignment.
    Assign(Option<BinKind>, Box<Expr>, Box<Expr>),
    /// Pre/post increment/decrement.
    IncDec {
        /// The operand l-value expression.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i64,
        /// Whether the original value is the expression's result.
        post: bool,
    },
    /// `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `sizeof(...)` — abstracted to an unknown positive constant.
    Sizeof,
    /// `NULL`.
    Null,
    /// Comma expression `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

/// Non-assignment binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// Unary operators (deref/addr-of have dedicated nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    Not,
    BitNot,
}
