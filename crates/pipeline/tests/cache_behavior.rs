//! Cache contract: a warm second run hits on every procedure, skips
//! re-analysis entirely, and still reports exactly the same analysis facts.

use sga_pipeline::{run, PipelineOptions, Project};
use sga_utils::Json;
use std::path::PathBuf;

fn temp_cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sga-pipeline-test-{tag}-{}", std::process::id()))
}

/// Strips the per-unit "cache" status and total hit counters, leaving only
/// the analysis facts, which must not depend on where they came from.
fn analysis_facts(report: &Json) -> String {
    let units: Vec<Json> = report
        .get("units")
        .and_then(Json::as_arr)
        .expect("units array")
        .iter()
        .map(|u| {
            let mut copy = Json::obj();
            for key in [
                "name",
                "source_hash",
                "procs",
                "locs",
                "dep_edges",
                "iterations",
                "fingerprint",
            ] {
                copy.set(key, u.get(key).expect(key).clone());
            }
            copy.set(
                "diagnostics",
                u.get("diagnostics").expect("diagnostics").clone(),
            );
            copy
        })
        .collect();
    Json::from(units).to_pretty()
}

#[test]
fn second_run_hits_on_every_procedure_with_equal_output() {
    let dir = temp_cache_dir("warm");
    let _ = std::fs::remove_dir_all(&dir);

    let project = Project::Corpus {
        units: 2,
        kloc: 1,
        seed: 42,
    };
    let opts = PipelineOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        canonical: true,
        ..PipelineOptions::default()
    };

    let cold = run(&project, &opts).expect("cold run");
    let totals = cold.get("totals").expect("totals");
    let procs = totals.get("procs").unwrap().as_u64().unwrap();
    assert!(procs > 0);
    assert_eq!(totals.get("cache_hits").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("cache_misses").unwrap().as_u64(), Some(procs));

    let warm = run(&project, &opts).expect("warm run");
    let totals = warm.get("totals").expect("totals");
    assert_eq!(
        totals.get("cache_hits").unwrap().as_u64(),
        Some(procs),
        "warm run must hit 100%"
    );
    assert_eq!(totals.get("cache_misses").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("hit_rate").unwrap().as_f64(), Some(1.0));
    for unit in warm.get("units").unwrap().as_arr().unwrap() {
        assert_eq!(unit.get("cache").unwrap().as_str(), Some("hit"));
    }

    assert_eq!(analysis_facts(&cold), analysis_facts(&warm));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_keys_track_source_and_options() {
    let dir = temp_cache_dir("keys");
    let _ = std::fs::remove_dir_all(&dir);

    let project = Project::Corpus {
        units: 1,
        kloc: 1,
        seed: 9,
    };
    let mut opts = PipelineOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        canonical: true,
        ..PipelineOptions::default()
    };
    run(&project, &opts).expect("seed the cache");

    // Different analysis options ⇒ different key ⇒ a miss, not a stale hit.
    opts.depgen.bypass = false;
    let report = run(&project, &opts).expect("no-bypass run");
    let totals = report.get("totals").unwrap();
    assert_eq!(totals.get("cache_hits").unwrap().as_u64(), Some(0));

    // A different unit (new seed ⇒ new source) also misses.
    let other = Project::Corpus {
        units: 1,
        kloc: 1,
        seed: 10,
    };
    opts.depgen.bypass = true;
    let report = run(&other, &opts).expect("other-source run");
    assert_eq!(
        report
            .get("totals")
            .unwrap()
            .get("cache_hits")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
