//! The pipeline's headline invariant: the report is independent of the
//! worker count. `--jobs 1`, `2` and `8` must produce *byte-identical*
//! canonical reports, and the staged per-procedure schedule must agree
//! exactly with the sequential single-unit analyzer it decomposes.

use sga_core::budget::Budget;
use sga_core::depgen::DepGenOptions;
use sga_core::depstore::DepBackend;
use sga_core::interval::{self, Engine};
use sga_core::widening::WideningConfig;
use sga_pipeline::{analyze_unit, run, PipelineOptions, Project};
use sga_utils::stats::StageTimers;

fn corpus() -> Project {
    Project::Corpus {
        units: 3,
        kloc: 1,
        seed: 7,
    }
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let render = |jobs: usize| {
        let opts = PipelineOptions {
            jobs,
            canonical: true,
            ..PipelineOptions::default()
        };
        run(&corpus(), &opts).expect("pipeline run").to_pretty()
    };
    let sequential = render(1);
    assert!(sequential.contains("\"fingerprint\""));
    for jobs in [2, 8] {
        let parallel = render(jobs);
        assert_eq!(sequential, parallel, "jobs=1 vs jobs={jobs} reports differ");
    }
}

#[test]
fn staged_schedule_matches_sequential_analyzer() {
    let source = sga_cgen::generate(&sga_cgen::GenConfig::sized(21, 1));
    let program = sga_cfront::parse(&source).expect("corpus parses");

    // The reference: the one-shot sparse analyzer from sga-core.
    let reference = interval::analyze(&program, Engine::Sparse);

    // The staged per-procedure schedule, with real worker threads.
    let timers = StageTimers::new();
    let staged = analyze_unit(
        &program,
        4,
        DepGenOptions::default(),
        DepBackend::default(),
        WideningConfig::default(),
        sga_core::triage::TriageMode::default(),
        &Budget::unbounded(),
        &timers,
    );

    assert_eq!(staged.iterations, reference.stats.iterations);
    assert_eq!(staged.num_locs, reference.stats.num_locs);
    assert_eq!(staged.dep_edges, reference.stats.dep_edges);
    assert_eq!(staged.dep_edges_raw, reference.stats.dep_edges_raw);

    // The reference diagnostics: same checkers, same triage, over the
    // one-shot result — the staged schedule must reproduce them exactly,
    // fingerprints, triage verdicts and all.
    let pre = sga_core::preanalysis::run(&program);
    let mut reference_diags = sga_core::checker::check_all(&program, &reference, &pre);
    sga_core::triage::discharge(
        &program,
        &pre,
        &reference,
        &mut reference_diags,
        &sga_core::triage::TriageOptions {
            budget: sga_core::triage::derived_budget(
                reference.stats.iterations,
                &Budget::unbounded(),
            ),
            ..sga_core::triage::TriageOptions::default()
        },
    );
    assert_eq!(staged.diags, reference_diags);
}

/// Runs against the same cache directory with each backend in turn: the
/// second run must score zero hits (its key differs), yet the canonical
/// per-unit objects must still agree byte-for-byte.
#[test]
fn no_cross_backend_cache_hits() {
    let dir = std::env::temp_dir().join(format!("sga-backend-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let render = |backend| {
        let opts = PipelineOptions {
            canonical: true,
            cache_dir: Some(dir.clone()),
            dep_backend: backend,
            ..PipelineOptions::default()
        };
        run(&corpus(), &opts).expect("pipeline run")
    };
    let over_csr = render(DepBackend::Csr);
    let over_bdd = render(DepBackend::Bdd);
    let _ = std::fs::remove_dir_all(&dir);

    let hits = over_bdd
        .get("totals")
        .and_then(|t| t.get("cache_hits"))
        .and_then(|h| h.as_u64())
        .expect("cache_hits");
    assert_eq!(hits, 0, "bdd run served entries the csr run stored");
    assert_eq!(
        over_csr.get("units").expect("units").to_pretty(),
        over_bdd.get("units").expect("units").to_pretty(),
        "backends disagree on the canonical per-unit reports"
    );
}
