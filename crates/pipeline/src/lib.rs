//! `sga-pipeline` — a parallel, cache-aware batch analysis driver.
//!
//! The single-file `sga` analyzer runs one translation unit end to end.
//! This crate drives the same sparse analysis over a *project* — a
//! directory of C files, or a generated corpus — with three additions:
//!
//! 1. **Per-procedure scheduling.** Each unit's analysis is staged over the
//!    public per-procedure APIs of `sga-core` (def/use passes, dependency
//!    segments) and scheduled onto scoped worker threads; the def/use
//!    summary pass runs bottom-up over the call graph's SCC condensation,
//!    level by level. Units themselves also run concurrently. See [`unit`].
//! 2. **Content-hash caching.** Per-procedure callee-access summaries and
//!    dependency segments (plus the unit's alarms and fixpoint fingerprint)
//!    are persisted to an on-disk cache keyed by a hash of the unit's
//!    source and the analysis options; an unchanged unit is never
//!    re-analyzed. See [`cache`].
//! 3. **Machine-readable reports.** Every run produces a deterministic JSON
//!    report (per-unit alarms and statistics, cache hit rate, per-stage
//!    wall time) consumed by `sga analyze` and the benchmark harness.
//!
//! Determinism is a hard invariant: every parallel stage merges results in
//! input order ([`par::run_indexed`]), so the report — timings aside — is
//! byte-identical for any `--jobs` value. The `canonical` option drops the
//! timing and job-count fields, making the *entire* report byte-comparable.

pub mod cache;
pub mod par;
pub mod unit;

pub use cache::Cache;
pub use unit::{analyze_unit, ProcArtifact, UnitAnalysis};

use sga_core::depgen::DepGenOptions;
use sga_core::widening::WideningConfig;
use sga_utils::stats::StageTimers;
use sga_utils::Json;
use std::path::PathBuf;
use std::time::Instant;

/// Report schema version (`"schema"` field of the emitted JSON).
pub const REPORT_SCHEMA: u32 = 1;

/// What to analyze.
#[derive(Clone, Debug)]
pub enum Project {
    /// Every `*.c` file directly inside a directory, in name order.
    Dir(PathBuf),
    /// A deterministic generated corpus: `units` translation units of
    /// roughly `kloc` thousand lines each, seeded from `seed`.
    Corpus {
        units: usize,
        kloc: usize,
        seed: u64,
    },
}

/// One translation unit, loaded.
#[derive(Clone, Debug)]
pub struct UnitInput {
    /// Display name (file name, or `unitNNN` for corpus members).
    pub name: String,
    /// C source text.
    pub source: String,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Worker-thread budget shared between unit-level and procedure-level
    /// parallelism (1 = fully sequential).
    pub jobs: usize,
    /// Cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Emit the canonical (timing-free, job-count-free) report, suitable
    /// for byte comparison across runs and `--jobs` values.
    pub canonical: bool,
    /// Dependency-generation options forwarded to the sparse analysis.
    pub depgen: DepGenOptions,
    /// Widening strategy forwarded to the fixpoint solver.
    pub widening: WideningConfig,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            jobs: 1,
            cache_dir: None,
            canonical: false,
            depgen: DepGenOptions::default(),
            widening: WideningConfig::default(),
        }
    }
}

/// Why a run failed. Per-unit *analysis* never fails; only I/O and the
/// frontend can.
#[derive(Debug)]
pub enum PipelineError {
    /// Filesystem trouble (project loading or cache directory creation).
    Io(String),
    /// A unit did not parse.
    Frontend {
        /// The offending unit.
        unit: String,
        /// Rendered frontend error.
        message: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(m) => write!(f, "{m}"),
            PipelineError::Frontend { unit, message } => write!(f, "{unit}: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Loads a project's translation units in deterministic order.
pub fn load_project(project: &Project) -> Result<Vec<UnitInput>, PipelineError> {
    match project {
        Project::Dir(dir) => {
            let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| PipelineError::Io(format!("cannot read {}: {e}", dir.display())))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "c"))
                .collect();
            names.sort();
            names
                .into_iter()
                .map(|path| {
                    let source = std::fs::read_to_string(&path).map_err(|e| {
                        PipelineError::Io(format!("cannot read {}: {e}", path.display()))
                    })?;
                    let name = path.file_name().map_or_else(
                        || path.display().to_string(),
                        |n| n.to_string_lossy().into_owned(),
                    );
                    Ok(UnitInput { name, source })
                })
                .collect()
        }
        Project::Corpus { units, kloc, seed } => Ok((0..*units)
            .map(|i| UnitInput {
                name: format!("unit{i:03}"),
                source: sga_cgen::generate(&sga_cgen::GenConfig::sized(seed + i as u64, *kloc)),
            })
            .collect()),
    }
}

/// How a unit's artifacts were obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CacheStatus {
    Hit,
    Miss,
    Off,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Off => "off",
        }
    }
}

/// Runs the whole project and returns the JSON run report.
pub fn run(project: &Project, options: &PipelineOptions) -> Result<Json, PipelineError> {
    let wall = Instant::now();
    let timers = StageTimers::new();
    let jobs = options.jobs.max(1);

    let units = timers.time("load", || load_project(project))?;
    let cache =
        match &options.cache_dir {
            Some(dir) => Some(Cache::open(dir).map_err(|e| {
                PipelineError::Io(format!("cannot open cache {}: {e}", dir.display()))
            })?),
            None => None,
        };

    // Thread budget: units run concurrently; whatever head room is left
    // over goes to procedure-level parallelism inside each unit.
    let inner_jobs = (jobs / units.len().max(1)).max(1);
    // Both dependency options and the widening strategy shape the fixpoint,
    // so both are part of the cache key.
    let options_tag = format!("{:?}|{:?}", options.depgen, options.widening);

    let outcomes: Vec<Result<(u64, CacheStatus, UnitAnalysis), PipelineError>> =
        par::run_indexed(jobs, &units, |_, input| {
            let key = cache::unit_key(&input.source, &options_tag);
            if let Some(cached) = cache.as_ref().and_then(|c| c.load(&input.name, key)) {
                return Ok((key, CacheStatus::Hit, cached));
            }
            let program = timers
                .time("parse", || sga_cfront::parse(&input.source))
                .map_err(|e| PipelineError::Frontend {
                    unit: input.name.clone(),
                    message: e.to_string(),
                })?;
            let analysis = unit::analyze_unit(
                &program,
                inner_jobs,
                options.depgen,
                options.widening,
                &timers,
            );
            let status = match &cache {
                Some(c) => {
                    // A store failure only costs the next run its hit.
                    let _ = c.store(&input.name, key, &analysis);
                    CacheStatus::Miss
                }
                None => CacheStatus::Off,
            };
            Ok((key, status, analysis))
        });

    let mut units_json: Vec<Json> = Vec::with_capacity(units.len());
    let (mut procs, mut alarms, mut hits, mut misses) = (0usize, 0usize, 0usize, 0usize);
    for (input, outcome) in units.iter().zip(outcomes) {
        let (key, status, a) = outcome?;
        procs += a.procs.len();
        alarms += a.alarms.len();
        match status {
            CacheStatus::Hit => hits += a.procs.len(),
            CacheStatus::Miss => misses += a.procs.len(),
            CacheStatus::Off => {}
        }
        units_json.push(
            Json::obj()
                .with("name", input.name.as_str())
                .with("source_hash", format!("{key:016x}"))
                .with("procs", a.procs.len())
                .with("locs", a.num_locs)
                .with("dep_edges_raw", a.dep_edges_raw)
                .with("dep_edges", a.dep_edges)
                .with("iterations", a.iterations)
                .with("fingerprint", format!("{:016x}", a.fingerprint))
                .with("cache", status.as_str())
                .with(
                    "alarms",
                    a.alarms
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect::<Vec<_>>(),
                ),
        );
    }

    let mut opts_json = Json::obj()
        .with("engine", "sparse")
        .with("bypass", options.depgen.bypass)
        .with("widening", options.widening.strategy.name())
        .with("cache", options.cache_dir.is_some());
    if !options.canonical {
        opts_json.set("jobs", jobs);
    }

    let looked_up = hits + misses;
    let totals = Json::obj()
        .with("units", units.len())
        .with("procs", procs)
        .with("alarms", alarms)
        .with("cache_hits", hits)
        .with("cache_misses", misses)
        .with(
            "hit_rate",
            if looked_up == 0 {
                0.0
            } else {
                hits as f64 / looked_up as f64
            },
        );

    let mut report = Json::obj()
        .with("schema", REPORT_SCHEMA)
        .with("tool", "sga-pipeline")
        .with("options", opts_json)
        .with("units", units_json)
        .with("totals", totals);

    if !options.canonical {
        let mut timing = Json::obj();
        for (stage, d) in timers.snapshot() {
            timing.set(&stage, d.as_secs_f64() * 1000.0);
        }
        timing.set("wall", wall.elapsed().as_secs_f64() * 1000.0);
        report.set("timing_ms", timing);
    }
    Ok(report)
}
