//! `sga-pipeline` — a parallel, cache-aware batch analysis driver.
//!
//! The single-file `sga` analyzer runs one translation unit end to end.
//! This crate drives the same sparse analysis over a *project* — a
//! directory of C files, or a generated corpus — with three additions:
//!
//! 1. **Per-procedure scheduling.** Each unit's analysis is staged over the
//!    public per-procedure APIs of `sga-core` (def/use passes, dependency
//!    segments) and scheduled onto scoped worker threads; the def/use
//!    summary pass runs bottom-up over the call graph's SCC condensation,
//!    level by level. Units themselves also run concurrently. See [`unit`].
//! 2. **Content-hash caching.** Per-procedure callee-access summaries and
//!    dependency segments (plus the unit's alarms and fixpoint fingerprint)
//!    are persisted to an on-disk cache keyed by a hash of the unit's
//!    source and the analysis options; an unchanged unit is never
//!    re-analyzed. See [`cache`].
//! 3. **Machine-readable reports.** Every run produces a deterministic JSON
//!    report (per-unit alarms and statistics, cache hit rate, per-stage
//!    wall time) consumed by `sga analyze` and the benchmark harness.
//!
//! Determinism is a hard invariant: every parallel stage merges results in
//! input order ([`par::run_indexed`]), so the report — timings aside — is
//! byte-identical for any `--jobs` value. The `canonical` option drops the
//! timing and job-count fields, making the *entire* report byte-comparable.
//!
//! The driver is also **fault-tolerant**: a panicking unit is isolated with
//! `catch_unwind` and recorded as a `crashed` outcome while the rest of the
//! batch completes (`keep_going`, the default), fixpoints run under an
//! optional [`sga_core::budget::Budget`] and degrade soundly instead of
//! running away, and the cache self-heals from damaged entries (see
//! [`cache`]). The [`fault`] module injects all of these failure modes
//! deterministically for testing.
//!
//! Batch runs are **durable** and **checkable**:
//!
//! * Each completed unit is committed to a write-ahead [`journal`] before
//!   its cache store; `resume` replays those records so a run killed by
//!   anything — OOM, SIGKILL, a CI timeout — restarts where it stopped and
//!   still produces a byte-identical report.
//! * SIGINT/SIGTERM (see [`interrupt`]) drain in-flight workers, skip
//!   unclaimed units, and flush a partial report marked `interrupted`.
//! * `validate` runs the independent post-fixpoint oracle of
//!   [`sga_core::validate`] over every unit (including cache hits, which are
//!   cross-checked against a recomputation); a violated contract becomes the
//!   `invalid` outcome, which is never cached.

pub mod cache;
pub mod fault;
pub mod interrupt;
pub mod journal;
pub mod par;
pub mod unit;
pub mod worker;

#[cfg(test)]
mod testfix;

pub use cache::Cache;
pub use fault::FaultPlan;
pub use journal::Journal;
pub use unit::{analyze_unit, analyze_unit_traced, ProcArtifact, UnitAnalysis, UnitInternals};
pub use worker::IsolationMode;

use journal::JournalRecord;
use sga_core::budget::{Budget, WorkerLimits};
use sga_core::depgen::DepGenOptions;
use sga_core::depstore::DepBackend;
use sga_core::interval::AnalyzeOptions;
use sga_core::triage::TriageMode;
use sga_core::validate::{self, CheckKind, UnitValidation, ValidationInputs};
use sga_core::widening::WideningConfig;
use sga_utils::stats::StageTimers;
use sga_utils::Json;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Report schema version (`"schema"` field of the emitted JSON).
///
/// v5: discharge records carry a `method` (`octagon` | `path_infeasible`;
/// absent in older reports means `octagon`) with path discharges' proving
/// packs naming the dominating guard chain; totals grow `discharged_path`;
/// the options block grows `triage` (the [`sga_core::triage::TriageMode`]
/// that ran).
///
/// v4: stringly per-unit `alarms` replaced by structured `diagnostics`
/// (the [`sga_diag::Diagnostic`] JSON shape: kind, control point, line,
/// subject, evidence, open/discharged status with the proving pack, and a
/// stable content fingerprint); units gain `triage_degraded`; totals grow
/// `alarms` (open diagnostics), `discharged`, and `definite`; runs under
/// `--baseline` carry a `baseline` block (`new`/`fixed`/`unchanged`/
/// `new_definite`) and every open diagnostic an individual `baseline`
/// classification.
///
/// v3: per-unit outcomes grow `invalid` (oracle violation) and `skipped`
/// (graceful shutdown before the unit was claimed); totals grow `invalid`,
/// `validated`, and `skipped`; a top-level `interrupted` flag is always
/// present; analyzed units may carry a `validation` block; non-canonical
/// reports may carry a `journal` block.
///
/// v2: per-unit `outcome` (`ok` | `degraded` | `crashed`, with `error` on
/// crashes), `degraded`/`crashed` totals, and a `cache_health` block in
/// non-canonical reports.
pub const REPORT_SCHEMA: u32 = 5;

/// What to analyze.
#[derive(Clone, Debug)]
pub enum Project {
    /// Every `*.c` file directly inside a directory, in name order.
    Dir(PathBuf),
    /// A deterministic generated corpus: `units` translation units of
    /// roughly `kloc` thousand lines each, seeded from `seed`.
    Corpus {
        units: usize,
        kloc: usize,
        seed: u64,
    },
}

/// One translation unit, loaded.
#[derive(Clone, Debug)]
pub struct UnitInput {
    /// Display name (file name, or `unitNNN` for corpus members).
    pub name: String,
    /// C source text.
    pub source: String,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Worker-thread budget shared between unit-level and procedure-level
    /// parallelism (1 = fully sequential, 0 = auto-detect via
    /// [`auto_jobs`]).
    pub jobs: usize,
    /// Cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Cap on cache entry files; a run ends with an LRU-by-access sweep
    /// evicting entries beyond it (hits refresh an entry's access time).
    /// `None` (the default) means unbounded.
    pub cache_max_entries: Option<usize>,
    /// Emit the canonical (timing-free, job-count-free) report, suitable
    /// for byte comparison across runs and `--jobs` values.
    pub canonical: bool,
    /// Dependency-generation options forwarded to the sparse analysis.
    pub depgen: DepGenOptions,
    /// Dependency representation the sparse solver iterates. Part of the
    /// cache key (no cross-backend hits) but not of the canonical report:
    /// backends are byte-equivalent by construction, and the CI backend
    /// gate compares canonical reports across them.
    pub dep_backend: DepBackend,
    /// Widening strategy forwarded to the fixpoint solver.
    pub widening: WideningConfig,
    /// Which triage layers run over each unit's possible alarms. Shapes
    /// the diagnostics, so it joins both the cache key and the rendered
    /// `source_hash` (unlike `dep_backend`, modes are *not* byte-equivalent
    /// — `both` discharges strictly more than `octagon`).
    pub triage: TriageMode,
    /// Where each unit's analysis runs: in-process worker threads (the
    /// default) or supervised re-exec'd worker processes that survive
    /// aborts, OOM, stack overflow, and hard stalls (see [`worker`]). Run
    /// mechanics like `jobs` and `dep_backend`: joins neither the cache key
    /// nor the canonical report.
    pub isolation: IsolationMode,
    /// Hard per-worker limits (`RLIMIT_AS` + wall-clock SIGKILL), applied
    /// only under [`IsolationMode::Process`].
    pub worker_limits: WorkerLimits,
    /// Record a crashing unit and keep analyzing the rest (`true`, the
    /// default), or abort the whole run on the first failure.
    pub keep_going: bool,
    /// Per-unit fixpoint work budget; exhaustion degrades soundly and marks
    /// the unit `degraded`.
    pub budget: Budget,
    /// Deterministic fault injection (testing only; empty in production).
    pub faults: FaultPlan,
    /// Run the post-fixpoint validation oracle over every unit; violations
    /// become the `invalid` outcome and are never cached.
    pub validate: bool,
    /// Replay the write-ahead journal: units a previous (killed or
    /// interrupted) run already committed are served from their journal
    /// records instead of being recomputed.
    pub resume: bool,
    /// Journal directory; defaults to `journal/` under the cache root.
    /// `None` with caching disabled means no journal (and no resume).
    pub journal_dir: Option<PathBuf>,
    /// Quarantined damaged cache entries to retain (newest first).
    pub quarantine_keep: usize,
    /// External graceful-shutdown flag (embedders; the CLI uses signal
    /// handlers via [`interrupt`] instead). Setting it drains the batch.
    pub stop: Option<Arc<AtomicBool>>,
    /// Previous run report to diff against: every open diagnostic of this
    /// run is classified `new`/`unchanged` against the baseline's open
    /// fingerprints, and the report gains a `baseline` block.
    pub baseline: Option<PathBuf>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            jobs: 1,
            cache_dir: None,
            cache_max_entries: None,
            canonical: false,
            depgen: DepGenOptions::default(),
            dep_backend: DepBackend::default(),
            widening: WideningConfig::default(),
            triage: TriageMode::default(),
            isolation: IsolationMode::default(),
            worker_limits: WorkerLimits::unbounded(),
            keep_going: true,
            budget: Budget::unbounded(),
            faults: FaultPlan::none(),
            validate: false,
            resume: false,
            journal_dir: None,
            quarantine_keep: cache::DEFAULT_QUARANTINE_KEEP,
            stop: None,
            baseline: None,
        }
    }
}

/// Why a run failed outright. With `keep_going` (the default) per-unit
/// failures are *recorded* in the report instead; only I/O errors — or any
/// unit failure under `fail-fast` — abort the run.
#[derive(Debug)]
pub enum PipelineError {
    /// Filesystem trouble (project loading or cache directory creation).
    Io(String),
    /// A unit did not parse (fail-fast mode only).
    Frontend {
        /// The offending unit.
        unit: String,
        /// Rendered frontend error.
        message: String,
    },
    /// A unit's worker panicked (fail-fast mode only).
    Crashed {
        /// The offending unit.
        unit: String,
        /// Rendered panic payload.
        message: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(m) => write!(f, "{m}"),
            PipelineError::Frontend { unit, message } => write!(f, "{unit}: {message}"),
            PipelineError::Crashed { unit, message } => {
                write!(f, "{unit}: analysis crashed: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The `--jobs 0` auto value: the machine's available parallelism (1 when
/// it cannot be determined).
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a requested job count: `0` means auto-detect ([`auto_jobs`]),
/// anything else is taken literally. The report stays byte-identical across
/// job counts either way, so auto-detection never costs determinism.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        auto_jobs()
    } else {
        jobs
    }
}

/// Loads a project's translation units in deterministic order.
pub fn load_project(project: &Project) -> Result<Vec<UnitInput>, PipelineError> {
    match project {
        Project::Dir(dir) => {
            let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| PipelineError::Io(format!("cannot read {}: {e}", dir.display())))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "c"))
                .collect();
            names.sort();
            names
                .into_iter()
                .map(|path| {
                    let source = std::fs::read_to_string(&path).map_err(|e| {
                        PipelineError::Io(format!("cannot read {}: {e}", path.display()))
                    })?;
                    let name = path.file_name().map_or_else(
                        || path.display().to_string(),
                        |n| n.to_string_lossy().into_owned(),
                    );
                    Ok(UnitInput { name, source })
                })
                .collect()
        }
        Project::Corpus { units, kloc, seed } => Ok((0..*units)
            .map(|i| UnitInput {
                name: format!("unit{i:03}"),
                source: sga_cgen::generate(&sga_cgen::GenConfig::sized(seed + i as u64, *kloc)),
            })
            .collect()),
    }
}

/// How a unit's artifacts were obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CacheStatus {
    Hit,
    Miss,
    Off,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Off => "off",
        }
    }
}

/// What one worker hands back: the unit's rendered report object, plus the
/// failure class (for fail-fast).
struct WorkerResult {
    json: Json,
    failure: Option<(journal::Failure, String)>,
}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Violations rendered per unit before the rest are summarized by count.
const MAX_RENDERED_VIOLATIONS: usize = 16;

/// The per-unit `validation` block: check sizes (so "passed" is visibly
/// distinct from "checked nothing") and rendered violations.
fn validation_json(v: &UnitValidation) -> Json {
    let all: Vec<String> = v.violations().map(|x| x.render()).collect();
    let shown: Vec<Json> = all
        .iter()
        .take(MAX_RENDERED_VIOLATIONS)
        .map(|s| Json::from(s.as_str()))
        .collect();
    let mut j = Json::obj()
        .with("interval_points", v.interval.points)
        .with("octagon_points", v.octagon.points)
        .with("lemma1_bindings", v.lemma1.bindings)
        .with("lemma1_equal", v.lemma1.equal)
        .with("lemma1_drift", v.lemma1.drift)
        .with("lemma1_skipped", v.lemma1.skipped)
        .with("defuse_points", v.defuse.points)
        .with("violations", shown);
    let hidden = all.len().saturating_sub(MAX_RENDERED_VIOLATIONS) + v.suppressed();
    if hidden > 0 {
        j.set("violations_suppressed", hidden);
    }
    j
}

/// The per-unit report object of an analyzed (possibly degraded or invalid)
/// unit.
fn render_analyzed(
    name: &str,
    key: u64,
    status: CacheStatus,
    a: &UnitAnalysis,
    validation: Option<&UnitValidation>,
) -> Json {
    let invalid = validation.is_some_and(|v| !v.is_valid());
    let outcome = if invalid {
        "invalid"
    } else if a.degraded {
        "degraded"
    } else {
        "ok"
    };
    let mut j = Json::obj()
        .with("name", name)
        .with("outcome", outcome)
        .with("source_hash", format!("{key:016x}"))
        .with("procs", a.procs.len())
        .with("locs", a.num_locs)
        .with("dep_edges_raw", a.dep_edges_raw)
        .with("dep_edges", a.dep_edges)
        .with("iterations", a.iterations)
        .with("fingerprint", format!("{:016x}", a.fingerprint))
        .with("cache", status.as_str())
        .with("triage_degraded", a.triage_degraded)
        .with(
            "diagnostics",
            a.diags
                .iter()
                .map(sga_diag::Diagnostic::to_json)
                .collect::<Vec<_>>(),
        );
    if let Some(v) = validation {
        j.set("validation", validation_json(v));
    }
    j
}

/// The per-unit report object of a crashed (frontend-rejected or panicked)
/// unit.
fn render_crashed(name: &str, key: u64, message: &str) -> Json {
    Json::obj()
        .with("name", name)
        .with("outcome", "crashed")
        .with("source_hash", format!("{key:016x}"))
        .with("error", message)
        .with("diagnostics", Vec::<Json>::new())
}

/// The per-unit report object of a unit a graceful shutdown skipped.
fn render_skipped(name: &str) -> Json {
    Json::obj()
        .with("name", name)
        .with("outcome", "skipped")
        .with("diagnostics", Vec::<Json>::new())
}

/// The `(fingerprint, open-and-definite)` pairs of every *open* diagnostic
/// in a report's `units` array, in report order. Discharged diagnostics
/// never participate in baseline matching: an alarm the octagon proved
/// impossible is not an outstanding finding on either side of the diff.
fn open_fingerprints(units: &[Json]) -> Vec<(u64, bool)> {
    let mut out = Vec::new();
    for u in units {
        for d in u.get("diagnostics").and_then(Json::as_arr).unwrap_or(&[]) {
            if d.get("status").and_then(Json::as_str) != Some("open") {
                continue;
            }
            if let Some(fp) = d
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            {
                let definite = d.get("definite").and_then(Json::as_bool) == Some(true);
                out.push((fp, definite));
            }
        }
    }
    out
}

/// Loads the baseline report at `path`, classifies this run's open
/// diagnostics against it by fingerprint (annotating each with a
/// `baseline` field), and returns the report's `baseline` block.
fn apply_baseline(path: &std::path::Path, units_json: &mut [Json]) -> Result<Json, PipelineError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PipelineError::Io(format!("cannot read baseline {}: {e}", path.display())))?;
    let old = Json::parse(&text).map_err(|e| {
        PipelineError::Io(format!(
            "baseline {} is not valid JSON: {e}",
            path.display()
        ))
    })?;
    let old_units = old.get("units").and_then(Json::as_arr).ok_or_else(|| {
        PipelineError::Io(format!(
            "baseline {} has no `units` array (not an sga-pipeline report?)",
            path.display()
        ))
    })?;
    let base: Vec<u64> = open_fingerprints(old_units)
        .into_iter()
        .map(|(fp, _)| fp)
        .collect();
    let current = open_fingerprints(units_json);
    let (classes, diff) = sga_diag::baseline::classify(&current, &base);

    let mut k = 0;
    for u in units_json.iter_mut() {
        let Json::Obj(fields) = u else { continue };
        let Some(Json::Arr(diags)) = fields
            .iter_mut()
            .find(|(key, _)| key == "diagnostics")
            .map(|(_, v)| v)
        else {
            continue;
        };
        for d in diags.iter_mut() {
            if d.get("status").and_then(Json::as_str) == Some("open") {
                d.set("baseline", classes[k]);
                k += 1;
            }
        }
    }
    debug_assert_eq!(k, classes.len());

    let hex = |fps: &[u64]| {
        fps.iter()
            .map(|fp| Json::from(format!("{fp:016x}")))
            .collect::<Vec<_>>()
    };
    Ok(Json::obj()
        .with("new", hex(&diff.new))
        .with("fixed", hex(&diff.fixed))
        .with("unchanged", diff.unchanged)
        .with("new_definite", diff.new_definite))
}

/// Shared per-worker context of [`process_unit`].
struct UnitCtx<'a> {
    options: &'a PipelineOptions,
    cache: Option<&'a Cache>,
    timers: &'a StageTimers,
    /// Procedure-level parallelism inside one unit.
    inner_jobs: usize,
}

/// What [`process_unit`] produced for one unit.
struct Processed {
    /// The rendered per-unit report object.
    json: Json,
    /// Failure class and message, when the unit crashed.
    failure: Option<(journal::Failure, String)>,
    /// The artifacts (`None` when the unit crashed).
    analysis: Option<Box<UnitAnalysis>>,
    /// The artifacts are fresh and cacheable (a miss that validated). The
    /// *caller* performs the store, so write-ahead ordering — journal
    /// record before cache store — stays in its hands.
    store: bool,
}

/// Analyzes one unit end to end — cache lookup, parse, fixpoint, optional
/// validation oracle, panic isolation — and renders its report object.
/// Shared by the batch driver ([`run`]) and the incremental daemon's
/// frontier re-analysis ([`analyze_units`]), so both produce byte-identical
/// per-unit objects from identical inputs.
fn process_unit(
    ctx: &UnitCtx,
    i: usize,
    input: &UnitInput,
    key: u64,
    render_key: u64,
    budget: &Budget,
) -> Processed {
    let options = ctx.options;
    let cache = ctx.cache;
    let timers = ctx.timers;

    // Process isolation: ship the unit to a supervised worker process (the
    // worker runs this same function in thread mode). Everything after —
    // journal ordering, cache store, report assembly — is isolation-blind.
    if options.isolation == IsolationMode::Process {
        return worker::run_unit_in_worker(ctx, i, input, key, render_key, budget);
    }

    type Analyzed = (CacheStatus, Box<UnitAnalysis>, Option<UnitValidation>);
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<Analyzed, String> {
        if options.faults.should_panic(i) {
            panic!("injected fault: worker panic in {}", input.name);
        }
        let mut cached_hit: Option<Box<UnitAnalysis>> = None;
        if let Some(c) = cache {
            if let cache::LoadOutcome::Hit(found) = c.load(&input.name, key) {
                if options.validate {
                    // Under the oracle a hit is a *claim* — held back and
                    // cross-checked against a recomputation below. The
                    // envelope checksum cannot catch an entry whose content
                    // was wrong before it was sealed.
                    cached_hit = Some(found);
                } else {
                    return Ok((CacheStatus::Hit, found, None));
                }
            }
        }
        let program = timers
            .time("parse", || sga_cfront::parse(&input.source))
            .map_err(|e| e.to_string())?;
        if options.validate {
            let (analysis, internals) = unit::analyze_unit_traced(
                &program,
                ctx.inner_jobs,
                options.depgen,
                options.dep_backend,
                options.widening,
                options.triage,
                budget,
                timers,
            );
            let mut validation = timers.time("validate", || {
                validate::validate_unit(
                    &program,
                    &ValidationInputs {
                        pre: &internals.pre,
                        du: &internals.du,
                        deps: &internals.deps,
                        sparse_values: &internals.sparse_values,
                        degraded: internals.degraded,
                    },
                    AnalyzeOptions {
                        depgen: options.depgen,
                        dep_backend: options.dep_backend,
                        widening: options.widening,
                        budget: *budget,
                        ..AnalyzeOptions::default()
                    },
                )
            });
            let status = match cached_hit {
                Some(cached) if *cached == analysis => CacheStatus::Hit,
                Some(cached) => {
                    validation.add_extra(
                        CheckKind::CacheMismatch,
                        format!(
                            "cached entry (fingerprint {:016x}) disagrees with \
                             recomputation (fingerprint {:016x})",
                            cached.fingerprint, analysis.fingerprint,
                        ),
                    );
                    if let Some(c) = cache {
                        c.quarantine_entry(&input.name, key);
                    }
                    CacheStatus::Miss
                }
                None if cache.is_some() => CacheStatus::Miss,
                None => CacheStatus::Off,
            };
            Ok((status, Box::new(analysis), Some(validation)))
        } else {
            let analysis = unit::analyze_unit(
                &program,
                ctx.inner_jobs,
                options.depgen,
                options.dep_backend,
                options.widening,
                options.triage,
                budget,
                timers,
            );
            let status = if cache.is_some() {
                CacheStatus::Miss
            } else {
                CacheStatus::Off
            };
            Ok((status, Box::new(analysis), None))
        }
    }));

    match caught {
        Ok(Ok((status, a, validation))) => {
            let invalid = validation.as_ref().is_some_and(|v| !v.is_valid());
            let json = render_analyzed(&input.name, render_key, status, &a, validation.as_ref());
            Processed {
                json,
                failure: None,
                // Invalid results are never cached; hits already are.
                store: status == CacheStatus::Miss && !invalid,
                analysis: Some(a),
            }
        }
        Ok(Err(message)) => Processed {
            json: render_crashed(&input.name, render_key, &message),
            failure: Some((journal::Failure::Frontend, message)),
            analysis: None,
            store: false,
        },
        Err(payload) => {
            let message = panic_message(payload);
            Processed {
                json: render_crashed(&input.name, render_key, &message),
                failure: Some((journal::Failure::Panic, message)),
                analysis: None,
                store: false,
            }
        }
    }
}

/// The options part of every unit cache key: dependency options, widening,
/// the triage mode, and the dependency backend. Keeping the backend in the
/// key means a CSR run never serves a BDD run's entries (or vice versa) —
/// equivalence is a *gated invariant*, not an assumption the cache is
/// allowed to make. The triage mode joins for the opposite reason: modes
/// genuinely change the stored diagnostics, so an `--triage octagon` entry
/// (or journal record keyed off this tag) must never be served to an
/// `--triage both` run.
fn base_cache_tag(options: &PipelineOptions) -> String {
    format!(
        "{:?}|{:?}|{}|{}",
        options.depgen,
        options.widening,
        options.triage.name(),
        options.dep_backend
    )
}

/// The options part of the *rendered* `source_hash`: only knobs that shape
/// the analysis result (dependency options, widening, triage mode; the
/// budget joins per unit). The dependency backend is deliberately absent —
/// backends must produce byte-identical canonical reports, so a
/// run-mechanics knob may split the cache key but never the rendered hash.
fn semantic_tag(options: &PipelineOptions) -> String {
    format!(
        "{:?}|{:?}|{}",
        options.depgen,
        options.widening,
        options.triage.name()
    )
}

/// The full per-unit cache key under `options` for a unit with this
/// `source`: the batch driver's key exactly — source × dependency options ×
/// widening × backend × budget — so an embedder that needs to know whether
/// a stored artifact still describes a source (the serve daemon's round
/// journal) asks the same question the cache does. Per-unit fault budget
/// overrides are a batch-driver concern and are not applied here.
pub fn unit_cache_key(options: &PipelineOptions, source: &str) -> u64 {
    let tag = format!("{}|{}", base_cache_tag(options), options.budget.cache_tag());
    cache::unit_key(source, &tag)
}

/// One unit's result from [`analyze_units`].
pub struct UnitOutcome {
    /// The rendered per-unit report object — the same shape as an entry of
    /// a [`run`] report's `units` array.
    pub json: Json,
    /// The analysis artifacts; `None` when the unit crashed.
    pub analysis: Option<Box<UnitAnalysis>>,
    /// The rendered frontend error or panic payload, when the unit crashed.
    pub failure: Option<String>,
}

/// Analyzes an arbitrary set of units under `options`, sharing `cache` when
/// given — the incremental daemon's entry point for re-analyzing just the
/// invalidated frontier of a project. Unlike [`run`] there is no journal
/// and no report assembly: the caller gets each unit's rendered object plus
/// its in-memory artifacts and maintains project state itself (see
/// [`assemble_report`]). Determinism matches [`run`]: results come back in
/// input order, byte-identical for any `options.jobs`, and cache keys are
/// computed identically, so the daemon and a cold batch run share entries.
pub fn analyze_units(
    units: &[UnitInput],
    options: &PipelineOptions,
    cache: Option<&Cache>,
) -> Vec<UnitOutcome> {
    let timers = StageTimers::new();
    let jobs = effective_jobs(options.jobs);
    let ctx = UnitCtx {
        options,
        cache,
        timers: &timers,
        inner_jobs: (jobs / units.len().max(1)).max(1),
    };
    let base_tag = base_cache_tag(options);
    let sem_tag = semantic_tag(options);
    let prev_hook = if options.keep_going {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Some(hook)
    } else {
        None
    };
    let out = par::run_indexed(jobs, units, |i, input| {
        let budget = options.faults.budget_for(i).unwrap_or(options.budget);
        let options_tag = format!("{base_tag}|{}", budget.cache_tag());
        let key = cache::unit_key(&input.source, &options_tag);
        let render_key =
            cache::unit_key(&input.source, &format!("{sem_tag}|{}", budget.cache_tag()));
        let p = process_unit(&ctx, i, input, key, render_key, &budget);
        if p.store {
            if let (Some(c), Some(a)) = (cache, &p.analysis) {
                let _ = c.store(&input.name, key, a);
            }
        }
        UnitOutcome {
            json: p.json,
            analysis: p.analysis,
            failure: p.failure.map(|(_, message)| message),
        }
    });
    if let Some(hook) = prev_hook {
        std::panic::set_hook(hook);
    }
    out
}

/// Assembles the run report from per-unit report objects — the same
/// aggregation [`run`] uses, exposed so the incremental daemon can rebuild
/// the whole-project report from accumulated per-unit state. `units_json`
/// must hold one entry per unit, in project order (with the `skipped`
/// outcome for units a shutdown drained). Produces the canonical fields
/// only (`schema` through `interrupted`, plus `baseline` when
/// `options.baseline` is set); [`run`] appends the non-canonical extras
/// (journal, cache health, timing) itself.
pub fn assemble_report(
    mut units_json: Vec<Json>,
    options: &PipelineOptions,
) -> Result<Json, PipelineError> {
    let (mut procs, mut alarms, mut hits, mut misses) = (0usize, 0usize, 0usize, 0usize);
    let (mut discharged, mut discharged_path, mut definite) = (0usize, 0usize, 0usize);
    let (mut degraded_units, mut crashed_units, mut invalid_units) = (0usize, 0usize, 0usize);
    let (mut validated_units, mut skipped_units) = (0usize, 0usize);
    // Totals aggregate over the rendered objects (rather than over
    // in-memory analysis values) so replayed and daemon-accumulated units
    // count exactly like the run that produced them.
    for j in &units_json {
        let outcome = j.get("outcome").and_then(Json::as_str).unwrap_or("");
        let nprocs = j.get("procs").and_then(Json::as_u64).unwrap_or(0) as usize;
        procs += nprocs;
        for d in j.get("diagnostics").and_then(Json::as_arr).unwrap_or(&[]) {
            match d.get("status").and_then(Json::as_str) {
                Some("open") => {
                    alarms += 1;
                    if d.get("definite").and_then(Json::as_bool) == Some(true) {
                        definite += 1;
                    }
                }
                Some("discharged") => {
                    discharged += 1;
                    let method = d
                        .get("discharge")
                        .and_then(|x| x.get("method"))
                        .and_then(Json::as_str);
                    if method == Some("path_infeasible") {
                        discharged_path += 1;
                    }
                }
                _ => {}
            }
        }
        match outcome {
            "degraded" => degraded_units += 1,
            "crashed" => crashed_units += 1,
            "invalid" => invalid_units += 1,
            "skipped" => skipped_units += 1,
            _ => {}
        }
        if j.get("validation").is_some() && outcome != "invalid" {
            validated_units += 1;
        }
        match j.get("cache").and_then(Json::as_str) {
            Some("hit") => hits += nprocs,
            Some("miss") => misses += nprocs,
            _ => {}
        }
    }
    let interrupted = skipped_units > 0;

    // Run-over-run baseline: classify this run's open diagnostics against
    // the previous report's open fingerprints (multiset match), annotating
    // each one in place.
    let baseline_json = match &options.baseline {
        Some(path) => Some(apply_baseline(path, &mut units_json)?),
        None => None,
    };

    let mut opts_json = Json::obj()
        .with("engine", "sparse")
        .with("bypass", options.depgen.bypass)
        .with("widening", options.widening.strategy.name())
        .with("triage", options.triage.name())
        .with("cache", options.cache_dir.is_some())
        .with("validate", options.validate);
    if !options.canonical {
        opts_json.set("jobs", effective_jobs(options.jobs));
        // Like `jobs`: run mechanics, not semantics. The backends are
        // byte-equivalent (backend-gate enforces it), so the canonical
        // report must not mention which one ran.
        opts_json.set("dep_backend", options.dep_backend.as_str());
        // Same rule again: thread and process runs are byte-equivalent
        // (isolation-gate enforces it), so only the non-canonical report
        // says where the units ran.
        opts_json.set("isolation", options.isolation.as_str());
    }

    let looked_up = hits + misses;
    let totals = Json::obj()
        .with("units", units_json.len())
        .with("procs", procs)
        .with("alarms", alarms)
        .with("discharged", discharged)
        .with("discharged_path", discharged_path)
        .with("definite", definite)
        .with("degraded", degraded_units)
        .with("crashed", crashed_units)
        .with("invalid", invalid_units)
        .with("validated", validated_units)
        .with("skipped", skipped_units)
        .with("cache_hits", hits)
        .with("cache_misses", misses)
        .with(
            "hit_rate",
            if looked_up == 0 {
                0.0
            } else {
                hits as f64 / looked_up as f64
            },
        );

    let mut report = Json::obj()
        .with("schema", REPORT_SCHEMA)
        .with("tool", "sga-pipeline")
        .with("options", opts_json)
        .with("units", units_json)
        .with("totals", totals)
        .with("interrupted", interrupted);
    if let Some(b) = baseline_json {
        report.set("baseline", b);
    }
    Ok(report)
}

/// Runs the whole project and returns the JSON run report.
pub fn run(project: &Project, options: &PipelineOptions) -> Result<Json, PipelineError> {
    let wall = Instant::now();
    let timers = StageTimers::new();
    let jobs = effective_jobs(options.jobs);

    let units = timers.time("load", || load_project(project))?;
    let cache = match &options.cache_dir {
        Some(dir) => {
            let mut c = Cache::open(dir).map_err(|e| {
                PipelineError::Io(format!("cannot open cache {}: {e}", dir.display()))
            })?;
            c.set_quarantine_keep(options.quarantine_keep);
            c.set_max_entries(options.cache_max_entries);
            Some(c)
        }
        None => None,
    };

    // The write-ahead journal lives under the cache root unless placed
    // explicitly; with neither there is nothing durable to resume from.
    let journal_dir = options
        .journal_dir
        .clone()
        .or_else(|| options.cache_dir.as_ref().map(|d| d.join("journal")));
    let journal = match &journal_dir {
        Some(dir) => Some(Journal::open(dir).map_err(|e| {
            PipelineError::Io(format!("cannot open journal {}: {e}", dir.display()))
        })?),
        None => None,
    };
    let replay: BTreeMap<usize, JournalRecord> = if options.resume {
        match &journal {
            Some(j) => j.load(),
            None => {
                return Err(PipelineError::Io(
                    "resume needs a journal: enable the cache or set a journal directory".into(),
                ))
            }
        }
    } else {
        // A fresh run owns the journal: whatever a previous run left behind
        // (it completed, or nobody resumed it) is stale now.
        if let Some(j) = &journal {
            j.clear().map_err(|e| {
                PipelineError::Io(format!("cannot clear journal {}: {e}", j.dir().display()))
            })?;
        }
        BTreeMap::new()
    };

    // Thread budget: units run concurrently; whatever head room is left
    // over goes to procedure-level parallelism inside each unit.
    let inner_jobs = (jobs / units.len().max(1)).max(1);
    // Dependency options, the widening strategy, the dependency backend,
    // and the analysis budget all shape the fixpoint run, so all four are
    // part of the cache key. The budget joins per unit (below) because
    // fault injection can override it for a single unit without disturbing
    // its neighbors' keys.
    let base_tag = base_cache_tag(options);
    let sem_tag = semantic_tag(options);

    // With keep_going, worker panics are expected, caught, and recorded in
    // the report — silence the default hook's per-panic backtrace spew for
    // the duration of the unit loop so one bad unit doesn't flood stderr.
    let prev_hook = if options.keep_going {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Some(hook)
    } else {
        None
    };
    let replayed_count = AtomicUsize::new(0);
    let recorded_count = AtomicUsize::new(0);
    // Containment counters are process-wide and cumulative; the report
    // carries this run's movement.
    let isolation_before = worker::stats();
    // Set by the `stop@I` fault; real shutdown requests arrive through
    // `interrupt` (signals) or `options.stop` (embedders). Any of the three
    // drains the batch: in-flight units finish, unclaimed units are skipped.
    let fault_stop = AtomicBool::new(false);
    let stop_requested = || {
        fault_stop.load(Ordering::Relaxed)
            || interrupt::requested()
            || options
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
    };

    let ctx = UnitCtx {
        options,
        cache: cache.as_ref(),
        timers: &timers,
        inner_jobs,
    };
    let results: Vec<Option<WorkerResult>> =
        par::run_indexed_interruptible(jobs, &units, stop_requested, |i, input| {
            // An injected budget changes the unit's analysis semantics, so it
            // participates in that unit's key — a faulted run never hits an
            // entry the fault-free run stored, and vice versa.
            let budget = options.faults.budget_for(i).unwrap_or(options.budget);
            let options_tag = format!("{base_tag}|{}", budget.cache_tag());
            let key = cache::unit_key(&input.source, &options_tag);
            let render_key =
                cache::unit_key(&input.source, &format!("{sem_tag}|{}", budget.cache_tag()));

            // A journaled unit is already committed: replay its record
            // verbatim — before fault injection, so a fault that killed the
            // original run cannot re-fire on the unit it already finished.
            if let Some(rec) = replay.get(&i) {
                if rec.name == input.name && rec.key == key {
                    replayed_count.fetch_add(1, Ordering::Relaxed);
                    let failure = rec.failure.map(|f| {
                        let message = rec
                            .unit
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string();
                        (f, message)
                    });
                    return WorkerResult {
                        json: rec.unit.clone(),
                        failure,
                    };
                }
            }

            // The process-killing faults (stall-then-SIGKILL windows, abort,
            // OOM, stack overflow, non-cooperative spin) execute wherever
            // the unit executes: here in thread mode — taking the parent
            // down, which is precisely the limitation `--isolation process`
            // exists to remove — or inside the worker process, delegated
            // via its request.
            if options.isolation == IsolationMode::Thread {
                if let Some(ms) = options.faults.stall_ms(i) {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                if options.faults.should_abort(i) {
                    // A hard crash, not a panic: nothing unwinds, nothing
                    // flushes. Exactly what an OOM kill looks like to the
                    // next run — which is the point.
                    std::process::abort();
                }
                if let Some(mb) = options.faults.oom_mb(i) {
                    fault::trigger_oom(mb);
                }
                if options.faults.should_stackoverflow(i) {
                    fault::trigger_stackoverflow();
                }
                if let Some(ms) = options.faults.spin_ms(i) {
                    fault::trigger_spin(ms);
                }
            }
            if options.faults.should_stop(i) {
                fault_stop.store(true, Ordering::Relaxed);
            }

            let p = process_unit(&ctx, i, input, key, render_key, &budget);

            if let Some(j) = &journal {
                // Write-ahead ordering: the journal record commits *before*
                // the cache store. A crash between the two re-runs the unit
                // from the journal — never from a cache entry the journal
                // knows nothing about, which would flip the unit's recorded
                // miss into a hit on resume and break byte-identity. A
                // failed record only costs the resume a recompute.
                let rec = JournalRecord {
                    index: i,
                    name: input.name.clone(),
                    key,
                    failure: p.failure.as_ref().map(|(f, _)| *f),
                    unit: p.json.clone(),
                };
                if j.record(&rec).is_ok() {
                    recorded_count.fetch_add(1, Ordering::Relaxed);
                }
            }
            if p.store {
                if let (Some(c), Some(a)) = (&cache, &p.analysis) {
                    // A store failure is retried inside the cache and, if it
                    // sticks, counted in cache health; it only costs the
                    // next run its hit.
                    let _ = c.store_injected(&input.name, key, a, options.faults.io_fail_count(i));
                    if let Some(mode) = options.faults.corruption_for(i) {
                        let _ = c.corrupt_entry(&input.name, key, mode);
                    }
                }
            }
            WorkerResult {
                json: p.json,
                failure: p.failure,
            }
        });
    if let Some(hook) = prev_hook {
        std::panic::set_hook(hook);
    }

    if !options.keep_going {
        for (input, slot) in units.iter().zip(&results) {
            if let Some(WorkerResult {
                failure: Some((kind, message)),
                ..
            }) = slot
            {
                return Err(match kind {
                    journal::Failure::Frontend => PipelineError::Frontend {
                        unit: input.name.clone(),
                        message: message.clone(),
                    },
                    journal::Failure::Panic => PipelineError::Crashed {
                        unit: input.name.clone(),
                        message: message.clone(),
                    },
                });
            }
        }
    }

    let units_json: Vec<Json> = units
        .iter()
        .zip(results)
        .map(|(input, slot)| match slot {
            Some(w) => w.json,
            None => render_skipped(&input.name),
        })
        .collect();

    // All stores are committed; evict beyond the entry cap (if any),
    // least-recently-accessed first.
    if let Some(c) = &cache {
        c.sweep_lru();
    }

    let mut report = assemble_report(units_json, options)?;
    let interrupted = report.get("interrupted").and_then(Json::as_bool) == Some(true);

    // A completed run retires its journal; an interrupted one leaves it in
    // place for `resume`. (Error paths above return before this point, so
    // fail-fast aborts stay resumable too.)
    if !interrupted {
        if let Some(j) = &journal {
            let _ = j.clear();
        }
    }

    if !options.canonical {
        // Replay/record activity depends on what a *previous* run left
        // behind, so like cache health it stays out of the canonical
        // report — resume byte-identity is over the canonical fields.
        if journal.is_some() {
            report.set(
                "journal",
                Json::obj()
                    .with("replayed", replayed_count.load(Ordering::Relaxed))
                    .with("recorded", recorded_count.load(Ordering::Relaxed)),
            );
        }
        // Self-healing activity varies with prior on-disk state (a corrupt
        // entry quarantined here was stored by an earlier run), so it lives
        // with the other run-specific fields, outside the canonical report.
        if let Some(c) = &cache {
            let health = c.health();
            report.set(
                "cache_health",
                Json::obj()
                    .with("quarantined", health.quarantined)
                    .with("io_retries", health.io_retries)
                    .with("store_errors", health.store_errors)
                    .with("evicted", health.evicted),
            );
        }
        // Containment activity (kills, retries, OOM deaths, supervisor
        // SIGKILLs) depends on injected faults and machine state, never on
        // analysis semantics — non-canonical, like cache health.
        if options.isolation == IsolationMode::Process {
            let moved = worker::stats().since(&isolation_before);
            report.set(
                "isolation",
                Json::obj()
                    .with("mode", options.isolation.as_str())
                    .with("killed", moved.killed)
                    .with("retried", moved.retried)
                    .with("oom", moved.oom)
                    .with("stalls", moved.stalls),
            );
        }
        let mut timing = Json::obj();
        for (stage, d) in timers.snapshot() {
            timing.set(&stage, d.as_secs_f64() * 1000.0);
        }
        timing.set("wall", wall.elapsed().as_secs_f64() * 1000.0);
        report.set("timing_ms", timing);
    }
    Ok(report)
}

#[cfg(test)]
mod tag_tests {
    use super::*;
    use sga_core::depstore::DepBackend;

    /// The dependency backend splits the cache key (a CSR run must never
    /// serve a BDD run's entries) without splitting the rendered
    /// `source_hash` (canonical reports must be byte-identical across
    /// backends).
    #[test]
    fn backend_splits_cache_key_but_not_rendered_hash() {
        let csr = PipelineOptions {
            dep_backend: DepBackend::Csr,
            ..PipelineOptions::default()
        };
        let bdd = PipelineOptions {
            dep_backend: DepBackend::Bdd,
            ..PipelineOptions::default()
        };
        assert_ne!(base_cache_tag(&csr), base_cache_tag(&bdd));
        assert_eq!(semantic_tag(&csr), semantic_tag(&bdd));

        let source = "int main() { return 0; }";
        assert_ne!(
            cache::unit_key(source, &base_cache_tag(&csr)),
            cache::unit_key(source, &base_cache_tag(&bdd)),
        );
        assert_eq!(
            cache::unit_key(source, &semantic_tag(&csr)),
            cache::unit_key(source, &semantic_tag(&bdd)),
        );
    }

    /// The triage mode changes the diagnostics themselves (`both`
    /// discharges strictly more than `octagon`), so unlike the backend it
    /// splits the cache key *and* the rendered `source_hash`: a stale
    /// journal or cache entry from another mode can never replay.
    #[test]
    fn triage_mode_splits_cache_key_and_rendered_hash() {
        use sga_core::triage::TriageMode;
        let octagon = PipelineOptions {
            triage: TriageMode::Octagon,
            ..PipelineOptions::default()
        };
        let both = PipelineOptions {
            triage: TriageMode::Both,
            ..PipelineOptions::default()
        };
        assert_ne!(base_cache_tag(&octagon), base_cache_tag(&both));
        assert_ne!(semantic_tag(&octagon), semantic_tag(&both));
        let source = "int main() { return 0; }";
        assert_ne!(
            unit_cache_key(&octagon, source),
            unit_cache_key(&both, source)
        );
    }

    /// Isolation is pure run mechanics: it splits *neither* the cache key
    /// (thread and process runs share entries) nor the canonical report —
    /// only the non-canonical options block says where the units ran.
    #[test]
    fn isolation_splits_neither_cache_key_nor_canonical_report() {
        let thread = PipelineOptions::default();
        let process = PipelineOptions {
            isolation: IsolationMode::Process,
            ..PipelineOptions::default()
        };
        assert_eq!(base_cache_tag(&thread), base_cache_tag(&process));
        assert_eq!(semantic_tag(&thread), semantic_tag(&process));
        let source = "int main() { return 0; }";
        assert_eq!(
            unit_cache_key(&thread, source),
            unit_cache_key(&process, source)
        );

        let canonical = assemble_report(
            Vec::new(),
            &PipelineOptions {
                canonical: true,
                isolation: IsolationMode::Process,
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert!(canonical.get("options").unwrap().get("isolation").is_none());
        let full = assemble_report(Vec::new(), &process).unwrap();
        assert_eq!(
            full.get("options")
                .unwrap()
                .get("isolation")
                .and_then(Json::as_str),
            Some("process")
        );
    }
}
