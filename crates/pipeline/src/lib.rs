//! `sga-pipeline` — a parallel, cache-aware batch analysis driver.
//!
//! The single-file `sga` analyzer runs one translation unit end to end.
//! This crate drives the same sparse analysis over a *project* — a
//! directory of C files, or a generated corpus — with three additions:
//!
//! 1. **Per-procedure scheduling.** Each unit's analysis is staged over the
//!    public per-procedure APIs of `sga-core` (def/use passes, dependency
//!    segments) and scheduled onto scoped worker threads; the def/use
//!    summary pass runs bottom-up over the call graph's SCC condensation,
//!    level by level. Units themselves also run concurrently. See [`unit`].
//! 2. **Content-hash caching.** Per-procedure callee-access summaries and
//!    dependency segments (plus the unit's alarms and fixpoint fingerprint)
//!    are persisted to an on-disk cache keyed by a hash of the unit's
//!    source and the analysis options; an unchanged unit is never
//!    re-analyzed. See [`cache`].
//! 3. **Machine-readable reports.** Every run produces a deterministic JSON
//!    report (per-unit alarms and statistics, cache hit rate, per-stage
//!    wall time) consumed by `sga analyze` and the benchmark harness.
//!
//! Determinism is a hard invariant: every parallel stage merges results in
//! input order ([`par::run_indexed`]), so the report — timings aside — is
//! byte-identical for any `--jobs` value. The `canonical` option drops the
//! timing and job-count fields, making the *entire* report byte-comparable.
//!
//! The driver is also **fault-tolerant**: a panicking unit is isolated with
//! `catch_unwind` and recorded as a `crashed` outcome while the rest of the
//! batch completes (`keep_going`, the default), fixpoints run under an
//! optional [`sga_core::budget::Budget`] and degrade soundly instead of
//! running away, and the cache self-heals from damaged entries (see
//! [`cache`]). The [`fault`] module injects all of these failure modes
//! deterministically for testing.

pub mod cache;
pub mod fault;
pub mod par;
pub mod unit;

pub use cache::Cache;
pub use fault::FaultPlan;
pub use unit::{analyze_unit, ProcArtifact, UnitAnalysis};

use sga_core::budget::Budget;
use sga_core::depgen::DepGenOptions;
use sga_core::widening::WideningConfig;
use sga_utils::stats::StageTimers;
use sga_utils::Json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// Report schema version (`"schema"` field of the emitted JSON).
///
/// v2: per-unit `outcome` (`ok` | `degraded` | `crashed`, with `error` on
/// crashes), `degraded`/`crashed` totals, and a `cache_health` block in
/// non-canonical reports.
pub const REPORT_SCHEMA: u32 = 2;

/// What to analyze.
#[derive(Clone, Debug)]
pub enum Project {
    /// Every `*.c` file directly inside a directory, in name order.
    Dir(PathBuf),
    /// A deterministic generated corpus: `units` translation units of
    /// roughly `kloc` thousand lines each, seeded from `seed`.
    Corpus {
        units: usize,
        kloc: usize,
        seed: u64,
    },
}

/// One translation unit, loaded.
#[derive(Clone, Debug)]
pub struct UnitInput {
    /// Display name (file name, or `unitNNN` for corpus members).
    pub name: String,
    /// C source text.
    pub source: String,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Worker-thread budget shared between unit-level and procedure-level
    /// parallelism (1 = fully sequential).
    pub jobs: usize,
    /// Cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Emit the canonical (timing-free, job-count-free) report, suitable
    /// for byte comparison across runs and `--jobs` values.
    pub canonical: bool,
    /// Dependency-generation options forwarded to the sparse analysis.
    pub depgen: DepGenOptions,
    /// Widening strategy forwarded to the fixpoint solver.
    pub widening: WideningConfig,
    /// Record a crashing unit and keep analyzing the rest (`true`, the
    /// default), or abort the whole run on the first failure.
    pub keep_going: bool,
    /// Per-unit fixpoint work budget; exhaustion degrades soundly and marks
    /// the unit `degraded`.
    pub budget: Budget,
    /// Deterministic fault injection (testing only; empty in production).
    pub faults: FaultPlan,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            jobs: 1,
            cache_dir: None,
            canonical: false,
            depgen: DepGenOptions::default(),
            widening: WideningConfig::default(),
            keep_going: true,
            budget: Budget::unbounded(),
            faults: FaultPlan::none(),
        }
    }
}

/// Why a run failed outright. With `keep_going` (the default) per-unit
/// failures are *recorded* in the report instead; only I/O errors — or any
/// unit failure under `fail-fast` — abort the run.
#[derive(Debug)]
pub enum PipelineError {
    /// Filesystem trouble (project loading or cache directory creation).
    Io(String),
    /// A unit did not parse (fail-fast mode only).
    Frontend {
        /// The offending unit.
        unit: String,
        /// Rendered frontend error.
        message: String,
    },
    /// A unit's worker panicked (fail-fast mode only).
    Crashed {
        /// The offending unit.
        unit: String,
        /// Rendered panic payload.
        message: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(m) => write!(f, "{m}"),
            PipelineError::Frontend { unit, message } => write!(f, "{unit}: {message}"),
            PipelineError::Crashed { unit, message } => {
                write!(f, "{unit}: analysis crashed: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Loads a project's translation units in deterministic order.
pub fn load_project(project: &Project) -> Result<Vec<UnitInput>, PipelineError> {
    match project {
        Project::Dir(dir) => {
            let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| PipelineError::Io(format!("cannot read {}: {e}", dir.display())))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "c"))
                .collect();
            names.sort();
            names
                .into_iter()
                .map(|path| {
                    let source = std::fs::read_to_string(&path).map_err(|e| {
                        PipelineError::Io(format!("cannot read {}: {e}", path.display()))
                    })?;
                    let name = path.file_name().map_or_else(
                        || path.display().to_string(),
                        |n| n.to_string_lossy().into_owned(),
                    );
                    Ok(UnitInput { name, source })
                })
                .collect()
        }
        Project::Corpus { units, kloc, seed } => Ok((0..*units)
            .map(|i| UnitInput {
                name: format!("unit{i:03}"),
                source: sga_cgen::generate(&sga_cgen::GenConfig::sized(seed + i as u64, *kloc)),
            })
            .collect()),
    }
}

/// How a unit's artifacts were obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CacheStatus {
    Hit,
    Miss,
    Off,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Off => "off",
        }
    }
}

/// What happened to one unit.
enum UnitOutcome {
    /// Analysis finished (possibly degraded — the flag travels inside).
    Analyzed(CacheStatus, Box<UnitAnalysis>),
    /// The frontend rejected the unit.
    Frontend(String),
    /// The unit's worker panicked; the panic was isolated.
    Panicked(String),
}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs the whole project and returns the JSON run report.
pub fn run(project: &Project, options: &PipelineOptions) -> Result<Json, PipelineError> {
    let wall = Instant::now();
    let timers = StageTimers::new();
    let jobs = options.jobs.max(1);

    let units = timers.time("load", || load_project(project))?;
    let cache =
        match &options.cache_dir {
            Some(dir) => Some(Cache::open(dir).map_err(|e| {
                PipelineError::Io(format!("cannot open cache {}: {e}", dir.display()))
            })?),
            None => None,
        };

    // Thread budget: units run concurrently; whatever head room is left
    // over goes to procedure-level parallelism inside each unit.
    let inner_jobs = (jobs / units.len().max(1)).max(1);
    // Dependency options, the widening strategy, and the analysis budget all
    // shape the fixpoint, so all three are part of the cache key. The budget
    // joins per unit (below) because fault injection can override it for a
    // single unit without disturbing its neighbors' keys.
    let base_tag = format!("{:?}|{:?}", options.depgen, options.widening);

    // With keep_going, worker panics are expected, caught, and recorded in
    // the report — silence the default hook's per-panic backtrace spew for
    // the duration of the unit loop so one bad unit doesn't flood stderr.
    let prev_hook = if options.keep_going {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Some(hook)
    } else {
        None
    };
    let outcomes: Vec<(u64, UnitOutcome)> = par::run_indexed(jobs, &units, |i, input| {
        // An injected budget changes the unit's analysis semantics, so it
        // participates in that unit's key — a faulted run never hits an
        // entry the fault-free run stored, and vice versa.
        let budget = options.faults.budget_for(i).unwrap_or(options.budget);
        let options_tag = format!("{base_tag}|{}", budget.cache_tag());
        let key = cache::unit_key(&input.source, &options_tag);
        let caught = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
            if options.faults.should_panic(i) {
                panic!("injected fault: worker panic in {}", input.name);
            }
            if let Some(c) = &cache {
                if let cache::LoadOutcome::Hit(cached) = c.load(&input.name, key) {
                    return Ok((CacheStatus::Hit, cached));
                }
            }
            let program = timers
                .time("parse", || sga_cfront::parse(&input.source))
                .map_err(|e| e.to_string())?;
            let analysis = unit::analyze_unit(
                &program,
                inner_jobs,
                options.depgen,
                options.widening,
                &budget,
                &timers,
            );
            if let Some(c) = &cache {
                // A store failure is retried inside the cache and, if it
                // sticks, counted in cache health; it only costs the next
                // run its hit.
                let _ =
                    c.store_injected(&input.name, key, &analysis, options.faults.io_fail_count(i));
                if let Some(mode) = options.faults.corruption_for(i) {
                    let _ = c.corrupt_entry(&input.name, key, mode);
                }
            }
            let status = if cache.is_some() {
                CacheStatus::Miss
            } else {
                CacheStatus::Off
            };
            Ok((status, Box::new(analysis)))
        }));
        let outcome = match caught {
            Ok(Ok((status, analysis))) => UnitOutcome::Analyzed(status, analysis),
            Ok(Err(message)) => UnitOutcome::Frontend(message),
            Err(payload) => UnitOutcome::Panicked(panic_message(payload)),
        };
        (key, outcome)
    });
    if let Some(hook) = prev_hook {
        std::panic::set_hook(hook);
    }

    if !options.keep_going {
        for (input, (_, outcome)) in units.iter().zip(&outcomes) {
            match outcome {
                UnitOutcome::Frontend(message) => {
                    return Err(PipelineError::Frontend {
                        unit: input.name.clone(),
                        message: message.clone(),
                    });
                }
                UnitOutcome::Panicked(message) => {
                    return Err(PipelineError::Crashed {
                        unit: input.name.clone(),
                        message: message.clone(),
                    });
                }
                UnitOutcome::Analyzed(..) => {}
            }
        }
    }

    let mut units_json: Vec<Json> = Vec::with_capacity(units.len());
    let (mut procs, mut alarms, mut hits, mut misses) = (0usize, 0usize, 0usize, 0usize);
    let (mut degraded_units, mut crashed_units) = (0usize, 0usize);
    for (input, (key, outcome)) in units.iter().zip(outcomes) {
        match outcome {
            UnitOutcome::Analyzed(status, a) => {
                procs += a.procs.len();
                alarms += a.alarms.len();
                degraded_units += usize::from(a.degraded);
                match status {
                    CacheStatus::Hit => hits += a.procs.len(),
                    CacheStatus::Miss => misses += a.procs.len(),
                    CacheStatus::Off => {}
                }
                units_json.push(
                    Json::obj()
                        .with("name", input.name.as_str())
                        .with("outcome", if a.degraded { "degraded" } else { "ok" })
                        .with("source_hash", format!("{key:016x}"))
                        .with("procs", a.procs.len())
                        .with("locs", a.num_locs)
                        .with("dep_edges_raw", a.dep_edges_raw)
                        .with("dep_edges", a.dep_edges)
                        .with("iterations", a.iterations)
                        .with("fingerprint", format!("{:016x}", a.fingerprint))
                        .with("cache", status.as_str())
                        .with(
                            "alarms",
                            a.alarms
                                .iter()
                                .map(|s| Json::from(s.as_str()))
                                .collect::<Vec<_>>(),
                        ),
                );
            }
            UnitOutcome::Frontend(message) | UnitOutcome::Panicked(message) => {
                crashed_units += 1;
                units_json.push(
                    Json::obj()
                        .with("name", input.name.as_str())
                        .with("outcome", "crashed")
                        .with("source_hash", format!("{key:016x}"))
                        .with("error", message.as_str())
                        .with("alarms", Vec::<Json>::new()),
                );
            }
        }
    }

    let mut opts_json = Json::obj()
        .with("engine", "sparse")
        .with("bypass", options.depgen.bypass)
        .with("widening", options.widening.strategy.name())
        .with("cache", options.cache_dir.is_some());
    if !options.canonical {
        opts_json.set("jobs", jobs);
    }

    let looked_up = hits + misses;
    let totals = Json::obj()
        .with("units", units.len())
        .with("procs", procs)
        .with("alarms", alarms)
        .with("degraded", degraded_units)
        .with("crashed", crashed_units)
        .with("cache_hits", hits)
        .with("cache_misses", misses)
        .with(
            "hit_rate",
            if looked_up == 0 {
                0.0
            } else {
                hits as f64 / looked_up as f64
            },
        );

    let mut report = Json::obj()
        .with("schema", REPORT_SCHEMA)
        .with("tool", "sga-pipeline")
        .with("options", opts_json)
        .with("units", units_json)
        .with("totals", totals);

    if !options.canonical {
        // Self-healing activity varies with prior on-disk state (a corrupt
        // entry quarantined here was stored by an earlier run), so it lives
        // with the other run-specific fields, outside the canonical report.
        if let Some(c) = &cache {
            let health = c.health();
            report.set(
                "cache_health",
                Json::obj()
                    .with("quarantined", health.quarantined)
                    .with("io_retries", health.io_retries)
                    .with("store_errors", health.store_errors),
            );
        }
        let mut timing = Json::obj();
        for (stage, d) in timers.snapshot() {
            timing.set(&stage, d.as_secs_f64() * 1000.0);
        }
        timing.set("wall", wall.elapsed().as_secs_f64() * 1000.0);
        report.set("timing_ms", timing);
    }
    Ok(report)
}
