//! Shared fixtures for the pipeline crate's unit tests.
//!
//! The cache and journal tests all start the same way — a scratch
//! directory, an opened cache, a representative analysis artifact, often
//! already stored — so the boilerplate lives here once instead of being
//! repeated (with slightly diverging `unwrap()` chains) per test module.

use crate::cache::Cache;
use crate::unit::{ProcArtifact, UnitAnalysis};
use sga_core::interface::{ImportRef, ProcInterface, UnitInterface};
use sga_diag::{DiagKind, Diagnostic, DischargeMethod, Evidence, Status};
use sga_ir::{Cp, NodeId, ProcId};
use sga_utils::Idx;
use std::path::PathBuf;

/// A representative per-unit artifact with every field populated — enough
/// structure that encode/decode bugs can't hide behind empty collections.
pub(crate) fn sample_analysis() -> UnitAnalysis {
    UnitAnalysis {
        procs: vec![ProcArtifact {
            name: "main".into(),
            summary_defs: vec!["Var(v0)".into()],
            summary_uses: vec![],
            dep_segment: vec![[3, 0, 1, 0, 4, 0], [7, 0, 2, 0, 5, 1]],
        }],
        interface: UnitInterface {
            exports: vec![ProcInterface {
                name: "main".into(),
                arity: 0,
                hash: 0x0123_4567_89AB_CDEF,
            }],
            imports: vec![ImportRef {
                symbol: "ext_helper".into(),
                arity: 2,
                dependents: vec!["main".into()],
            }],
        },
        diags: vec![
            Diagnostic {
                fingerprint: 0x1122_3344_5566_7788,
                ..Diagnostic::new(
                    DiagKind::BufferOverrun,
                    Cp::new(ProcId::new(0), NodeId::new(3)),
                    3,
                    "main",
                    None,
                    "buf",
                    false,
                    Evidence::Overrun {
                        offset: "[0,+oo]".into(),
                        size: "[4,4]".into(),
                        block: "Alloc@main:n1".into(),
                        alloc: Some((0, 1)),
                    },
                )
            },
            Diagnostic {
                fingerprint: 0x99AA_BBCC_DDEE_FF00,
                status: Status::Discharged {
                    method: DischargeMethod::PathInfeasible,
                    pack: "then@3(n > 0) & else@6(i <= 0)".into(),
                    reason: "guards conflict: i in [1,+oo] refines to empty".into(),
                },
                ..Diagnostic::new(
                    DiagKind::DivByZero,
                    Cp::new(ProcId::new(0), NodeId::new(5)),
                    7,
                    "main",
                    None,
                    "n - m",
                    false,
                    Evidence::DivByZero {
                        divisor: "[-oo,+oo]".into(),
                        nth: 0,
                    },
                )
            },
        ],
        triage_degraded: false,
        fingerprint: 0xDEAD_BEEF_0BAD_CAFE,
        iterations: 42,
        num_locs: 9,
        dep_edges_raw: 12,
        dep_edges: 10,
        degraded: false,
    }
}

/// A fresh scratch directory under the system temp dir (wiped if a previous
/// run left one behind). `tag` must be unique per test within this crate.
pub(crate) fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-pipeline-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An opened cache rooted in a fresh scratch directory.
pub(crate) fn temp_cache(tag: &str) -> Cache {
    Cache::open(&temp_dir(tag)).expect("open temp cache")
}

/// The common open-then-store prologue of the corruption tests: a cache
/// holding [`sample_analysis`] for `unit` under `key`.
pub(crate) fn stored_cache(tag: &str, unit: &str, key: u64) -> (Cache, UnitAnalysis) {
    let cache = temp_cache(tag);
    let analysis = sample_analysis();
    cache.store(unit, key, &analysis).expect("store sample");
    (cache, analysis)
}
