//! Content-hash-keyed on-disk cache of per-procedure analysis artifacts.
//!
//! One JSON file per translation unit, named `<unit>-<key>.json` where the
//! key is a hash of the unit's *source text* plus the analysis options and
//! the cache format version. Editing a unit, flipping an option, or bumping
//! the format all change the key, so stale entries are simply never looked
//! up again (they are overwritten lazily, not garbage-collected).
//!
//! A cache file stores everything the driver needs to skip re-analysis
//! entirely: the per-procedure callee-access summaries and dependency
//! segments (the expensive artifacts named by the paper's pre-analysis and
//! dependency-generation phases), plus the unit's alarms and the fixpoint
//! fingerprint. Loads are fully validated — any parse error or shape
//! mismatch is treated as a miss, never an error.

use crate::unit::{ProcArtifact, UnitAnalysis};
use sga_utils::{fxhash, Json};
use std::path::{Path, PathBuf};

/// Bump when the cached schema or any analysis semantics change.
pub const CACHE_FORMAT: u32 = 1;

/// Cache key of one unit: format version + option fingerprint + source text.
pub fn unit_key(source: &str, options_tag: &str) -> u64 {
    fxhash::hash_one(&(CACHE_FORMAT, options_tag, source))
}

/// A directory of per-unit cache files.
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache {
            dir: dir.to_path_buf(),
        })
    }

    fn path_for(&self, unit: &str, key: u64) -> PathBuf {
        let safe: String = unit
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}-{key:016x}.json"))
    }

    /// Looks `unit` up under `key`; `None` on absence or any corruption.
    pub fn load(&self, unit: &str, key: u64) -> Option<UnitAnalysis> {
        let text = std::fs::read_to_string(self.path_for(unit, key)).ok()?;
        decode(&Json::parse(&text).ok()?)
    }

    /// Stores `analysis` for `unit` under `key`.
    pub fn store(&self, unit: &str, key: u64, analysis: &UnitAnalysis) -> std::io::Result<()> {
        std::fs::write(self.path_for(unit, key), encode(unit, analysis).to_pretty())
    }
}

fn encode(unit: &str, a: &UnitAnalysis) -> Json {
    let procs: Vec<Json> = a
        .procs
        .iter()
        .map(|p| {
            Json::obj()
                .with("name", p.name.as_str())
                .with("summary_defs", strs(&p.summary_defs))
                .with("summary_uses", strs(&p.summary_uses))
                .with(
                    "dep_segment",
                    p.dep_segment
                        .iter()
                        .map(|row| {
                            Json::from(
                                row.iter()
                                    .map(|&x| Json::from(x as f64))
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect::<Vec<_>>(),
                )
        })
        .collect();
    Json::obj()
        .with("schema", CACHE_FORMAT)
        .with("unit", unit)
        .with("fingerprint", format!("{:016x}", a.fingerprint))
        .with("iterations", a.iterations)
        .with("num_locs", a.num_locs)
        .with("dep_edges_raw", a.dep_edges_raw)
        .with("dep_edges", a.dep_edges)
        .with("alarms", strs(&a.alarms))
        .with("procs", procs)
}

fn decode(j: &Json) -> Option<UnitAnalysis> {
    if j.get("schema")?.as_u64()? != u64::from(CACHE_FORMAT) {
        return None;
    }
    let fingerprint = u64::from_str_radix(j.get("fingerprint")?.as_str()?, 16).ok()?;
    let mut procs = Vec::new();
    for p in j.get("procs")?.as_arr()? {
        let mut dep_segment = Vec::new();
        for row in p.get("dep_segment")?.as_arr()? {
            let row = row.as_arr()?;
            if row.len() != 6 {
                return None;
            }
            let mut out = [0u64; 6];
            for (slot, v) in out.iter_mut().zip(row) {
                *slot = v.as_u64()?;
            }
            dep_segment.push(out);
        }
        procs.push(ProcArtifact {
            name: p.get("name")?.as_str()?.to_string(),
            summary_defs: str_list(p.get("summary_defs")?)?,
            summary_uses: str_list(p.get("summary_uses")?)?,
            dep_segment,
        });
    }
    Some(UnitAnalysis {
        procs,
        alarms: str_list(j.get("alarms")?)?,
        fingerprint,
        iterations: j.get("iterations")?.as_u64()? as usize,
        num_locs: j.get("num_locs")?.as_u64()? as usize,
        dep_edges_raw: j.get("dep_edges_raw")?.as_u64()? as usize,
        dep_edges: j.get("dep_edges")?.as_u64()? as usize,
    })
}

fn strs(v: &[String]) -> Vec<Json> {
    v.iter().map(|s| Json::from(s.as_str())).collect()
}

fn str_list(j: &Json) -> Option<Vec<String>> {
    j.as_arr()?
        .iter()
        .map(|s| Some(s.as_str()?.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UnitAnalysis {
        UnitAnalysis {
            procs: vec![ProcArtifact {
                name: "main".into(),
                summary_defs: vec!["Var(v0)".into()],
                summary_uses: vec![],
                dep_segment: vec![[3, 0, 1, 0, 4, 0], [7, 0, 2, 0, 5, 1]],
            }],
            alarms: vec!["line 3: possible buffer overrun".into()],
            fingerprint: 0xDEAD_BEEF_0BAD_CAFE,
            iterations: 42,
            num_locs: 9,
            dep_edges_raw: 12,
            dep_edges: 10,
        }
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let decoded = decode(&Json::parse(&encode("u", &a).to_pretty()).unwrap()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn schema_mismatch_is_a_miss() {
        let mut j = encode("u", &sample());
        j.set("schema", 999u32);
        assert!(decode(&j).is_none());
    }
}
