//! Content-hash-keyed on-disk cache of per-procedure analysis artifacts —
//! checksummed, atomically written, and self-healing.
//!
//! One JSON file per translation unit, named `<unit>-<key>.json` where the
//! key is a hash of the unit's *source text* plus the analysis options and
//! the cache format version. Editing a unit, flipping an option, or bumping
//! the format all change the key, so stale entries are simply never looked
//! up again (they are overwritten lazily, not garbage-collected).
//!
//! A cache file stores everything the driver needs to skip re-analysis
//! entirely: the per-procedure callee-access summaries and dependency
//! segments (the expensive artifacts named by the paper's pre-analysis and
//! dependency-generation phases), plus the unit's alarms, degradation flag,
//! and the fixpoint fingerprint.
//!
//! Robustness model (the cache must survive killed runs and bad disks):
//!
//! * **Atomic stores.** Entries are written to a temp file in the cache
//!   directory and `rename`d into place, so readers never observe a
//!   half-written entry from a concurrent or killed writer.
//! * **Checksums.** The entry wraps its payload as
//!   `{"checksum": "<fxhash of compact payload>", "payload": {...}}`; loads
//!   verify the checksum before decoding, catching truncation and bit rot
//!   that still parse as JSON.
//! * **Quarantine, not panic.** A present-but-damaged entry (unreadable,
//!   unparsable, checksum mismatch, wrong embedded schema, shape mismatch)
//!   is moved into `quarantine/` under the cache root and reported as
//!   [`LoadOutcome::MissCorrupt`]; the driver recomputes and overwrites.
//! * **Bounded retry.** Stores retry transient IO errors a few times with
//!   short backoff before giving up; a final failure is returned to the
//!   caller (it costs the *next* run a hit, never this run its result).
//!
//! [`CacheHealth`] counts quarantines, IO retries, and failed stores so the
//! run report can surface self-healing activity.

use crate::fault::CorruptionMode;
use crate::unit::{ProcArtifact, UnitAnalysis};
use sga_core::interface::{ImportRef, ProcInterface, UnitInterface};
use sga_diag::Diagnostic;
use sga_utils::{fxhash, Json};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bump when the cached schema or any analysis semantics change.
///
/// v5: discharge records carry a `method` (`octagon` | `path_infeasible`)
/// and the path-condition triage layer exists — entries written by a
/// pre-path binary describe a different discharged set, so they must not
/// be served to one that runs it (the triage mode itself also joins the
/// options tag).
///
/// v4: entries carry the unit's link `interface` (per-function export
/// hashes and imported external symbols with reverse dependents) — the
/// incremental daemon's invalidation substrate.
///
/// v3: stringly `alarms` replaced by structured `diagnostics` (the
/// [`sga_diag::Diagnostic`] JSON shape, with triage verdicts and content
/// fingerprints), plus the `triage_degraded` flag.
///
/// v2: checksummed `{checksum, payload}` envelope, atomic writes, the
/// `degraded` flag.
pub const CACHE_FORMAT: u32 = 5;

/// Store attempts per entry (first try + retries of transient IO errors).
const STORE_ATTEMPTS: u32 = 3;

/// Default number of quarantined entries to retain (newest first). Without a
/// cap every healing event would leak a file forever.
pub const DEFAULT_QUARANTINE_KEEP: usize = 16;

/// Backoff before retry `n` (1-based), in milliseconds.
const RETRY_BACKOFF_MS: [u64; 2] = [1, 4];

/// Cache key of one unit: format version + option fingerprint + source text.
pub fn unit_key(source: &str, options_tag: &str) -> u64 {
    fxhash::hash_one(&(CACHE_FORMAT, options_tag, source))
}

/// Self-healing activity counters, shared across worker threads.
#[derive(Debug, Default)]
pub struct CacheHealth {
    quarantined: AtomicUsize,
    io_retries: AtomicUsize,
    store_errors: AtomicUsize,
    evicted: AtomicUsize,
}

/// A point-in-time copy of [`CacheHealth`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheHealthSnapshot {
    /// Damaged entries moved to `quarantine/` (and recomputed).
    pub quarantined: usize,
    /// Transient store failures that were retried.
    pub io_retries: usize,
    /// Stores that failed even after retrying.
    pub store_errors: usize,
    /// Entries removed by the LRU-by-access sweep (`max_entries` cap).
    pub evicted: usize,
}

impl CacheHealth {
    fn snapshot(&self) -> CacheHealthSnapshot {
        CacheHealthSnapshot {
            quarantined: self.quarantined.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

/// What a lookup found.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A validated entry.
    Hit(Box<UnitAnalysis>),
    /// No entry under this key.
    MissAbsent,
    /// An entry existed but was damaged; it has been quarantined.
    MissCorrupt,
}

/// A directory of per-unit cache files.
pub struct Cache {
    dir: PathBuf,
    health: CacheHealth,
    quarantine_keep: usize,
    max_entries: Option<usize>,
}

impl Cache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache {
            dir: dir.to_path_buf(),
            health: CacheHealth::default(),
            quarantine_keep: DEFAULT_QUARANTINE_KEEP,
            max_entries: None,
        })
    }

    /// Caps `quarantine/` at the newest `keep` entries (set before sharing
    /// the cache across workers).
    pub fn set_quarantine_keep(&mut self, keep: usize) {
        self.quarantine_keep = keep;
    }

    /// Caps the cache at `max` entries, evicted LRU-by-access by
    /// [`Cache::sweep_lru`] (set before sharing the cache across workers).
    /// `None` (the default) means unbounded.
    pub fn set_max_entries(&mut self, max: Option<usize>) {
        self.max_entries = max;
    }

    /// Evicts entries beyond the `max_entries` cap, least-recently-accessed
    /// first (hits refresh an entry's mtime, so mtime order *is* access
    /// order). Called once per batch/round rather than per store: eviction
    /// is a policy sweep, not a hot-path bookkeeping step. Returns how many
    /// entries were removed (also accumulated in [`CacheHealth`]).
    pub fn sweep_lru(&self) -> usize {
        let Some(max) = self.max_entries else {
            return 0;
        };
        let evicted = prune_entries_to_newest(&self.dir, max).unwrap_or(0);
        self.health.evicted.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// The entry path for `unit` under `key` (exposed so tests and fault
    /// injection can damage entries directly).
    pub fn path_for(&self, unit: &str, key: u64) -> PathBuf {
        let safe: String = unit
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}-{key:016x}.json"))
    }

    /// Where damaged entries go.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Self-healing counters so far.
    pub fn health(&self) -> CacheHealthSnapshot {
        self.health.snapshot()
    }

    /// Looks `unit` up under `key`, validating checksum, schema, and shape.
    /// Damaged entries are quarantined and reported as
    /// [`LoadOutcome::MissCorrupt`].
    pub fn load(&self, unit: &str, key: u64) -> LoadOutcome {
        let path = self.path_for(unit, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::MissAbsent,
            Err(_) => {
                // Present but unreadable — treat like damage.
                self.quarantine(&path);
                return LoadOutcome::MissCorrupt;
            }
        };
        match Json::parse(&text).ok().as_ref().and_then(decode) {
            Some(analysis) => {
                // Refresh the entry's access time so the LRU sweep sees a
                // hit as recent use. Best effort: a failed touch only makes
                // the entry *look* colder than it is.
                if self.max_entries.is_some() {
                    let _ = std::fs::File::options()
                        .append(true)
                        .open(&path)
                        .and_then(|f| f.set_modified(std::time::SystemTime::now()));
                }
                LoadOutcome::Hit(Box::new(analysis))
            }
            None => {
                self.quarantine(&path);
                LoadOutcome::MissCorrupt
            }
        }
    }

    /// Stores `analysis` for `unit` under `key`: temp file + rename, with
    /// bounded retry of transient IO errors.
    pub fn store(&self, unit: &str, key: u64, analysis: &UnitAnalysis) -> std::io::Result<()> {
        self.store_injected(unit, key, analysis, 0)
    }

    /// [`Cache::store`] with `inject_fail_first` leading attempts failing
    /// with a synthetic IO error — the [`crate::fault`] harness's entry
    /// point for exercising the retry path.
    pub fn store_injected(
        &self,
        unit: &str,
        key: u64,
        analysis: &UnitAnalysis,
        inject_fail_first: u32,
    ) -> std::io::Result<()> {
        let path = self.path_for(unit, key);
        let text = encode(unit, analysis).to_pretty();
        let mut attempt = 0;
        loop {
            let result = if attempt < inject_fail_first {
                Err(std::io::Error::other("injected fault: cache IO error"))
            } else {
                write_atomic(&path, text.as_bytes())
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) => {
                    attempt += 1;
                    if attempt >= STORE_ATTEMPTS {
                        self.health.store_errors.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    self.health.io_retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = RETRY_BACKOFF_MS[(attempt as usize - 1).min(1)];
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
        }
    }

    /// Damages the stored entry for `unit`/`key` in place (fault injection;
    /// also what the robustness tests call directly).
    pub fn corrupt_entry(&self, unit: &str, key: u64, mode: CorruptionMode) -> std::io::Result<()> {
        let path = self.path_for(unit, key);
        match mode {
            CorruptionMode::Truncate => {
                let len = std::fs::metadata(&path)?.len();
                let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(len / 2)?;
            }
            CorruptionMode::BitFlip => {
                let mut file = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)?;
                let len = std::fs::metadata(&path)?.len();
                let mid = len / 2;
                let mut byte = [0u8; 1];
                file.seek(SeekFrom::Start(mid))?;
                file.read_exact(&mut byte)?;
                byte[0] ^= 0x40;
                file.seek(SeekFrom::Start(mid))?;
                file.write_all(&byte)?;
            }
            CorruptionMode::Forge => {
                // Tamper the payload *then re-seal* with a valid checksum:
                // the envelope passes, the content is wrong. Only the
                // validation oracle's recompute-and-compare catches this.
                let text = std::fs::read_to_string(&path)?;
                let bad = std::io::Error::other("forge: entry not decodable");
                let parsed = Json::parse(&text).map_err(|_| bad)?;
                let mut payload = unseal(&parsed)
                    .ok_or_else(|| std::io::Error::other("forge: bad envelope"))?
                    .clone();
                let fp = payload
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| std::io::Error::other("forge: no fingerprint"))?;
                payload.set("fingerprint", format!("{:016x}", fp ^ 0x1));
                write_atomic(&path, seal(payload).to_pretty().as_bytes())?;
            }
        }
        Ok(())
    }

    /// Quarantines the entry for `unit`/`key` explicitly — the validation
    /// oracle's hook for evicting entries whose checksum is fine but whose
    /// *content* disagrees with a recomputed result.
    pub fn quarantine_entry(&self, unit: &str, key: u64) {
        let path = self.path_for(unit, key);
        if path.exists() {
            self.quarantine(&path);
        }
    }

    /// Moves a damaged entry aside so the next store starts clean and the
    /// evidence survives for post-mortems. Failures fall back to deletion;
    /// if even that fails the recompute-and-overwrite path still heals. The
    /// quarantine directory is pruned to the newest `quarantine_keep`
    /// entries afterwards so healing activity cannot leak disk forever.
    fn quarantine(&self, path: &Path) {
        self.health.quarantined.fetch_add(1, Ordering::Relaxed);
        let qdir = self.quarantine_dir();
        let moved = std::fs::create_dir_all(&qdir).is_ok()
            && path
                .file_name()
                .is_some_and(|name| std::fs::rename(path, qdir.join(name)).is_ok());
        if !moved {
            let _ = std::fs::remove_file(path);
        }
        let _ = prune_dir_to_newest(&qdir, self.quarantine_keep);
    }
}

/// What [`gc`] cleaned up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Quarantined entries removed (oldest beyond the cap).
    pub quarantine_removed: usize,
    /// Stranded `.tmp` files removed (leftovers of killed writers).
    pub tmp_removed: usize,
    /// Cache entries evicted by the LRU-by-access sweep.
    pub evicted: usize,
    /// Serve round-journal records pruned (oldest beyond the cap).
    pub serve_journal_removed: usize,
}

/// Offline cache maintenance (`sga cache gc`): prunes `quarantine/` to the
/// newest `keep` entries, sweeps stranded `.tmp` files (from killed atomic
/// writers) out of the cache root and the `journal/` and `serve-journal/`
/// subdirectories, and — when `max_entries` is set — evicts cache entries
/// beyond the cap, least-recently-accessed first.
///
/// The serve daemon's `serve-journal/` records are **spared** by the entry
/// sweep (they are warm-restart state, not cache entries): only their
/// stranded `.tmp` files are removed, unless `serve_journal_max` caps them
/// explicitly — then the oldest records beyond the cap are pruned, which at
/// worst costs the next warm restart a recompute of those units.
pub fn gc(
    dir: &Path,
    keep: usize,
    max_entries: Option<usize>,
    serve_journal_max: Option<usize>,
) -> std::io::Result<GcStats> {
    let serve_journal = dir.join("serve-journal");
    Ok(GcStats {
        quarantine_removed: prune_dir_to_newest(&dir.join("quarantine"), keep)?,
        tmp_removed: sweep_tmp(dir)?
            + sweep_tmp(&dir.join("journal"))?
            + sweep_tmp(&serve_journal)?,
        evicted: match max_entries {
            Some(max) => prune_entries_to_newest(dir, max)?,
            None => 0,
        },
        serve_journal_removed: match serve_journal_max {
            Some(max) => prune_entries_to_newest(&serve_journal, max)?,
            None => 0,
        },
    })
}

/// Keeps the newest `keep` cache *entry* files (`*.json` directly under the
/// cache root; the `journal/` and `quarantine/` subdirectories are not
/// entries) and removes the rest, oldest access first.
fn prune_entries_to_newest(dir: &Path, keep: usize) -> std::io::Result<usize> {
    prune_to_newest(dir, keep, |p| p.extension().is_some_and(|e| e == "json"))
}

/// Removes `.tmp` files directly under `dir`. A missing directory is fine.
fn sweep_tmp(dir: &Path) -> std::io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Keeps the newest `keep` files in `dir` (by mtime, file name as the
/// deterministic tiebreak) and removes the rest. Missing directory = no-op.
fn prune_dir_to_newest(dir: &Path, keep: usize) -> std::io::Result<usize> {
    prune_to_newest(dir, keep, |_| true)
}

/// [`prune_dir_to_newest`] restricted to files matching `select`.
fn prune_to_newest(
    dir: &Path,
    keep: usize,
    select: impl Fn(&Path) -> bool,
) -> std::io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if !select(&path) {
                return None;
            }
            let meta = entry.metadata().ok()?;
            meta.is_file()
                .then(|| (meta.modified().unwrap_or(std::time::UNIX_EPOCH), path))
        })
        .collect();
    if files.len() <= keep {
        return Ok(0);
    }
    // Oldest first; names break mtime ties so pruning is deterministic.
    files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let excess = files.len() - keep;
    let mut removed = 0;
    for (_, path) in files.into_iter().take(excess) {
        if std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename. The temp name is derived from the target name; only one
/// writer per key exists within a run (each unit is analyzed once), and
/// cross-run collisions just race to identical content. Shared with the
/// write-ahead journal and the serve daemon's round journal, which have
/// the same torn-write problem.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Wraps `payload` in the checksummed cache-v2 envelope
/// `{"checksum": "<fxhash of compact payload>", "payload": {...}}`. Shared
/// with the write-ahead journal (and the serve daemon's round journal) so
/// every durable on-disk format verifies the same way.
pub fn seal(payload: Json) -> Json {
    let checksum = fxhash::hash_one(&payload.to_compact());
    Json::obj()
        .with("checksum", format!("{checksum:016x}"))
        .with("payload", payload)
}

/// Verifies the envelope checksum and returns the payload, or `None` on any
/// damage (missing fields, bad hex, checksum mismatch).
pub fn unseal(j: &Json) -> Option<&Json> {
    let stored = u64::from_str_radix(j.get("checksum")?.as_str()?, 16).ok()?;
    let payload = j.get("payload")?;
    // The compact rendering of a parsed payload is deterministic (object
    // order is preserved), so the checksum survives the roundtrip.
    (fxhash::hash_one(&payload.to_compact()) == stored).then_some(payload)
}

/// Renders a [`UnitAnalysis`] as a sealed cache-entry object. Crate-visible
/// so the isolated worker ships its artifacts back to the parent over the
/// pipe in exactly the envelope the cache already proves durable — a torn
/// write from a dying worker fails the same checksum a torn file would.
pub(crate) fn encode(unit: &str, a: &UnitAnalysis) -> Json {
    let procs: Vec<Json> = a
        .procs
        .iter()
        .map(|p| {
            Json::obj()
                .with("name", p.name.as_str())
                .with("summary_defs", strs(&p.summary_defs))
                .with("summary_uses", strs(&p.summary_uses))
                .with(
                    "dep_segment",
                    p.dep_segment
                        .iter()
                        .map(|row| {
                            Json::from(
                                row.iter()
                                    .map(|&x| Json::from(x as f64))
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect::<Vec<_>>(),
                )
        })
        .collect();
    let payload = Json::obj()
        .with("schema", CACHE_FORMAT)
        .with("unit", unit)
        .with("fingerprint", format!("{:016x}", a.fingerprint))
        .with("iterations", a.iterations)
        .with("num_locs", a.num_locs)
        .with("dep_edges_raw", a.dep_edges_raw)
        .with("dep_edges", a.dep_edges)
        .with("degraded", a.degraded)
        .with("triage_degraded", a.triage_degraded)
        .with(
            "diagnostics",
            a.diags.iter().map(Diagnostic::to_json).collect::<Vec<_>>(),
        )
        .with("interface", encode_interface(&a.interface))
        .with("procs", procs);
    seal(payload)
}

/// Renders a [`UnitInterface`] in the cache-entry shape. Public so the
/// serve daemon's round journal persists interfaces in exactly the format
/// the cache already proves durable.
pub fn encode_interface(iface: &UnitInterface) -> Json {
    Json::obj()
        .with(
            "exports",
            iface
                .exports
                .iter()
                .map(|e| {
                    Json::obj()
                        .with("name", e.name.as_str())
                        .with("arity", e.arity)
                        .with("hash", format!("{:016x}", e.hash))
                })
                .collect::<Vec<_>>(),
        )
        .with(
            "imports",
            iface
                .imports
                .iter()
                .map(|i| {
                    Json::obj()
                        .with("symbol", i.symbol.as_str())
                        .with("arity", i.arity)
                        .with("dependents", strs(&i.dependents))
                })
                .collect::<Vec<_>>(),
        )
}

/// Parses the shape written by [`encode_interface`]; `None` on any damage.
pub fn decode_interface(j: &Json) -> Option<UnitInterface> {
    let mut exports = Vec::new();
    for e in j.get("exports")?.as_arr()? {
        exports.push(ProcInterface {
            name: e.get("name")?.as_str()?.to_string(),
            arity: e.get("arity")?.as_u64()? as usize,
            hash: u64::from_str_radix(e.get("hash")?.as_str()?, 16).ok()?,
        });
    }
    let mut imports = Vec::new();
    for i in j.get("imports")?.as_arr()? {
        imports.push(ImportRef {
            symbol: i.get("symbol")?.as_str()?.to_string(),
            arity: i.get("arity")?.as_u64()? as usize,
            dependents: str_list(i.get("dependents")?)?,
        });
    }
    Some(UnitInterface { exports, imports })
}

/// Parses the shape written by [`encode`]; `None` on any damage (the
/// isolated worker's response decoder shares this path with cache loads).
pub(crate) fn decode(j: &Json) -> Option<UnitAnalysis> {
    let payload = unseal(j)?;
    if payload.get("schema")?.as_u64()? != u64::from(CACHE_FORMAT) {
        return None;
    }
    let fingerprint = u64::from_str_radix(payload.get("fingerprint")?.as_str()?, 16).ok()?;
    let mut procs = Vec::new();
    for p in payload.get("procs")?.as_arr()? {
        let mut dep_segment = Vec::new();
        for row in p.get("dep_segment")?.as_arr()? {
            let row = row.as_arr()?;
            if row.len() != 6 {
                return None;
            }
            let mut out = [0u64; 6];
            for (slot, v) in out.iter_mut().zip(row) {
                *slot = v.as_u64()?;
            }
            dep_segment.push(out);
        }
        procs.push(ProcArtifact {
            name: p.get("name")?.as_str()?.to_string(),
            summary_defs: str_list(p.get("summary_defs")?)?,
            summary_uses: str_list(p.get("summary_uses")?)?,
            dep_segment,
        });
    }
    let diags = payload
        .get("diagnostics")?
        .as_arr()?
        .iter()
        .map(Diagnostic::from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(UnitAnalysis {
        procs,
        interface: decode_interface(payload.get("interface")?)?,
        diags,
        triage_degraded: payload.get("triage_degraded")?.as_bool()?,
        fingerprint,
        iterations: payload.get("iterations")?.as_u64()? as usize,
        num_locs: payload.get("num_locs")?.as_u64()? as usize,
        dep_edges_raw: payload.get("dep_edges_raw")?.as_u64()? as usize,
        dep_edges: payload.get("dep_edges")?.as_u64()? as usize,
        degraded: payload.get("degraded")?.as_bool()?,
    })
}

fn strs(v: &[String]) -> Vec<Json> {
    v.iter().map(|s| Json::from(s.as_str())).collect()
}

fn str_list(j: &Json) -> Option<Vec<String>> {
    j.as_arr()?
        .iter()
        .map(|s| Some(s.as_str()?.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::{sample_analysis as sample, stored_cache, temp_cache};

    #[test]
    fn roundtrip() {
        let a = sample();
        let decoded = decode(&Json::parse(&encode("u", &a).to_pretty()).unwrap()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut j = encode("u", &sample());
        // A stale schema with a *valid* checksum over the altered payload —
        // checksums do not vouch for schema compatibility.
        let mut payload = j.get("payload").unwrap().clone();
        payload.set("schema", 1u32);
        let checksum = fxhash::hash_one(&payload.to_compact());
        j.set("checksum", format!("{checksum:016x}"));
        j.set("payload", payload);
        assert!(decode(&j).is_none());
    }

    #[test]
    fn checksum_mismatch_is_rejected() {
        let mut j = encode("u", &sample());
        let mut payload = j.get("payload").unwrap().clone();
        payload.set("iterations", 43u32); // damage without updating checksum
        j.set("payload", payload);
        assert!(decode(&j).is_none());
    }

    #[test]
    fn store_load_roundtrip_and_absent_miss() {
        let (cache, a) = stored_cache("roundtrip", "u", 7);
        match cache.load("u", 7) {
            LoadOutcome::Hit(got) => assert_eq!(*got, a),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(cache.load("u", 8), LoadOutcome::MissAbsent));
        assert_eq!(cache.health(), CacheHealthSnapshot::default());
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        let (cache, _) = stored_cache("truncate", "u", 7);
        cache
            .corrupt_entry("u", 7, CorruptionMode::Truncate)
            .unwrap();
        assert!(matches!(cache.load("u", 7), LoadOutcome::MissCorrupt));
        assert_eq!(cache.health().quarantined, 1);
        // The damaged file moved aside; the slot is free again.
        assert!(!cache.path_for("u", 7).exists());
        assert!(std::fs::read_dir(cache.quarantine_dir()).unwrap().count() == 1);
        assert!(matches!(cache.load("u", 7), LoadOutcome::MissAbsent));
    }

    #[test]
    fn bitflipped_entry_is_quarantined() {
        let (cache, _) = stored_cache("bitflip", "u", 7);
        cache
            .corrupt_entry("u", 7, CorruptionMode::BitFlip)
            .unwrap();
        assert!(matches!(cache.load("u", 7), LoadOutcome::MissCorrupt));
        assert_eq!(cache.health().quarantined, 1);
    }

    #[test]
    fn forged_entry_passes_the_envelope_but_lies() {
        // A forge re-seals tampered content with a valid checksum: the
        // envelope cannot tell, so the load is a Hit — with the wrong
        // fingerprint. Catching this is exactly the validation oracle's job.
        let (cache, a) = stored_cache("forge", "u", 7);
        cache.corrupt_entry("u", 7, CorruptionMode::Forge).unwrap();
        match cache.load("u", 7) {
            LoadOutcome::Hit(got) => {
                assert_ne!(got.fingerprint, a.fingerprint);
                assert_eq!(got.iterations, a.iterations);
            }
            other => panic!("expected (lying) hit, got {other:?}"),
        }
        assert_eq!(cache.health().quarantined, 0);
    }

    #[test]
    fn explicit_quarantine_evicts_the_entry() {
        let (cache, _) = stored_cache("evict", "u", 7);
        cache.quarantine_entry("u", 7);
        assert!(matches!(cache.load("u", 7), LoadOutcome::MissAbsent));
        assert_eq!(cache.health().quarantined, 1);
        // Quarantining a missing entry is a no-op, not an error.
        cache.quarantine_entry("u", 99);
        assert_eq!(cache.health().quarantined, 1);
    }

    #[test]
    fn quarantine_growth_is_bounded() {
        let mut cache = temp_cache("qcap");
        cache.set_quarantine_keep(2);
        for key in 0..5u64 {
            cache.store("u", key, &sample()).unwrap();
            cache
                .corrupt_entry("u", key, CorruptionMode::Truncate)
                .unwrap();
            assert!(matches!(cache.load("u", key), LoadOutcome::MissCorrupt));
        }
        assert_eq!(cache.health().quarantined, 5);
        let retained = std::fs::read_dir(cache.quarantine_dir()).unwrap().count();
        assert_eq!(retained, 2);
    }

    #[test]
    fn gc_prunes_quarantine_and_sweeps_tmp_files() {
        let cache = temp_cache("gc");
        for key in 0..4u64 {
            cache.store("u", key, &sample()).unwrap();
            cache
                .corrupt_entry("u", key, CorruptionMode::BitFlip)
                .unwrap();
            assert!(matches!(cache.load("u", key), LoadOutcome::MissCorrupt));
        }
        let dir = cache.path_for("u", 0).parent().unwrap().to_path_buf();
        std::fs::write(dir.join("stranded.json.tmp"), b"half a write").unwrap();
        let jdir = dir.join("journal");
        std::fs::create_dir_all(&jdir).unwrap();
        std::fs::write(jdir.join("0001-xyz.json.tmp"), b"torn").unwrap();
        let stats = gc(&dir, 1, None, None).unwrap();
        assert_eq!(stats.quarantine_removed, 3);
        assert_eq!(stats.tmp_removed, 2);
        assert_eq!(
            std::fs::read_dir(dir.join("quarantine")).unwrap().count(),
            1
        );
        // Idempotent: a second pass finds nothing to do.
        assert_eq!(gc(&dir, 1, None, None).unwrap(), GcStats::default());
    }

    #[test]
    fn gc_spares_serve_journal_records_and_prunes_on_request() {
        let cache = temp_cache("gc-serve");
        for key in 0..3u64 {
            cache.store("u", key, &sample()).unwrap();
        }
        let dir = cache.path_for("u", 0).parent().unwrap().to_path_buf();
        let sdir = dir.join("serve-journal");
        std::fs::create_dir_all(&sdir).unwrap();
        for (i, name) in ["u-aaaa.json", "u-bbbb.json", "u-cccc.json"]
            .iter()
            .enumerate()
        {
            let path = sdir.join(name);
            std::fs::write(&path, b"round record").unwrap();
            // Backdate so mtime ordering (oldest first) is deterministic.
            let past =
                std::time::SystemTime::now() - std::time::Duration::from_secs(1000 - i as u64);
            std::fs::File::options()
                .append(true)
                .open(&path)
                .and_then(|f| f.set_modified(past))
                .unwrap();
        }
        std::fs::write(sdir.join("u-dddd.json.tmp"), b"torn").unwrap();

        // Default policy: tmp strays are swept, records are spared — even
        // under an aggressive cache-entry cap.
        let stats = gc(&dir, DEFAULT_QUARANTINE_KEEP, Some(1), None).unwrap();
        assert_eq!(stats.tmp_removed, 1);
        assert_eq!(stats.serve_journal_removed, 0);
        assert_eq!(stats.evicted, 2);
        assert!(sdir.join("u-aaaa.json").exists());
        assert!(sdir.join("u-bbbb.json").exists());
        assert!(sdir.join("u-cccc.json").exists());

        // Explicit cap: oldest records beyond it are pruned.
        let stats = gc(&dir, DEFAULT_QUARANTINE_KEEP, None, Some(1)).unwrap();
        assert_eq!(stats.serve_journal_removed, 2);
        assert!(!sdir.join("u-aaaa.json").exists());
        assert!(!sdir.join("u-bbbb.json").exists());
        assert!(sdir.join("u-cccc.json").exists());
    }

    /// Backdates an entry's mtime by `secs` so LRU ordering is
    /// deterministic without sleeping.
    fn backdate(cache: &Cache, unit: &str, key: u64, secs: u64) {
        let past = std::time::SystemTime::now() - std::time::Duration::from_secs(secs);
        std::fs::File::options()
            .append(true)
            .open(cache.path_for(unit, key))
            .and_then(|f| f.set_modified(past))
            .expect("backdate entry");
    }

    #[test]
    fn lru_sweep_evicts_oldest_access_first() {
        let mut cache = temp_cache("lru");
        cache.set_max_entries(Some(2));
        for key in 0..4u64 {
            cache.store("u", key, &sample()).unwrap();
            backdate(&cache, "u", key, 1000 - key * 100);
        }
        // A hit refreshes key 0 (the oldest by store order) to "now".
        assert!(matches!(cache.load("u", 0), LoadOutcome::Hit(_)));
        assert_eq!(cache.sweep_lru(), 2);
        // Survivors: the hit-refreshed key 0 and the youngest key 3.
        assert!(matches!(cache.load("u", 0), LoadOutcome::Hit(_)));
        assert!(matches!(cache.load("u", 3), LoadOutcome::Hit(_)));
        assert!(matches!(cache.load("u", 1), LoadOutcome::MissAbsent));
        assert!(matches!(cache.load("u", 2), LoadOutcome::MissAbsent));
        assert_eq!(cache.health().evicted, 2);
        // Under the cap: a second sweep is a no-op.
        assert_eq!(cache.sweep_lru(), 0);
    }

    #[test]
    fn lru_sweep_is_off_by_default_and_spares_journal_and_quarantine() {
        let cache = temp_cache("lru-off");
        for key in 0..3u64 {
            cache.store("u", key, &sample()).unwrap();
        }
        assert_eq!(cache.sweep_lru(), 0);

        // With a cap, only entry files are candidates: the journal and
        // quarantine subdirectories are untouched.
        let dir = cache.path_for("u", 0).parent().unwrap().to_path_buf();
        let jdir = dir.join("journal");
        std::fs::create_dir_all(&jdir).unwrap();
        std::fs::write(jdir.join("0001-abc.json"), b"journal record").unwrap();
        let stats = gc(&dir, DEFAULT_QUARANTINE_KEEP, Some(1), None).unwrap();
        assert_eq!(stats.evicted, 2);
        assert!(jdir.join("0001-abc.json").exists());
    }

    #[test]
    fn transient_io_errors_are_retried() {
        let cache = temp_cache("retry");
        cache.store_injected("u", 7, &sample(), 2).unwrap();
        assert!(matches!(cache.load("u", 7), LoadOutcome::Hit(_)));
        assert_eq!(cache.health().io_retries, 2);
        assert_eq!(cache.health().store_errors, 0);
    }

    #[test]
    fn persistent_io_errors_surface() {
        let cache = temp_cache("io-fail");
        let err = cache.store_injected("u", 7, &sample(), STORE_ATTEMPTS);
        assert!(err.is_err());
        assert_eq!(cache.health().store_errors, 1);
        assert!(matches!(cache.load("u", 7), LoadOutcome::MissAbsent));
    }
}
