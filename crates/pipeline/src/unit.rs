//! Per-unit staged analysis: the sparse interval analysis of one
//! translation unit, scheduled per procedure.
//!
//! This reimplements `sga_core::interval::analyze_with`'s sparse branch on
//! top of the staged public APIs so that the independent per-procedure
//! pieces can run on worker threads:
//!
//! * def/use pass 1 ([`defuse::real_sets_for_proc`]) — independent per
//!   procedure;
//! * def/use pass 2 ([`defuse::summarize_scc`]) — bottom-up over the call
//!   graph's SCC condensation, SCCs at the same level run concurrently;
//! * def/use pass 3 ([`defuse::relay_sets_for_proc`]) — independent per
//!   procedure, merged in procedure order by [`defuse::finish`] so location
//!   interning stays deterministic;
//! * dependency segments ([`depgen::proc_dep_edges`]) — independent per
//!   procedure, merged in procedure order by [`depgen::assemble`];
//! * the sparse fixpoint itself is sequential (a chaotic-iteration solver
//!   over one shared worklist), as are the checkers.
//!
//! Every parallel stage merges results in procedure (or SCC) order, so the
//! outcome is bit-identical for any worker count.

use crate::par;
use sga_core::budget::Budget;
use sga_core::depgen::{self, DepGenOptions, IntervalDepSource};
use sga_core::depstore::DepBackend;
use sga_core::icfg::Icfg;
use sga_core::interface::{self, UnitInterface};
use sga_core::interval::{Engine, IntervalResult, IntervalSparseSpec};
use sga_core::stats::AnalysisStats;
use sga_core::triage::{self, TriageMode, TriageOptions};
use sga_core::widening::{WideningConfig, WideningPlan};
use sga_core::{checker, defuse, preanalysis, sparse};
use sga_diag::Diagnostic;
use sga_domains::{AbsLoc, State, Value};
use sga_ir::{Cp, ProcId, Program};
use sga_utils::stats::StageTimers;
use sga_utils::{fxhash, FxHashMap, Idx, IndexVec, PMap};

/// Cached (and cacheable) artifacts of one procedure: its callee-access
/// summary and its intraprocedural dependency segment.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcArtifact {
    /// Procedure name.
    pub name: String,
    /// Exported (caller-visible) definitions, rendered.
    pub summary_defs: Vec<String>,
    /// Exported uses, rendered.
    pub summary_uses: Vec<String>,
    /// Dependency segment rows `[loc, from_proc, from_node, to_proc,
    /// to_node, is_return]`.
    pub dep_segment: Vec<[u64; 6]>,
}

/// Everything the driver keeps about one analyzed unit.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitAnalysis {
    /// Per-procedure artifacts, in procedure order (externals skipped).
    pub procs: Vec<ProcArtifact>,
    /// The unit's link boundary: exported per-function interfaces and
    /// imported external symbols with their reverse dependents — the
    /// incremental daemon's invalidation substrate.
    pub interface: UnitInterface,
    /// Structured diagnostics in canonical order: all four checkers, with
    /// content fingerprints assigned and the octagon triage verdicts
    /// applied.
    pub diags: Vec<Diagnostic>,
    /// Whether the triage octagon run degraded under its budget (triage
    /// then discharges less; the unit's own `degraded` flag is separate).
    pub triage_degraded: bool,
    /// Order-independent hash of every (point, location, value) binding.
    pub fingerprint: u64,
    /// Ascending-phase node evaluations.
    pub iterations: usize,
    /// Interned abstract locations.
    pub num_locs: usize,
    /// Dependency edges before the bypass contraction.
    pub dep_edges_raw: usize,
    /// Dependency edges the solver actually propagates along.
    pub dep_edges: usize,
    /// Whether the fixpoint ran out of its analysis budget and finished in
    /// degraded (sound but less precise) mode.
    pub degraded: bool,
}

/// Groups the call graph's SCC condensation into bottom-up *levels*: SCCs in
/// the same level have no call path between them, so their pass-2 summaries
/// can be computed concurrently. Returns lists of component ids into
/// `bottom_up_sccs()`, innermost level first.
fn scc_levels(pre: &preanalysis::PreAnalysis) -> Vec<Vec<usize>> {
    let sccs = pre.callgraph.bottom_up_sccs();
    let comp = &pre.callgraph.scc.component;
    let mut level = vec![0usize; sccs.len()];
    // Components come callees-first, so every callee component has a smaller
    // id and its level is already final when we get to the caller.
    for (i, members) in sccs.iter().enumerate() {
        let mut lv = 0usize;
        for &p in members {
            for &q in &pre.callgraph.callees[ProcId::new(p)] {
                let cq = comp[q.index()];
                if cq != i {
                    lv = lv.max(level[cq] + 1);
                }
            }
        }
        level[i] = lv;
    }
    let depth = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); depth];
    for (i, &lv) in level.iter().enumerate() {
        by_level[lv].push(i);
    }
    by_level
}

/// The solver-facing artifacts of one unit's analysis, kept alive past the
/// report-facing [`UnitAnalysis`] so the validation oracle
/// ([`sga_core::validate`]) can re-check the fixpoint it actually came from.
pub struct UnitInternals {
    /// Pre-analysis the result was derived from.
    pub pre: preanalysis::PreAnalysis,
    /// Def/use sets (with the interned location table).
    pub du: defuse::DefUse,
    /// The dependency edges the solver propagated along.
    pub deps: depgen::DataDeps,
    /// The final sparse value map, in solver form.
    pub sparse_values: FxHashMap<Cp, PMap<AbsLoc, Value>>,
    /// Whether the fixpoint degraded under its budget.
    pub degraded: bool,
}

/// Runs the full sparse interval analysis of one parsed unit with up to
/// `jobs` worker threads for the per-procedure stages. Stage wall times are
/// accumulated into `timers` (they sum *work* across workers, not elapsed
/// wall time, once `jobs > 1`).
#[allow(clippy::too_many_arguments)]
pub fn analyze_unit(
    program: &Program,
    jobs: usize,
    options: DepGenOptions,
    backend: DepBackend,
    widening: WideningConfig,
    triage: TriageMode,
    budget: &Budget,
    timers: &StageTimers,
) -> UnitAnalysis {
    analyze_unit_inner(
        program, jobs, options, backend, widening, triage, budget, timers, false,
    )
    .0
}

/// [`analyze_unit`] keeping the solver internals alive for the validation
/// oracle. Costs one extra clone of the sparse value map.
#[allow(clippy::too_many_arguments)]
pub fn analyze_unit_traced(
    program: &Program,
    jobs: usize,
    options: DepGenOptions,
    backend: DepBackend,
    widening: WideningConfig,
    triage: TriageMode,
    budget: &Budget,
    timers: &StageTimers,
) -> (UnitAnalysis, UnitInternals) {
    let (analysis, internals) = analyze_unit_inner(
        program, jobs, options, backend, widening, triage, budget, timers, true,
    );
    (
        analysis,
        internals.expect("traced analysis keeps internals"),
    )
}

#[allow(clippy::too_many_arguments)]
fn analyze_unit_inner(
    program: &Program,
    jobs: usize,
    options: DepGenOptions,
    backend: DepBackend,
    widening: WideningConfig,
    triage_mode: TriageMode,
    budget: &Budget,
    timers: &StageTimers,
    keep_internals: bool,
) -> (UnitAnalysis, Option<UnitInternals>) {
    let pids: Vec<ProcId> = program.procs.indices().collect();

    let (pre, icfg) = timers.time("pre", || {
        let pre = preanalysis::run(program);
        let icfg = Icfg::build(program, &pre);
        (pre, icfg)
    });

    let du = timers.time("defuse", || {
        // Pass 1: real def/use sets, independent per procedure.
        let mut sets = FxHashMap::default();
        for part in par::run_indexed(jobs, &pids, |_, &pid| {
            defuse::real_sets_for_proc(program, &pre, &pre.state, pid)
        }) {
            sets.extend(part);
        }

        // Pass 2: callee-access summaries, bottom-up over the SCC
        // condensation; SCCs at the same level run concurrently.
        let sccs = pre.callgraph.bottom_up_sccs();
        let nprocs = program.procs.len();
        let mut summary_defs: IndexVec<ProcId, Vec<_>> = IndexVec::from_elem_n(Vec::new(), nprocs);
        let mut summary_uses: IndexVec<ProcId, Vec<_>> = IndexVec::from_elem_n(Vec::new(), nprocs);
        for lvl in scc_levels(&pre) {
            let summaries = par::run_indexed(jobs, &lvl, |_, &ci| {
                defuse::summarize_scc(
                    program,
                    &pre,
                    &sets,
                    &sccs[ci],
                    &summary_defs,
                    &summary_uses,
                )
            });
            for (&ci, (defs, uses)) in lvl.iter().zip(summaries) {
                for &praw in &sccs[ci] {
                    summary_defs[ProcId::new(praw)] = defs.clone();
                    summary_uses[ProcId::new(praw)] = uses.clone();
                }
            }
        }

        // Pass 3: full D̂/Û sets, independent per procedure; merged in
        // procedure order so interning is deterministic.
        let parts = par::run_indexed(jobs, &pids, |_, &pid| {
            defuse::relay_sets_for_proc(program, &pre, pid, &sets, &summary_defs, &summary_uses)
        });
        defuse::finish(sets, summary_defs, summary_uses, parts)
    });

    let (deps, segments) = timers.time("dep", || {
        let source = IntervalDepSource::new(program, &pre, &du);
        let segments = par::run_indexed(jobs, &pids, |_, &pid| {
            depgen::proc_dep_edges(program, &source, pid)
        });
        let deps = depgen::assemble(&source, options, segments.clone());
        (deps, segments)
    });

    let (values, sparse_values, iterations, degraded) = timers.time("fix", || {
        let spec = IntervalSparseSpec {
            program,
            pre: &pre,
            du: &du,
        };
        let plan = WideningPlan::for_program(program, widening);
        let solved = sparse::solve_backend(backend, program, &icfg, &deps, &spec, &plan, budget);
        let sparse_values = keep_internals.then(|| solved.values.clone());
        let values: FxHashMap<Cp, State> = solved
            .values
            .into_iter()
            .map(|(cp, m)| (cp, State::from_pmap(m)))
            .collect();
        (values, sparse_values, solved.iterations, solved.degraded)
    });

    // The result outlives the check stage: the path-condition triage layer
    // evaluates dominating guards against the same fixpoint the alarms came
    // from (and its `degraded` flag gates that layer off entirely).
    let result = IntervalResult {
        engine: Engine::Sparse,
        values,
        stats: AnalysisStats {
            iterations,
            num_locs: du.locs.len(),
            degraded,
            ..AnalysisStats::default()
        },
    };
    let (mut diags, fingerprint) = timers.time("check", || {
        (
            checker::check_all(program, &result, &pre),
            fingerprint_values(&result.values),
        )
    });

    let triage_degraded = timers.time("triage", || {
        let topts = TriageOptions {
            engine: Engine::Sparse,
            depgen: options,
            dep_backend: backend,
            widening,
            budget: triage::derived_budget(iterations, budget),
            mode: triage_mode,
        };
        triage::discharge(program, &pre, &result, &mut diags, &topts).degraded
    });

    let procs = pids
        .iter()
        .filter(|&&pid| !program.procs[pid].is_external)
        .map(|&pid| ProcArtifact {
            name: program.procs[pid].name.clone(),
            summary_defs: du.summary_defs[pid]
                .iter()
                .map(|l| format!("{l:?}"))
                .collect(),
            summary_uses: du.summary_uses[pid]
                .iter()
                .map(|l| format!("{l:?}"))
                .collect(),
            dep_segment: segments[pid.index()]
                .iter()
                .map(|&(loc, from, to, ret)| {
                    [
                        u64::from(loc),
                        from.proc.index() as u64,
                        from.node.index() as u64,
                        to.proc.index() as u64,
                        to.node.index() as u64,
                        u64::from(ret),
                    ]
                })
                .collect(),
        })
        .collect();

    let analysis = UnitAnalysis {
        procs,
        interface: interface::unit_interface(program, &pre, &du),
        diags,
        triage_degraded,
        fingerprint,
        iterations,
        num_locs: du.locs.len(),
        dep_edges_raw: deps.stats.raw_edges,
        dep_edges: deps.stats.final_edges,
        degraded,
    };
    let internals = sparse_values.map(|sparse_values| UnitInternals {
        pre,
        du,
        deps,
        sparse_values,
        degraded,
    });
    (analysis, internals)
}

/// Order-independent content hash of a value map: every binding rendered to
/// one line, lines sorted, the sorted list hashed.
fn fingerprint_values(values: &FxHashMap<Cp, State>) -> u64 {
    let mut lines: Vec<String> = Vec::new();
    for (cp, state) in values {
        for (l, v) in state.iter() {
            lines.push(format!("{cp} {l:?} = {v:?}"));
        }
    }
    lines.sort_unstable();
    fxhash::hash_one(&lines)
}
