//! Deterministic fork/join helper built on scoped threads.
//!
//! Work items are claimed from a shared atomic counter (so a slow item does
//! not stall the items behind it) and every worker tags its results with the
//! item index; the caller gets results back in *input order* regardless of
//! which thread ran what when. That index-ordered merge is what makes the
//! whole pipeline's output independent of `--jobs`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, using up to `jobs` worker threads, and returns
/// the results in input order. With `jobs <= 1` (or a single item) this runs
/// inline on the caller's thread — no thread is ever spawned for nothing.
///
/// `f` must be deterministic in `(index, item)`; the scheduler guarantees
/// only that each item runs exactly once, not on which thread.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_interruptible(jobs, items, || false, f)
        .into_iter()
        .map(|r| r.expect("uninterrupted run completes every item"))
        .collect()
}

/// [`run_indexed`] with graceful-shutdown support: `stop` is polled before
/// each item is *claimed*. Once it returns `true`, no new items start, but
/// items already in flight run to completion (drain semantics) — so a slot
/// is either the item's full result or `None`, never a half-result. The
/// returned vector always has one slot per input item, in input order.
pub fn run_indexed_interruptible<T, R, F, S>(
    jobs: usize,
    items: &[T],
    stop: S,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: Fn() -> bool + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        for (i, t) in items.iter().enumerate() {
            slots.push((!stop()).then(|| f(i, t)));
        }
        return slots;
    }

    let next = AtomicUsize::new(0);
    // A worker panic is re-raised *on the calling thread* with its original
    // payload, so callers that isolate faults (the unit loop's
    // `catch_unwind`) see exactly the panic the work item raised.
    let scoped = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    let mut done = Vec::new();
                    loop {
                        if stop() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, f(i, &items[i])));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Result<Vec<_>, _>>()
    });
    let per_worker: Vec<Vec<(usize, R)>> = match scoped {
        Ok(Ok(batches)) => batches,
        Ok(Err(payload)) | Err(payload) => std::panic::resume_unwind(payload),
    };

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for batch in per_worker {
        for (i, r) in batch {
            debug_assert!(slots[i].is_none(), "item {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 7] {
            let out = run_indexed(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_indexed(4, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn stop_skips_unclaimed_items_but_keeps_slots() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<usize> = (0..10).collect();
        // Sequential path: stop after item 3 completes, deterministically.
        let stop = AtomicBool::new(false);
        let out = run_indexed_interruptible(
            1,
            &items,
            || stop.load(Ordering::Relaxed),
            |i, &x| {
                if i == 3 {
                    stop.store(true, Ordering::Relaxed);
                }
                x * 2
            },
        );
        assert_eq!(out.len(), 10);
        assert_eq!(out[..4], [Some(0), Some(2), Some(4), Some(6)]);
        assert!(out[4..].iter().all(Option::is_none));
    }

    #[test]
    fn stop_before_start_skips_everything() {
        let items: Vec<usize> = (0..5).collect();
        for jobs in [1, 3] {
            let out = run_indexed_interruptible(jobs, &items, || true, |_, &x| x);
            assert_eq!(out.len(), 5);
            assert!(out.iter().all(Option::is_none));
        }
    }
}
