//! Graceful-shutdown plumbing: SIGINT/SIGTERM → a drained batch, not a
//! dead one.
//!
//! [`install`] registers handlers (via the C runtime's `signal`, declared
//! here directly so no FFI crate is needed) whose only action is setting a
//! process-global flag — the one operation that is async-signal-safe. The
//! pipeline's unit loop polls [`requested`] before *claiming* each unit:
//! in-flight units finish (their results are journaled and reported),
//! unclaimed units are skipped, and the run flushes a partial report marked
//! `"interrupted": true` so nothing computed before the signal is lost. A
//! follow-up `--resume` picks up exactly where the drain stopped.
//!
//! [`request`]/[`reset`] expose the same flag to tests, which cannot send
//! real signals to themselves without taking the whole test harness down.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // A relaxed store is async-signal-safe; everything else is not.
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// No signal story off Unix; runs are simply not interruptible.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers. Call once, from the binary's
/// entry point — the flag is process-global, so installing from a library
/// context would surprise the embedding application.
pub fn install() {
    sys::install();
}

/// Whether a shutdown has been requested (by a signal or by [`request`]).
pub fn requested() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Requests a shutdown programmatically (tests; embedders with their own
/// signal handling).
pub fn request() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Clears the flag so a later run in the same process starts fresh (tests).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_roundtrip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
