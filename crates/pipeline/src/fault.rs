//! Deterministic fault injection for the batch driver.
//!
//! A [`FaultPlan`] names, per unit *index*, faults to inject while the
//! pipeline runs: worker panics, budget exhaustion, cache-entry corruption
//! after a store, and transient cache IO errors. Plans are plain data —
//! built explicitly, parsed from a CLI spec ([`FaultPlan::parse`]), or
//! drawn from a seeded RNG ([`FaultPlan::seeded`]) — so every injected
//! failure is reproducible: the same plan over the same corpus produces the
//! same report, byte for byte, at any `--jobs` value.
//!
//! The injection points live in the pipeline itself (`run`, `cache`), which
//! keeps the faulted code path identical to the production path right up to
//! the induced failure.
//!
//! The serve daemon reuses the same plan format with a different index
//! space: `sga serve --faults panic@2,stall@3=200` keys faults by *round
//! number* (1-based edit rounds) instead of unit index, injecting them on
//! the engine thread after the round's sources are persisted — so a
//! panicked round loses no edit and the supervisor's recovery is testable.

use sga_core::budget::Budget;

/// How to damage a just-written cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Cut the file roughly in half (simulates a killed writer on a
    /// filesystem without atomic rename, or a torn copy).
    Truncate,
    /// Flip one bit in the middle of the file (simulates media rot).
    BitFlip,
    /// Rewrite the payload with a *valid* checksum over wrong content
    /// (simulates semantic rot the envelope cannot catch — a buggy writer,
    /// a bit flipped before checksumming). Only the `--validate` oracle's
    /// recompute-and-compare pass detects it.
    Forge,
}

/// One fault, aimed at one unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The unit's worker panics mid-analysis.
    Panic,
    /// The unit's fixpoint runs under a tiny step budget and degrades.
    BudgetExhaust {
        /// The injected `max_steps` value.
        max_steps: u64,
    },
    /// The unit's cache entry is corrupted right after it is stored.
    CorruptStore {
        /// The damage to apply.
        mode: CorruptionMode,
    },
    /// The unit's cache store fails with a synthetic IO error on its first
    /// `fail_first` attempts (exercises the bounded-backoff retry; values
    /// above the retry limit make the store fail outright).
    IoError {
        /// Number of leading attempts to fail.
        fail_first: u32,
    },
    /// The whole *process* aborts (`std::process::abort`) the moment this
    /// unit's worker claims it — a deterministic stand-in for OOM kills and
    /// CI timeouts, for exercising journal replay (`--resume`).
    Abort,
    /// The unit's worker sleeps this long before analyzing — opens a
    /// deterministic window for signal-delivery tests.
    Stall {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// A graceful-shutdown request (as if SIGTERM arrived) fires when this
    /// unit's worker claims it: the unit itself completes (drain), units
    /// not yet claimed are skipped and the report is marked `interrupted`.
    Stop,
    /// The unit's worker reserves this many MiB of address space and then
    /// dies (allocation failure under `RLIMIT_AS`, or a deterministic abort
    /// standing in for the OOM killer once the reservation succeeds).
    /// Uncatchable in-process — exactly what `--isolation process` exists
    /// to contain.
    Oom {
        /// MiB of address space to claim.
        mb: u64,
    },
    /// The unit's worker overflows its stack (unbounded recursion). Like
    /// `Oom`, fatal to whichever process runs the unit.
    StackOverflow,
    /// The unit's worker busy-spins — a *non-cooperative* stall no budget
    /// meter ever observes — for this long, then dies. Under `--isolation
    /// process` with a `--worker-timeout-ms` below `ms`, the wall-clock
    /// supervisor SIGKILLs it first.
    Spin {
        /// Busy-spin duration in milliseconds.
        ms: u64,
    },
}

impl FaultKind {
    /// The directive name this kind parses from (`oom@I=MB` → `"oom"`).
    pub fn directive(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::BudgetExhaust { .. } => "budget",
            FaultKind::CorruptStore {
                mode: CorruptionMode::Truncate,
            } => "truncate",
            FaultKind::CorruptStore {
                mode: CorruptionMode::BitFlip,
            } => "bitflip",
            FaultKind::CorruptStore {
                mode: CorruptionMode::Forge,
            } => "forge",
            FaultKind::IoError { .. } => "io",
            FaultKind::Abort => "abort",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Stop => "stop",
            FaultKind::Oom { .. } => "oom",
            FaultKind::StackOverflow => "stackoverflow",
            FaultKind::Spin { .. } => "spin",
        }
    }
}

/// A reproducible set of faults, keyed by unit index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds one fault aimed at `unit`.
    pub fn add(mut self, unit: usize, kind: FaultKind) -> FaultPlan {
        self.faults.push((unit, kind));
        self
    }

    /// Unit indices the plan touches (with duplicates preserved, in plan
    /// order) — the "faulted set" determinism tests exclude.
    pub fn faulted_units(&self) -> Vec<usize> {
        self.faults.iter().map(|&(u, _)| u).collect()
    }

    /// Whether `unit`'s worker should panic.
    pub fn should_panic(&self, unit: usize) -> bool {
        self.faults
            .iter()
            .any(|(u, k)| *u == unit && matches!(k, FaultKind::Panic))
    }

    /// The injected budget for `unit`, if any.
    pub fn budget_for(&self, unit: usize) -> Option<Budget> {
        self.faults.iter().find_map(|(u, k)| match k {
            FaultKind::BudgetExhaust { max_steps } if *u == unit => {
                Some(Budget::with_max_steps(*max_steps))
            }
            _ => None,
        })
    }

    /// The post-store corruption for `unit`'s cache entry, if any.
    pub fn corruption_for(&self, unit: usize) -> Option<CorruptionMode> {
        self.faults.iter().find_map(|(u, k)| match k {
            FaultKind::CorruptStore { mode } if *u == unit => Some(*mode),
            _ => None,
        })
    }

    /// How many leading store attempts for `unit` fail with a synthetic IO
    /// error (0 = none).
    pub fn io_fail_count(&self, unit: usize) -> u32 {
        self.faults
            .iter()
            .find_map(|(u, k)| match k {
                FaultKind::IoError { fail_first } if *u == unit => Some(*fail_first),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Whether the process should hard-abort when `unit`'s worker starts.
    pub fn should_abort(&self, unit: usize) -> bool {
        self.faults
            .iter()
            .any(|(u, k)| *u == unit && matches!(k, FaultKind::Abort))
    }

    /// How long `unit`'s worker should sleep before analyzing, if at all.
    pub fn stall_ms(&self, unit: usize) -> Option<u64> {
        self.faults.iter().find_map(|(u, k)| match k {
            FaultKind::Stall { ms } if *u == unit => Some(*ms),
            _ => None,
        })
    }

    /// Whether a graceful-shutdown request fires when `unit`'s worker
    /// starts.
    pub fn should_stop(&self, unit: usize) -> bool {
        self.faults
            .iter()
            .any(|(u, k)| *u == unit && matches!(k, FaultKind::Stop))
    }

    /// MiB of address space `unit`'s worker should claim before dying, if
    /// any.
    pub fn oom_mb(&self, unit: usize) -> Option<u64> {
        self.faults.iter().find_map(|(u, k)| match k {
            FaultKind::Oom { mb } if *u == unit => Some(*mb),
            _ => None,
        })
    }

    /// Whether `unit`'s worker should overflow its stack.
    pub fn should_stackoverflow(&self, unit: usize) -> bool {
        self.faults
            .iter()
            .any(|(u, k)| *u == unit && matches!(k, FaultKind::StackOverflow))
    }

    /// How long `unit`'s worker should busy-spin (non-cooperatively) before
    /// dying, if at all.
    pub fn spin_ms(&self, unit: usize) -> Option<u64> {
        self.faults.iter().find_map(|(u, k)| match k {
            FaultKind::Spin { ms } if *u == unit => Some(*ms),
            _ => None,
        })
    }

    /// Directives the serve daemon cannot interpret, in plan order
    /// (deduplicated). The daemon keys faults by *round attempt*, not unit
    /// index, and only `panic@ROUND` and `stall@ROUND=MS` have a meaning
    /// there — the rest are batch-driver directives (cache corruption,
    /// process death, journal replay) that a daemon plan must reject
    /// loudly instead of silently ignoring.
    pub fn serve_unsupported(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for (_, kind) in &self.faults {
            if matches!(kind, FaultKind::Panic | FaultKind::Stall { .. }) {
                continue;
            }
            let name = kind.directive();
            if !out.contains(&name) {
                out.push(name);
            }
        }
        out
    }

    /// Parses a CLI fault spec: comma-separated directives
    /// `panic@I` | `budget@I=STEPS` | `truncate@I` | `bitflip@I` |
    /// `forge@I` | `io@I=N` | `abort@I` | `stall@I=MS` | `stop@I` |
    /// `oom@I=MB` | `stackoverflow@I` | `spin@I=MS`,
    /// where `I` is a unit index (the serve daemon reads `I` as a 1-based
    /// round attempt instead, and accepts only `panic` and `stall`).
    /// Example: `panic@2,budget@0=50,io@1=2`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for raw in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (head, arg) = match raw.split_once('=') {
                Some((h, a)) => (h, Some(a)),
                None => (raw, None),
            };
            let (kind, unit) = head
                .split_once('@')
                .ok_or_else(|| format!("fault `{raw}`: expected KIND@UNIT"))?;
            let unit: usize = unit
                .parse()
                .map_err(|_| format!("fault `{raw}`: bad unit index `{unit}`"))?;
            let arg_num = |what: &str| -> Result<u64, String> {
                arg.ok_or_else(|| format!("fault `{raw}`: `{kind}` needs ={what}"))?
                    .parse()
                    .map_err(|_| format!("fault `{raw}`: bad {what}"))
            };
            let kind = match kind {
                "panic" => FaultKind::Panic,
                "budget" => FaultKind::BudgetExhaust {
                    max_steps: arg_num("STEPS")?,
                },
                "truncate" => FaultKind::CorruptStore {
                    mode: CorruptionMode::Truncate,
                },
                "bitflip" => FaultKind::CorruptStore {
                    mode: CorruptionMode::BitFlip,
                },
                "forge" => FaultKind::CorruptStore {
                    mode: CorruptionMode::Forge,
                },
                "io" => FaultKind::IoError {
                    fail_first: arg_num("N")? as u32,
                },
                "abort" => FaultKind::Abort,
                "stall" => FaultKind::Stall { ms: arg_num("MS")? },
                "stop" => FaultKind::Stop,
                "oom" => FaultKind::Oom { mb: arg_num("MB")? },
                "stackoverflow" => FaultKind::StackOverflow,
                "spin" => FaultKind::Spin { ms: arg_num("MS")? },
                other => return Err(format!("fault `{raw}`: unknown kind `{other}`")),
            };
            plan = plan.add(unit, kind);
        }
        Ok(plan)
    }

    /// Draws one random fault per kind from a seeded RNG over `units` unit
    /// indices — a reproducible chaos preset for stress tests.
    pub fn seeded(seed: u64, units: usize) -> FaultPlan {
        use rand::{Rng, SeedableRng};
        if units == 0 {
            return FaultPlan::none();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        plan = plan.add(rng.gen_range(0..units), FaultKind::Panic);
        plan = plan.add(
            rng.gen_range(0..units),
            FaultKind::BudgetExhaust {
                max_steps: rng.gen_range(1..64),
            },
        );
        let mode = if rng.gen_range(0..2) == 0 {
            CorruptionMode::Truncate
        } else {
            CorruptionMode::BitFlip
        };
        plan = plan.add(rng.gen_range(0..units), FaultKind::CorruptStore { mode });
        plan = plan.add(
            rng.gen_range(0..units),
            FaultKind::IoError {
                fail_first: rng.gen_range(1..3),
            },
        );
        plan
    }
}

// ---- fatal fault executors ---------------------------------------------
//
// The executors for the three process-killing faults live here so the batch
// driver (thread mode: the fault takes the parent down, by design) and the
// isolated worker (process mode: the fault takes only the worker down) run
// the *same* death, not two approximations of it.

/// Claims `mb` MiB of address space, then dies. Under an `RLIMIT_AS` below
/// `mb` the reservation itself fails and Rust's allocation-failure handler
/// aborts; otherwise the (untouched, so RSS-free) reservation succeeds and
/// an explicit abort stands in for the OOM killer. Either way the process
/// hosting the unit is gone, deterministically.
pub(crate) fn trigger_oom(mb: u64) -> ! {
    let bytes = (mb as usize).saturating_mul(1 << 20);
    let reservation: Vec<u8> = Vec::with_capacity(bytes.max(1));
    std::hint::black_box(&reservation);
    std::process::abort();
}

/// Overflows the stack with unbounded recursion (each frame pins a buffer
/// so the optimizer cannot collapse the recursion into a loop).
pub(crate) fn trigger_stackoverflow() -> ! {
    // The recursion is the whole point: every call pushes a real frame
    // until the guard page faults.
    #[allow(unconditional_recursion)]
    fn dive(depth: u64) -> u64 {
        let frame = [depth; 512];
        std::hint::black_box(&frame);
        dive(depth + 1) ^ std::hint::black_box(frame[0])
    }
    let _ = std::hint::black_box(dive(0));
    // Unreachable: the recursion faults first. Satisfies the `!` return.
    std::process::abort();
}

/// Busy-spins — no sleeping, no budget metering, no cancellation points —
/// for `ms` wall-clock milliseconds, then dies. A worker under a shorter
/// `--worker-timeout-ms` is SIGKILLed mid-spin instead.
pub(crate) fn trigger_spin(ms: u64) -> ! {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
    let mut x = 0u64;
    while std::time::Instant::now() < deadline {
        x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(1));
    }
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("panic@2, budget@0=50, truncate@1, bitflip@3, io@4=2").unwrap();
        assert!(plan.should_panic(2));
        assert!(!plan.should_panic(0));
        assert_eq!(plan.budget_for(0), Some(Budget::with_max_steps(50)));
        assert_eq!(plan.budget_for(2), None);
        assert_eq!(plan.corruption_for(1), Some(CorruptionMode::Truncate));
        assert_eq!(plan.corruption_for(3), Some(CorruptionMode::BitFlip));
        assert_eq!(plan.io_fail_count(4), 2);
        assert_eq!(plan.io_fail_count(2), 0);
        assert_eq!(plan.faulted_units(), vec![2, 0, 1, 3, 4]);
    }

    #[test]
    fn parse_durability_faults() {
        let plan = FaultPlan::parse("abort@1,stall@2=250,stop@3,forge@0").unwrap();
        assert!(plan.should_abort(1));
        assert!(!plan.should_abort(0));
        assert_eq!(plan.stall_ms(2), Some(250));
        assert_eq!(plan.stall_ms(1), None);
        assert!(plan.should_stop(3));
        assert!(!plan.should_stop(2));
        assert_eq!(plan.corruption_for(0), Some(CorruptionMode::Forge));
        assert!(FaultPlan::parse("stall@2").is_err());
        assert!(FaultPlan::parse("abort@x").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("budget@1").is_err());
        assert!(FaultPlan::parse("explode@1").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_isolation_faults() {
        let plan = FaultPlan::parse("oom@4=64,stackoverflow@1,spin@6=5000").unwrap();
        assert_eq!(plan.oom_mb(4), Some(64));
        assert_eq!(plan.oom_mb(1), None);
        assert!(plan.should_stackoverflow(1));
        assert!(!plan.should_stackoverflow(4));
        assert_eq!(plan.spin_ms(6), Some(5000));
        assert_eq!(plan.spin_ms(4), None);
        assert!(FaultPlan::parse("oom@1").is_err());
        assert!(FaultPlan::parse("spin@1").is_err());
        assert!(FaultPlan::parse("oom@1=x").is_err());
    }

    #[test]
    fn serve_rejects_what_it_cannot_interpret() {
        let daemon_ok = FaultPlan::parse("panic@1,stall@2=100").unwrap();
        assert!(daemon_ok.serve_unsupported().is_empty());
        let mixed = FaultPlan::parse("panic@1,abort@2,oom@3=64,abort@4,spin@5=10").unwrap();
        assert_eq!(mixed.serve_unsupported(), vec!["abort", "oom", "spin"]);
    }

    #[test]
    fn seeded_is_reproducible() {
        assert_eq!(FaultPlan::seeded(42, 8), FaultPlan::seeded(42, 8));
        assert_ne!(FaultPlan::seeded(42, 8), FaultPlan::seeded(43, 8));
        assert!(FaultPlan::seeded(7, 0).is_empty());
    }
}
