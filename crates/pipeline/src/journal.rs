//! Write-ahead unit journal: the durability half of crash recovery.
//!
//! As each unit finishes — analyzed, degraded, invalid, or crashed — the
//! driver appends one record to `journal/` under the cache root (or an
//! explicit `journal_dir`) *before* the unit's cache store. A rerun with
//! `--resume` replays those records: journaled units return their recorded
//! report object verbatim (no recompute, no cache lookup), and only the
//! units the crash cut short are analyzed. Because the record carries the
//! rendered per-unit JSON, a resumed report is byte-identical to an
//! uninterrupted run's.
//!
//! The write-ahead ordering is load-bearing: journaling *before* storing
//! means a crash can never leave a unit cached but unjournaled — which
//! would flip that unit's recorded `"cache": "miss"` into a `"hit"` on
//! resume and break byte-identity.
//!
//! On disk the journal is one file per record, `NNNN-KKKK.json` (unit index,
//! unit key), each wrapped in the same checksummed `{checksum, payload}`
//! envelope as cache entries and written with the same temp-file + rename
//! dance ([`crate::cache`]); a torn or rotten record simply fails to decode
//! and its unit is recomputed. Records are keyed by the unit's cache key, so
//! editing a source file or changing analysis options invalidates its
//! record naturally.

use crate::cache;
use sga_utils::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Journal record schema version (inside the envelope payload).
pub const JOURNAL_FORMAT: u32 = 1;

/// How a journaled unit failed, when it did — preserved so a resumed
/// `--fail-fast` run reports the same error class as the original.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Failure {
    /// The frontend rejected the unit.
    Frontend,
    /// The unit's worker panicked.
    Panic,
}

impl Failure {
    fn as_str(self) -> &'static str {
        match self {
            Failure::Frontend => "frontend",
            Failure::Panic => "panic",
        }
    }

    fn from_str(s: &str) -> Option<Failure> {
        match s {
            "frontend" => Some(Failure::Frontend),
            "panic" => Some(Failure::Panic),
            _ => None,
        }
    }
}

/// One committed unit outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// The unit's index in the project's deterministic order.
    pub index: usize,
    /// The unit's display name (cross-checked on replay).
    pub name: String,
    /// The unit's cache key (source × options × format — cross-checked on
    /// replay, so stale records never resurrect).
    pub key: u64,
    /// How the unit failed, if it did.
    pub failure: Option<Failure>,
    /// The rendered per-unit report object, replayed verbatim.
    pub unit: Json,
}

/// An open journal directory.
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) a journal rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
        })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, index: usize, key: u64) -> PathBuf {
        self.dir.join(format!("{index:04}-{key:016x}.json"))
    }

    /// Commits one record: checksummed envelope, atomic write.
    pub fn record(&self, rec: &JournalRecord) -> std::io::Result<()> {
        let mut payload = Json::obj()
            .with("schema", JOURNAL_FORMAT)
            .with("index", rec.index)
            .with("name", rec.name.as_str())
            .with("key", format!("{:016x}", rec.key))
            .with("unit", rec.unit.clone());
        if let Some(f) = rec.failure {
            payload.set("failure", f.as_str());
        }
        let path = self.path_of(rec.index, rec.key);
        cache::write_atomic(&path, cache::seal(payload).to_pretty().as_bytes())
    }

    /// Loads every decodable record, keyed by unit index. Damaged records
    /// (torn writes, bit rot, stale schema) are skipped — their units are
    /// simply recomputed — and duplicate indices keep the lexicographically
    /// last file, deterministically.
    pub fn load(&self) -> BTreeMap<usize, JournalRecord> {
        let mut records = BTreeMap::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return records;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Some(rec) = Json::parse(&text).ok().as_ref().and_then(decode) {
                records.insert(rec.index, rec);
            }
        }
        records
    }

    /// Removes every record (and stranded temp file), keeping the
    /// directory. Called when a run starts fresh and when it completes —
    /// the journal only ever holds the *current* run's progress.
    pub fn clear(&self) -> std::io::Result<()> {
        for entry in std::fs::read_dir(&self.dir)?.flatten() {
            let path = entry.path();
            if path.is_file() {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

fn decode(j: &Json) -> Option<JournalRecord> {
    let payload = cache::unseal(j)?;
    if payload.get("schema")?.as_u64()? != u64::from(JOURNAL_FORMAT) {
        return None;
    }
    let failure = match payload.get("failure") {
        Some(f) => Some(Failure::from_str(f.as_str()?)?),
        None => None,
    };
    Some(JournalRecord {
        index: payload.get("index")?.as_u64()? as usize,
        name: payload.get("name")?.as_str()?.to_string(),
        key: u64::from_str_radix(payload.get("key")?.as_str()?, 16).ok()?,
        failure,
        unit: payload.get("unit")?.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::temp_dir;

    fn sample_record(index: usize, failure: Option<Failure>) -> JournalRecord {
        JournalRecord {
            index,
            name: format!("unit{index:03}"),
            key: 0xABCD + index as u64,
            failure,
            unit: Json::obj()
                .with("name", format!("unit{index:03}"))
                .with("outcome", if failure.is_some() { "crashed" } else { "ok" })
                .with("diagnostics", Vec::<Json>::new()),
        }
    }

    #[test]
    fn record_load_roundtrip() {
        let journal = Journal::open(&temp_dir("journal-roundtrip")).unwrap();
        let recs = [
            sample_record(0, None),
            sample_record(2, Some(Failure::Panic)),
            sample_record(1, Some(Failure::Frontend)),
        ];
        for r in &recs {
            journal.record(r).unwrap();
        }
        let loaded = journal.load();
        assert_eq!(loaded.len(), 3);
        for r in &recs {
            assert_eq!(loaded.get(&r.index), Some(r));
        }
    }

    #[test]
    fn damaged_records_are_skipped_not_fatal() {
        let journal = Journal::open(&temp_dir("journal-damage")).unwrap();
        journal.record(&sample_record(0, None)).unwrap();
        journal.record(&sample_record(1, None)).unwrap();
        // Tear record 1 in half, leave a stranded temp file, and drop in
        // unrelated garbage; only record 0 should survive.
        let torn = journal.path_of(1, 0xABCE);
        let text = std::fs::read_to_string(&torn).unwrap();
        std::fs::write(&torn, &text[..text.len() / 2]).unwrap();
        std::fs::write(journal.dir().join("0003-beef.json.tmp"), b"torn").unwrap();
        std::fs::write(journal.dir().join("noise.json"), b"{}").unwrap();
        let loaded = journal.load();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains_key(&0));
    }

    #[test]
    fn clear_empties_the_journal() {
        let journal = Journal::open(&temp_dir("journal-clear")).unwrap();
        journal.record(&sample_record(0, None)).unwrap();
        journal.record(&sample_record(1, None)).unwrap();
        assert_eq!(journal.load().len(), 2);
        journal.clear().unwrap();
        assert!(journal.load().is_empty());
        assert!(journal.dir().is_dir());
    }
}
