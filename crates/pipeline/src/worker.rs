//! Process-isolated unit execution: the `--isolation process` backend.
//!
//! Thread-mode fault containment (`catch_unwind` + cooperative budgets)
//! cannot survive everything a pathological translation unit can do:
//! `std::process::abort`, stack overflow, allocation failure, and
//! non-cooperative spins all take the whole batch — or the serve daemon —
//! down with them. This module re-executes the current binary as a
//! single-unit worker (`sga __worker`, a hidden subcommand) per unit, so
//! those deaths land on a disposable process:
//!
//! * **Hard limits.** The worker applies `RLIMIT_AS` (from
//!   `--worker-mem-mb`) and an `RLIMIT_CPU` backstop (derived from
//!   `--worker-timeout-ms`) to itself via raw-FFI `setrlimit` before
//!   touching the unit — enforcement the cooperative
//!   [`sga_core::budget::Budget`] cannot give.
//! * **Wall-clock supervision.** The parent polls the worker against
//!   `--worker-timeout-ms` and SIGKILLs a stalled one; `RLIMIT_CPU` catches
//!   the case where the supervisor itself is wedged.
//! * **Sealed pipe protocol.** Request and response travel over
//!   stdin/stdout in the cache's checksummed `{checksum, payload}` envelope
//!   ([`crate::cache::seal`]), so a torn write from a dying worker is
//!   *detected* — it fails the checksum and counts as a death, never as a
//!   half-result.
//! * **Kill, retry, degrade.** A dead worker is retried once; a unit that
//!   kills both attempts degrades to the existing `crashed` outcome (the
//!   run finishes, exit 3) instead of failing the run. Cooperative budget
//!   exhaustion inside the worker still comes back `degraded` — the two
//!   outcomes stay distinct.
//!
//! Division of labor: the worker performs the cache *load* (and
//! validate-mode cross-check); the parent keeps the write-ahead ordering —
//! journal record before cache store — exactly as in thread mode, so
//! `--resume` replays byte-identically. Isolation is run mechanics, not
//! semantics: it joins neither the cache key nor the rendered
//! `source_hash`, and canonical reports are byte-identical across modes
//! (the CI isolation-gate enforces it).

use crate::cache::{self, Cache};
use crate::fault::FaultPlan;
use crate::journal::Failure;
use crate::unit::UnitAnalysis;
use crate::{PipelineOptions, Processed, UnitCtx, UnitInput};
use sga_core::budget::{Budget, WorkerLimits};
use sga_core::depstore::DepBackend;
use sga_core::triage::TriageMode;
use sga_core::widening::{WideningConfig, WideningStrategy};
use sga_utils::stats::StageTimers;
use sga_utils::Json;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The hidden argv\[1\] that turns the binary into a single-unit worker.
pub const WORKER_ARG: &str = "__worker";

/// Wire-format version of the request/response payloads.
const WORKER_FORMAT: u32 = 1;

/// Attempts per unit (1 original + 1 retry) before the unit is recorded
/// `crashed`. Bounded so a unit that deterministically kills its worker
/// cannot stall the batch in a respawn loop.
const WORKER_ATTEMPTS: u32 = 2;

/// Supervisor poll period while a wall-clock limit is armed.
const SUPERVISE_POLL: Duration = Duration::from_millis(5);

/// Where a unit's analysis runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process worker threads (the default): cheapest, survives panics
    /// via `catch_unwind`, but aborts/OOM/stack overflow/hard stalls in one
    /// unit kill the whole run.
    #[default]
    Thread,
    /// One re-exec'd worker process per unit: survives everything thread
    /// mode cannot, at ~one process spawn per analyzed unit.
    Process,
}

impl IsolationMode {
    /// Parses an `--isolation` value.
    pub fn parse(s: &str) -> Option<IsolationMode> {
        match s {
            "thread" => Some(IsolationMode::Thread),
            "process" => Some(IsolationMode::Process),
            _ => None,
        }
    }

    /// The `--isolation` value this mode parses from.
    pub fn as_str(self) -> &'static str {
        match self {
            IsolationMode::Thread => "thread",
            IsolationMode::Process => "process",
        }
    }
}

// ---- containment counters ----------------------------------------------
//
// Process-wide, cumulative: the batch driver reports the delta across its
// run, the serve daemon surfaces the running totals in `status`. Atomics
// because workers are supervised from concurrent scheduler threads.

static KILLED: AtomicUsize = AtomicUsize::new(0);
static RETRIED: AtomicUsize = AtomicUsize::new(0);
static OOM: AtomicUsize = AtomicUsize::new(0);
static STALLS: AtomicUsize = AtomicUsize::new(0);

/// A point-in-time copy of the containment counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IsolationSnapshot {
    /// Worker deaths (any abnormal exit: signal, nonzero status, or a torn
    /// response).
    pub killed: usize,
    /// Deaths that were answered with a retry attempt.
    pub retried: usize,
    /// Deaths whose stderr carries the allocator's out-of-memory signature.
    pub oom: usize,
    /// Deaths inflicted by the wall-clock supervisor (SIGKILL on
    /// `--worker-timeout-ms`).
    pub stalls: usize,
}

impl IsolationSnapshot {
    /// Counter movement since an earlier snapshot.
    pub fn since(&self, earlier: &IsolationSnapshot) -> IsolationSnapshot {
        IsolationSnapshot {
            killed: self.killed - earlier.killed,
            retried: self.retried - earlier.retried,
            oom: self.oom - earlier.oom,
            stalls: self.stalls - earlier.stalls,
        }
    }
}

/// The process-wide containment counters, cumulative since startup.
pub fn stats() -> IsolationSnapshot {
    IsolationSnapshot {
        killed: KILLED.load(Ordering::Relaxed),
        retried: RETRIED.load(Ordering::Relaxed),
        oom: OOM.load(Ordering::Relaxed),
        stalls: STALLS.load(Ordering::Relaxed),
    }
}

// ---- wire format --------------------------------------------------------

/// Everything the worker needs to run one unit, decoded from its stdin.
struct Request {
    input: UnitInput,
    index: usize,
    key: u64,
    render_key: u64,
    budget: Budget,
    limits: WorkerLimits,
    options: PipelineOptions,
    inner_jobs: usize,
    faults: RequestFaults,
}

/// The hard (process-killing) faults delegated into the worker, so the
/// death lands on the worker process instead of the parent.
#[derive(Default)]
struct RequestFaults {
    panic: bool,
    stall_ms: Option<u64>,
    abort: bool,
    oom_mb: Option<u64>,
    stackoverflow: bool,
    spin_ms: Option<u64>,
}

fn opt_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key).and_then(Json::as_u64)
}

/// Renders the sealed request for `input` under the parent's options.
fn encode_request(
    ctx: &UnitCtx,
    i: usize,
    input: &UnitInput,
    key: u64,
    render_key: u64,
    budget: &Budget,
) -> Json {
    let options = ctx.options;
    let faults = &options.faults;
    let mut budget_json = Json::obj();
    if let Some(steps) = budget.max_steps {
        budget_json.set("max_steps", steps as usize);
    }
    if let Some(ms) = budget.timeout_ms {
        budget_json.set("timeout_ms", ms as usize);
    }
    let mut limits_json = Json::obj();
    if let Some(mb) = options.worker_limits.mem_mb {
        limits_json.set("mem_mb", mb as usize);
    }
    if let Some(ms) = options.worker_limits.timeout_ms {
        limits_json.set("timeout_ms", ms as usize);
    }
    let mut faults_json = Json::obj();
    if faults.should_panic(i) {
        faults_json.set("panic", true);
    }
    if let Some(ms) = faults.stall_ms(i) {
        faults_json.set("stall_ms", ms as usize);
    }
    if faults.should_abort(i) {
        faults_json.set("abort", true);
    }
    if let Some(mb) = faults.oom_mb(i) {
        faults_json.set("oom_mb", mb as usize);
    }
    if faults.should_stackoverflow(i) {
        faults_json.set("stackoverflow", true);
    }
    if let Some(ms) = faults.spin_ms(i) {
        faults_json.set("spin_ms", ms as usize);
    }
    let mut payload = Json::obj()
        .with("schema", WORKER_FORMAT)
        .with("name", input.name.as_str())
        .with("index", i)
        .with("source", input.source.as_str())
        .with("key", format!("{key:016x}"))
        .with("render_key", format!("{render_key:016x}"))
        .with("budget", budget_json)
        .with("limits", limits_json)
        .with("faults", faults_json)
        .with("bypass", options.depgen.bypass)
        .with("dep_backend", options.dep_backend.as_str())
        .with("widening", options.widening.strategy.name())
        .with("triage", options.triage.name())
        .with("validate", options.validate)
        .with("quarantine_keep", options.quarantine_keep)
        .with("inner_jobs", ctx.inner_jobs);
    if let Some(dir) = &options.cache_dir {
        payload.set("cache_dir", dir.display().to_string());
    }
    cache::seal(payload)
}

/// Parses and verifies a sealed request; `None` on any damage.
fn decode_request(text: &str) -> Option<Request> {
    let j = Json::parse(text).ok()?;
    let p = cache::unseal(&j)?;
    if p.get("schema")?.as_u64()? != u64::from(WORKER_FORMAT) {
        return None;
    }
    let budget_json = p.get("budget")?;
    let limits_json = p.get("limits")?;
    let faults_json = p.get("faults")?;
    let options = PipelineOptions {
        cache_dir: p.get("cache_dir").and_then(Json::as_str).map(PathBuf::from),
        depgen: sga_core::depgen::DepGenOptions {
            bypass: p.get("bypass")?.as_bool()?,
        },
        dep_backend: DepBackend::parse(p.get("dep_backend")?.as_str()?)?,
        widening: WideningConfig::of(WideningStrategy::parse(p.get("widening")?.as_str()?)?),
        triage: TriageMode::parse(p.get("triage")?.as_str()?)?,
        validate: p.get("validate")?.as_bool()?,
        quarantine_keep: p.get("quarantine_keep")?.as_u64()? as usize,
        // The worker itself always runs in thread mode: isolation does not
        // recurse.
        isolation: IsolationMode::Thread,
        ..PipelineOptions::default()
    };
    Some(Request {
        input: UnitInput {
            name: p.get("name")?.as_str()?.to_string(),
            source: p.get("source")?.as_str()?.to_string(),
        },
        index: p.get("index")?.as_u64()? as usize,
        key: u64::from_str_radix(p.get("key")?.as_str()?, 16).ok()?,
        render_key: u64::from_str_radix(p.get("render_key")?.as_str()?, 16).ok()?,
        budget: Budget {
            max_steps: opt_u64(budget_json, "max_steps"),
            timeout_ms: opt_u64(budget_json, "timeout_ms"),
        },
        limits: WorkerLimits {
            mem_mb: opt_u64(limits_json, "mem_mb"),
            timeout_ms: opt_u64(limits_json, "timeout_ms"),
        },
        inner_jobs: p.get("inner_jobs")?.as_u64()? as usize,
        faults: RequestFaults {
            panic: faults_json.get("panic").and_then(Json::as_bool) == Some(true),
            stall_ms: opt_u64(faults_json, "stall_ms"),
            abort: faults_json.get("abort").and_then(Json::as_bool) == Some(true),
            oom_mb: opt_u64(faults_json, "oom_mb"),
            stackoverflow: faults_json.get("stackoverflow").and_then(Json::as_bool) == Some(true),
            spin_ms: opt_u64(faults_json, "spin_ms"),
        },
        options,
    })
}

/// Renders the sealed response for a processed unit.
fn encode_response(name: &str, p: &Processed) -> Json {
    let mut payload = Json::obj()
        .with("schema", WORKER_FORMAT)
        .with("unit", p.json.clone())
        .with("store", p.store);
    if let Some((kind, message)) = &p.failure {
        payload.set(
            "failure",
            match kind {
                Failure::Frontend => "frontend",
                Failure::Panic => "panic",
            },
        );
        payload.set("error", message.as_str());
    }
    if let Some(a) = &p.analysis {
        // The artifacts ride along in the sealed cache-entry shape, so the
        // parent can store them under write-ahead ordering and the daemon
        // can keep them in memory — without the worker ever writing to the
        // cache itself.
        payload.set("analysis", cache::encode(name, a));
    }
    cache::seal(payload)
}

/// Parses and verifies a sealed response; `None` on any damage (a torn
/// write from a dying worker lands here, not in the report).
fn decode_response(text: &str) -> Option<Processed> {
    let j = Json::parse(text).ok()?;
    let p = cache::unseal(&j)?;
    if p.get("schema")?.as_u64()? != u64::from(WORKER_FORMAT) {
        return None;
    }
    let failure = match p.get("failure") {
        None => None,
        Some(f) => {
            let kind = match f.as_str()? {
                "frontend" => Failure::Frontend,
                "panic" => Failure::Panic,
                _ => return None,
            };
            Some((kind, p.get("error")?.as_str()?.to_string()))
        }
    };
    let analysis: Option<Box<UnitAnalysis>> = match p.get("analysis") {
        Some(a) => Some(Box::new(cache::decode(a)?)),
        None => None,
    };
    Some(Processed {
        json: p.get("unit")?.clone(),
        failure,
        analysis,
        store: p.get("store")?.as_bool()?,
    })
}

// ---- worker side --------------------------------------------------------

/// Applies the request's hard limits to the current process via raw-FFI
/// `setrlimit(2)` — same no-new-deps idiom as the daemon's `setsockopt`
/// and the batch driver's `signal` handler.
#[cfg(target_os = "linux")]
fn apply_limits(limits: &WorkerLimits) {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_CPU: i32 = 0;
    const RLIMIT_AS: i32 = 9;
    extern "C" {
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    let set = |resource: i32, value: u64| {
        let rlim = RLimit {
            cur: value,
            max: value,
        };
        // Failure to tighten a limit is not fatal: the worker still runs,
        // merely unconfined — the supervisor's SIGKILL remains.
        unsafe { setrlimit(resource, &rlim) };
    };
    if let Some(mb) = limits.mem_mb {
        set(RLIMIT_AS, mb.saturating_mul(1 << 20));
    }
    if let Some(secs) = limits.cpu_limit_secs() {
        set(RLIMIT_CPU, secs);
    }
}

#[cfg(not(target_os = "linux"))]
fn apply_limits(_limits: &WorkerLimits) {}

/// The worker entry point: reads one sealed request from stdin, analyzes
/// the unit in-process (thread mode), writes one sealed response to stdout.
/// The host binary dispatches here on `argv[1] == "__worker"` before any
/// other argument parsing. Returns the process exit code.
pub fn worker_main() -> i32 {
    let mut text = String::new();
    if std::io::stdin().read_to_string(&mut text).is_err() {
        eprintln!("sga __worker: cannot read request from stdin");
        return 2;
    }
    let Some(req) = decode_request(&text) else {
        eprintln!("sga __worker: malformed or unverifiable request");
        return 2;
    };
    drop(text);
    apply_limits(&req.limits);
    // Panics are caught and rendered into the response; keep stderr quiet
    // so the parent's death classifier reads only genuine death notices
    // (the allocator's OOM signature, the runtime's stack-overflow note).
    std::panic::set_hook(Box::new(|_| {}));

    // Delegated hard faults fire *inside* the limits, after the request is
    // consumed — the death they cause is exactly the death a pathological
    // unit would cause at this point.
    if let Some(ms) = req.faults.stall_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if req.faults.abort {
        std::process::abort();
    }
    if let Some(mb) = req.faults.oom_mb {
        crate::fault::trigger_oom(mb);
    }
    if req.faults.stackoverflow {
        crate::fault::trigger_stackoverflow();
    }
    if let Some(ms) = req.faults.spin_ms {
        crate::fault::trigger_spin(ms);
    }

    let mut options = req.options;
    if req.faults.panic {
        options.faults = FaultPlan::none().add(req.index, crate::fault::FaultKind::Panic);
    }
    let cache = match &options.cache_dir {
        Some(dir) => match Cache::open(dir) {
            Ok(mut c) => {
                c.set_quarantine_keep(options.quarantine_keep);
                Some(c)
            }
            Err(e) => {
                eprintln!("sga __worker: cannot open cache {}: {e}", dir.display());
                return 2;
            }
        },
        None => None,
    };
    let timers = StageTimers::new();
    let ctx = UnitCtx {
        options: &options,
        cache: cache.as_ref(),
        timers: &timers,
        inner_jobs: req.inner_jobs.max(1),
    };
    let p = crate::process_unit(
        &ctx,
        req.index,
        &req.input,
        req.key,
        req.render_key,
        &req.budget,
    );
    let response = encode_response(&req.input.name, &p).to_compact();
    let mut out = std::io::stdout();
    if out
        .write_all(response.as_bytes())
        .and_then(|()| out.flush())
        .is_err()
    {
        return 2;
    }
    0
}

// ---- parent side --------------------------------------------------------

/// The binary to re-exec as a worker: `$SGA_WORKER_BIN` when set (test
/// harnesses whose own binary has no `__worker` dispatch point it at the
/// `sga` CLI), else the current executable.
fn worker_binary() -> PathBuf {
    match std::env::var_os("SGA_WORKER_BIN") {
        Some(bin) => PathBuf::from(bin),
        None => std::env::current_exe().unwrap_or_else(|_| PathBuf::from("sga")),
    }
}

/// Why one worker attempt yielded no result.
struct Death {
    message: String,
    stalled: bool,
    oom: bool,
}

/// Waits for `child`, SIGKILLing it once `timeout_ms` (when set) elapses.
/// Returns the exit status and whether the supervisor had to kill.
fn supervise(child: &mut Child, timeout_ms: Option<u64>) -> std::io::Result<(ExitStatus, bool)> {
    match timeout_ms {
        None => Ok((child.wait()?, false)),
        Some(ms) => {
            let deadline = Instant::now() + Duration::from_millis(ms);
            loop {
                if let Some(status) = child.try_wait()? {
                    return Ok((status, false));
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    return Ok((child.wait()?, true));
                }
                std::thread::sleep(SUPERVISE_POLL);
            }
        }
    }
}

/// Renders an abnormal exit status.
fn status_cause(status: ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("killed by signal {sig}");
        }
    }
    match status.code() {
        Some(code) => format!("exited with status {code}"),
        None => "died without an exit status".to_string(),
    }
}

/// The allocator prints `memory allocation of N bytes failed` before
/// aborting; the runtime prints `...has overflowed its stack`. The first
/// such line (or any first line) of the worker's stderr, for the death
/// notice and the OOM counter.
fn death_notice(stderr: &[u8]) -> String {
    let text = String::from_utf8_lossy(stderr);
    let line = text.lines().map(str::trim).find(|l| !l.is_empty());
    match line {
        Some(l) if l.chars().count() > 200 => {
            let mut s: String = l.chars().take(200).collect();
            s.push('…');
            s
        }
        Some(l) => l.to_string(),
        None => String::new(),
    }
}

/// Runs one worker attempt end to end: spawn, feed the request, supervise,
/// classify the death or decode the sealed response.
fn one_attempt(request: &str, limits: &WorkerLimits) -> Result<Processed, Death> {
    let bin = worker_binary();
    let mut child = Command::new(&bin)
        .arg(WORKER_ARG)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| Death {
            message: format!("cannot spawn isolated worker {}: {e}", bin.display()),
            stalled: false,
            oom: false,
        })?;

    // Feed, drain, and supervise concurrently: a worker that dies mid-read
    // breaks the writer's pipe (harmless), and a killed worker EOFs its
    // readers — no combination deadlocks.
    let mut stdin = child.stdin.take().expect("piped stdin");
    let request_bytes = request.as_bytes().to_vec();
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(&request_bytes);
    });
    let mut stdout = child.stdout.take().expect("piped stdout");
    let out_reader = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stdout.read_to_string(&mut buf);
        buf
    });
    let mut stderr = child.stderr.take().expect("piped stderr");
    let err_reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let _ = stderr.read_to_end(&mut buf);
        buf
    });

    let supervised = supervise(&mut child, limits.timeout_ms);
    let _ = writer.join();
    let stdout_text = out_reader.join().unwrap_or_default();
    let stderr_bytes = err_reader.join().unwrap_or_default();

    let (status, stalled) = supervised.map_err(|e| Death {
        message: format!("cannot supervise isolated worker: {e}"),
        stalled: false,
        oom: false,
    })?;
    let notice = death_notice(&stderr_bytes);
    let oom = notice.contains("memory allocation of") && notice.contains("failed");
    if stalled {
        let ms = limits.timeout_ms.unwrap_or(0);
        return Err(Death {
            message: format!("isolated worker exceeded the {ms} ms wall-clock limit (SIGKILL)"),
            stalled: true,
            oom,
        });
    }
    if !status.success() {
        let cause = status_cause(status);
        let message = if notice.is_empty() {
            format!("isolated worker {cause}")
        } else {
            format!("isolated worker {cause}: {notice}")
        };
        return Err(Death {
            message,
            stalled: false,
            oom,
        });
    }
    decode_response(&stdout_text).ok_or_else(|| Death {
        message: "isolated worker returned a torn or unverifiable response".to_string(),
        stalled: false,
        oom,
    })
}

/// Analyzes one unit in a supervised worker process, retrying a death once
/// and degrading the unit to the `crashed` outcome when both attempts die.
/// The returned [`Processed`] is shaped exactly like the in-process path's,
/// so the caller's journal/store/report flow does not branch on isolation.
pub(crate) fn run_unit_in_worker(
    ctx: &UnitCtx,
    i: usize,
    input: &UnitInput,
    key: u64,
    render_key: u64,
    budget: &Budget,
) -> Processed {
    let request = encode_request(ctx, i, input, key, render_key, budget).to_compact();
    let limits = &ctx.options.worker_limits;
    let mut last = String::new();
    for attempt in 1..=WORKER_ATTEMPTS {
        match one_attempt(&request, limits) {
            Ok(p) => return p,
            Err(death) => {
                KILLED.fetch_add(1, Ordering::Relaxed);
                if death.stalled {
                    STALLS.fetch_add(1, Ordering::Relaxed);
                }
                if death.oom {
                    OOM.fetch_add(1, Ordering::Relaxed);
                }
                last = death.message;
                if attempt < WORKER_ATTEMPTS {
                    RETRIED.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let message = format!("{last} [{WORKER_ATTEMPTS} attempts]");
    Processed {
        json: crate::render_crashed(&input.name, render_key, &message),
        failure: Some((Failure::Panic, message)),
        analysis: None,
        store: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render_crashed;

    fn ctx_fixture(options: &PipelineOptions) -> (UnitInput, u64, u64, Budget) {
        let input = UnitInput {
            name: "unit000".to_string(),
            source: "int main() { int x = 1; return x; }".to_string(),
        };
        let key = crate::unit_cache_key(options, &input.source);
        (input, key, key, options.budget)
    }

    #[test]
    fn request_roundtrips_through_the_sealed_envelope() {
        let options = PipelineOptions {
            validate: true,
            triage: TriageMode::Octagon,
            faults: FaultPlan::parse("panic@0,oom@0=64,spin@0=10").unwrap(),
            worker_limits: WorkerLimits {
                mem_mb: Some(512),
                timeout_ms: Some(1500),
            },
            ..PipelineOptions::default()
        };
        let timers = StageTimers::new();
        let ctx = UnitCtx {
            options: &options,
            cache: None,
            timers: &timers,
            inner_jobs: 3,
        };
        let (input, key, render_key, budget) = ctx_fixture(&options);
        let sealed = encode_request(&ctx, 0, &input, key, render_key, &budget);
        let req = decode_request(&sealed.to_compact()).expect("request decodes");
        assert_eq!(req.input.name, input.name);
        assert_eq!(req.input.source, input.source);
        assert_eq!(req.key, key);
        assert_eq!(req.limits.mem_mb, Some(512));
        assert_eq!(req.limits.timeout_ms, Some(1500));
        assert_eq!(req.inner_jobs, 3);
        assert!(req.faults.panic);
        assert_eq!(req.faults.oom_mb, Some(64));
        assert_eq!(req.faults.spin_ms, Some(10));
        assert!(!req.faults.abort);
        assert!(req.options.validate);
        assert_eq!(req.options.triage, TriageMode::Octagon);
        assert_eq!(req.options.isolation, IsolationMode::Thread);
    }

    #[test]
    fn torn_request_and_response_fail_the_checksum() {
        let options = PipelineOptions::default();
        let timers = StageTimers::new();
        let ctx = UnitCtx {
            options: &options,
            cache: None,
            timers: &timers,
            inner_jobs: 1,
        };
        let (input, key, render_key, budget) = ctx_fixture(&options);
        let sealed = encode_request(&ctx, 0, &input, key, render_key, &budget).to_compact();
        assert!(decode_request(&sealed[..sealed.len() / 2]).is_none());
        let mut flipped = sealed.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(decode_request(&String::from_utf8_lossy(&flipped)).is_none());

        let p = Processed {
            json: render_crashed("u", 7, "boom"),
            failure: Some((Failure::Panic, "boom".to_string())),
            analysis: None,
            store: false,
        };
        let resp = encode_response("u", &p).to_compact();
        let whole = decode_response(&resp).expect("intact response decodes");
        assert_eq!(whole.failure, Some((Failure::Panic, "boom".to_string())));
        assert!(decode_response(&resp[..resp.len() - 8]).is_none());
    }

    #[test]
    fn oom_death_notice_is_recognized() {
        let stderr = b"memory allocation of 4294967296 bytes failed\n";
        let notice = death_notice(stderr);
        assert!(notice.contains("memory allocation of") && notice.contains("failed"));
        assert_eq!(death_notice(b""), "");
    }
}
