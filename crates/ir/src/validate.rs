//! Structural well-formedness checks for IR programs.
//!
//! Lowering bugs (dangling edges, nodes unreachable from entry, commands
//! referencing variables of the wrong procedure) surface as hard-to-debug
//! analysis misbehaviour; `validate` catches them at construction time. The
//! frontend and the synthetic generator both run it in debug builds and
//! tests run it on every constructed program.

use crate::expr::{Callee, Cmd, Expr, LVal};
use crate::proc::ProcId;
use crate::program::{Program, VarId};
use sga_utils::graph::reverse_postorder;
use sga_utils::Idx;

/// A structural defect found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// The offending procedure.
    pub proc: ProcId,
    /// Description of the defect.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc {}: {}", self.proc, self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Checks structural invariants; returns all defects found.
pub fn validate(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let num_vars = program.vars.len();
    let num_procs = program.procs.len();

    if program.main.index() >= num_procs {
        errors.push(ValidationError {
            proc: program.main,
            message: "main procedure id out of range".into(),
        });
        return errors;
    }

    for (pid, proc) in program.procs.iter_enumerated() {
        let mut err = |message: String| errors.push(ValidationError { proc: pid, message });

        // Edge endpoints in range and preds/succs mirrored.
        for (n, succs) in proc.succs.iter_enumerated() {
            for &s in succs {
                if s.index() >= proc.nodes.len() {
                    err(format!("edge {n} -> {s} targets a missing node"));
                } else if !proc.preds[s].contains(&n) {
                    err(format!("edge {n} -> {s} missing from preds"));
                }
            }
        }
        for (n, preds) in proc.preds.iter_enumerated() {
            for &p in preds {
                if p.index() >= proc.nodes.len() || !proc.succs[p].contains(&n) {
                    err(format!("pred edge {p} -> {n} missing from succs"));
                }
            }
        }

        // Exit has no successors; every non-exit reachable node should flow on.
        if !proc.succs[proc.exit].is_empty() {
            err("exit node has successors".into());
        }

        if !proc.is_external {
            // Reachability: all nodes reachable from entry. The exit node is
            // exempt — a procedure that never returns (infinite loop) has a
            // legitimately unreachable exit.
            let reached = reverse_postorder(&proc.cfg_view(), proc.entry.index());
            let mut missing = proc.nodes.len() - reached.len();
            if missing > 0 && !reached.contains(&proc.exit.index()) {
                missing -= 1;
            }
            if missing > 0 {
                err(format!(
                    "{missing} of {} nodes unreachable from entry",
                    proc.nodes.len()
                ));
            }
        }

        // Variable references in range.
        let check_var = |v: VarId| v.index() < num_vars;
        let mut vars_of_cmd: Vec<VarId> = Vec::new();
        for node in &proc.nodes {
            vars_of_cmd.clear();
            collect_cmd_vars(&node.cmd, &mut vars_of_cmd);
            for &v in &vars_of_cmd {
                if !check_var(v) {
                    err(format!("command references missing variable {v}"));
                }
            }
            if let Cmd::Call {
                callee: Callee::Direct(t),
                ..
            } = &node.cmd
            {
                if t.index() >= num_procs {
                    err(format!("call to missing procedure {t}"));
                }
            }
        }
    }
    errors
}

/// Panicking wrapper for construction-time use.
///
/// # Panics
///
/// Panics with the full defect list if the program is malformed.
pub fn assert_valid(program: &Program) {
    let errors = validate(program);
    assert!(
        errors.is_empty(),
        "malformed IR:\n{}",
        errors
            .iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn collect_expr_vars(e: &Expr, out: &mut Vec<VarId>) {
    match e {
        Expr::Const(_) | Expr::Unknown | Expr::AddrOfProc(_) => {}
        Expr::Var(x) | Expr::Field(x, _) | Expr::AddrOf(x) | Expr::AddrOfField(x, _) => {
            out.push(*x)
        }
        Expr::Deref(inner) | Expr::DerefField(inner, _) | Expr::Unop(_, inner) => {
            collect_expr_vars(inner, out)
        }
        Expr::Binop(_, a, b) => {
            collect_expr_vars(a, out);
            collect_expr_vars(b, out);
        }
    }
}

fn collect_cmd_vars(c: &Cmd, out: &mut Vec<VarId>) {
    let mut lv = |l: &LVal| out.push(l.base());
    match c {
        Cmd::Skip => {}
        Cmd::Assign(l, e) | Cmd::Alloc(l, e) => {
            lv(l);
            collect_expr_vars(e, out);
        }
        Cmd::Assume(cond) => {
            collect_expr_vars(&cond.lhs, out);
            collect_expr_vars(&cond.rhs, out);
        }
        Cmd::Call { ret, callee, args } => {
            if let Some(l) = ret {
                lv(l);
            }
            if let Callee::Indirect(e) = callee {
                collect_expr_vars(e, out);
            }
            for a in args {
                collect_expr_vars(a, out);
            }
        }
        Cmd::Return(Some(e)) => collect_expr_vars(e, out),
        Cmd::Return(None) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::program::{FieldTable, VarInfo, VarKind};
    use sga_utils::IndexVec;

    fn one_proc_program(build: impl FnOnce(&mut ProcBuilder)) -> Program {
        let mut vars: IndexVec<VarId, VarInfo> = IndexVec::new();
        let ret = vars.push(VarInfo {
            name: "__ret".into(),
            kind: VarKind::Return(ProcId::new(0)),
            address_taken: false,
        });
        let mut b = ProcBuilder::new("main", ret);
        build(&mut b);
        let mut procs = IndexVec::new();
        let main = procs.push(b.finish());
        Program {
            procs,
            vars,
            fields: FieldTable::new().into_names(),
            main,
        }
    }

    #[test]
    fn valid_program_passes() {
        let p = one_proc_program(|b| {
            let exit = b.exit();
            let entry = b.entry();
            b.edge(entry, exit);
        });
        assert!(validate(&p).is_empty());
    }

    #[test]
    fn unreachable_node_reported() {
        let p = one_proc_program(|b| {
            let entry = b.entry();
            let exit = b.exit();
            b.edge(entry, exit);
            b.node(Cmd::Skip); // dangling
        });
        let errs = validate(&p);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unreachable"));
    }

    #[test]
    fn missing_variable_reported() {
        let p = one_proc_program(|b| {
            let entry = b.entry();
            let exit = b.exit();
            let n = b.node(Cmd::Assign(LVal::Var(VarId::new(99)), Expr::Const(0)));
            b.edge(entry, n);
            b.edge(n, exit);
        });
        let errs = validate(&p);
        assert!(errs.iter().any(|e| e.message.contains("missing variable")));
    }

    #[test]
    #[should_panic(expected = "malformed IR")]
    fn assert_valid_panics_on_bad_ir() {
        let p = one_proc_program(|b| {
            let entry = b.entry();
            let exit = b.exit();
            b.edge(entry, exit);
            b.node(Cmd::Skip);
        });
        assert_valid(&p);
    }
}
