//! Call graphs over the IR.
//!
//! Two flavours are needed:
//!
//! * the *syntactic* call graph (direct calls only), available before any
//!   analysis — enough for Table 1's `maxSCC` column when a program has no
//!   function pointers;
//! * the *resolved* call graph, where indirect calls are closed using a
//!   points-to result. The analysis crate builds this one by passing the
//!   pre-analysis' function-pointer targets into [`CallGraph::build`]
//!   (§5: "we use the flow-insensitive analysis to prior resolve function
//!   pointers").

use crate::expr::{Callee, Cmd};
use crate::proc::ProcId;
use crate::program::{Cp, Program};
use sga_utils::graph::{AdjGraph, Scc};
use sga_utils::{FxHashMap, FxHashSet, Idx, IndexVec};

/// A call graph: per-procedure callee sets plus call-site resolution.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Callees of each procedure (deduplicated, deterministic order).
    pub callees: IndexVec<ProcId, Vec<ProcId>>,
    /// Callers of each procedure.
    pub callers: IndexVec<ProcId, Vec<ProcId>>,
    /// Resolved targets of every call site.
    pub site_targets: FxHashMap<Cp, Vec<ProcId>>,
    /// SCC decomposition (components in reverse topological order:
    /// callees before callers).
    pub scc: Scc,
}

impl CallGraph {
    /// Builds the call graph. `resolve_indirect` maps an indirect call site
    /// to its possible targets; pass a closure returning `&[]`-equivalent for
    /// the syntactic graph.
    pub fn build(
        program: &Program,
        mut resolve_indirect: impl FnMut(Cp) -> Vec<ProcId>,
    ) -> CallGraph {
        let n = program.procs.len();
        let mut callee_sets: IndexVec<ProcId, FxHashSet<ProcId>> =
            IndexVec::from_elem_n(FxHashSet::default(), n);
        let mut site_targets: FxHashMap<Cp, Vec<ProcId>> = FxHashMap::default();

        for (pid, proc) in program.procs.iter_enumerated() {
            for (nid, node) in proc.nodes.iter_enumerated() {
                if let Cmd::Call { callee, .. } = &node.cmd {
                    let cp = Cp::new(pid, nid);
                    let mut targets = match callee {
                        Callee::Direct(t) => vec![*t],
                        Callee::Indirect(_) => resolve_indirect(cp),
                    };
                    targets.sort_unstable();
                    targets.dedup();
                    for &t in &targets {
                        callee_sets[pid].insert(t);
                    }
                    site_targets.insert(cp, targets);
                }
            }
        }

        let mut graph = AdjGraph::new(n);
        let mut callees: IndexVec<ProcId, Vec<ProcId>> = IndexVec::with_capacity(n);
        let mut callers: IndexVec<ProcId, Vec<ProcId>> = IndexVec::from_elem_n(Vec::new(), n);
        for pid in program.procs.indices() {
            let mut cs: Vec<ProcId> = callee_sets[pid].iter().copied().collect();
            cs.sort_unstable();
            for &c in &cs {
                graph.add_edge(pid.index(), c.index());
                callers[c].push(pid);
            }
            callees.push(cs);
        }
        let scc = Scc::compute(&graph);
        CallGraph {
            callees,
            callers,
            site_targets,
            scc,
        }
    }

    /// Builds the syntactic (direct-calls-only) call graph.
    pub fn syntactic(program: &Program) -> CallGraph {
        Self::build(program, |_| Vec::new())
    }

    /// Size of the largest SCC — Table 1's `maxSCC`.
    pub fn max_scc_size(&self) -> usize {
        self.scc.max_component_size()
    }

    /// Whether `p` participates in recursion (an SCC of size > 1, or a
    /// direct self-call).
    pub fn is_recursive(&self, p: ProcId) -> bool {
        self.scc.in_cycle(p.index()) || self.callees[p].contains(&p)
    }

    /// Procedures in bottom-up order (callees before callers), SCCs
    /// flattened. This is the summary-computation order used by the
    /// dependency generator.
    pub fn bottom_up_sccs(&self) -> &[Vec<usize>] {
        &self.scc.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::Callee;
    use crate::program::{FieldTable, VarInfo, VarKind};
    use sga_utils::IndexVec;

    /// Builds `main -> f -> g -> f` (f,g recursive) with g also calling h.
    fn sample_program() -> Program {
        let mut vars: IndexVec<crate::program::VarId, VarInfo> = IndexVec::new();
        let mut mk_proc = |name: &str, id: usize, callees: Vec<usize>| {
            let ret = vars.push(VarInfo {
                name: format!("__ret_{name}"),
                kind: VarKind::Return(ProcId::new(id)),
                address_taken: false,
            });
            let mut b = ProcBuilder::new(name, ret);
            let mut cur = b.entry();
            for c in callees {
                let n = b.node(Cmd::Call {
                    ret: None,
                    callee: Callee::Direct(ProcId::new(c)),
                    args: vec![],
                });
                b.edge(cur, n);
                cur = n;
            }
            let exit = b.exit();
            b.edge(cur, exit);
            b.finish()
        };
        let main = mk_proc("main", 0, vec![1]);
        let f = mk_proc("f", 1, vec![2]);
        let g = mk_proc("g", 2, vec![1, 3]);
        let h = mk_proc("h", 3, vec![]);
        let mut procs = IndexVec::new();
        let main_id = procs.push(main);
        procs.push(f);
        procs.push(g);
        procs.push(h);
        Program {
            procs,
            vars,
            fields: FieldTable::new().into_names(),
            main: main_id,
        }
    }

    #[test]
    fn detects_recursion_cycle() {
        let program = sample_program();
        let cg = CallGraph::syntactic(&program);
        assert_eq!(cg.max_scc_size(), 2);
        assert!(cg.is_recursive(ProcId::new(1)));
        assert!(cg.is_recursive(ProcId::new(2)));
        assert!(!cg.is_recursive(ProcId::new(0)));
        assert!(!cg.is_recursive(ProcId::new(3)));
    }

    #[test]
    fn callers_inverse_of_callees() {
        let program = sample_program();
        let cg = CallGraph::syntactic(&program);
        for pid in program.procs.indices() {
            for &c in &cg.callees[pid] {
                assert!(cg.callers[c].contains(&pid));
            }
        }
    }

    #[test]
    fn bottom_up_order_puts_leaf_first() {
        let program = sample_program();
        let cg = CallGraph::syntactic(&program);
        let order = cg.bottom_up_sccs();
        let pos = |p: usize| order.iter().position(|c| c.contains(&p)).unwrap();
        assert!(pos(3) < pos(1), "h before the f-g cycle");
        assert!(pos(1) < pos(0), "cycle before main");
    }
}
