//! Program-shape metrics — the columns of the paper's Table 1.

use crate::callgraph::CallGraph;
use crate::program::Program;

/// The characteristics Table 1 reports for each benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramMetrics {
    /// Number of (non-external) functions in the program.
    pub functions: usize,
    /// Number of IR statements (control points carrying real commands).
    pub statements: usize,
    /// Number of basic blocks (maximal straight-line chains).
    pub blocks: usize,
    /// Size of the largest call-graph SCC.
    pub max_scc: usize,
}

impl ProgramMetrics {
    /// Measures `program`, using `callgraph` for the SCC column (pass a
    /// resolved call graph when the program has function pointers).
    pub fn measure(program: &Program, callgraph: &CallGraph) -> ProgramMetrics {
        let functions = program.procs.iter().filter(|p| !p.is_external).count();
        let statements = program
            .procs
            .iter()
            .filter(|p| !p.is_external)
            .map(|p| p.nodes.iter().filter(|n| !n.cmd.is_skip()).count())
            .sum();
        let blocks = program
            .procs
            .iter()
            .filter(|p| !p.is_external)
            .map(|p| p.num_basic_blocks())
            .sum();
        ProgramMetrics {
            functions,
            statements,
            blocks,
            max_scc: callgraph.max_scc_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::{Cmd, Expr, LVal};
    use crate::program::{FieldTable, VarId, VarInfo, VarKind};
    use crate::ProcId;
    use sga_utils::{Idx, IndexVec};

    #[test]
    fn counts_statements_not_skips() {
        let mut vars: IndexVec<VarId, VarInfo> = IndexVec::new();
        let ret = vars.push(VarInfo {
            name: "__ret".into(),
            kind: VarKind::Return(ProcId::new(0)),
            address_taken: false,
        });
        let x = vars.push(VarInfo {
            name: "x".into(),
            kind: VarKind::Global,
            address_taken: false,
        });
        let mut b = ProcBuilder::new("main", ret);
        let end = b.chain(
            b.entry(),
            vec![
                Cmd::Assign(LVal::Var(x), Expr::Const(1)),
                Cmd::Assign(LVal::Var(x), Expr::Const(2)),
            ],
        );
        let exit = b.exit();
        b.edge(end, exit);
        let mut procs = IndexVec::new();
        let main = procs.push(b.finish());
        let program = Program {
            procs,
            vars,
            fields: FieldTable::new().into_names(),
            main,
        };
        let cg = CallGraph::syntactic(&program);
        let m = ProgramMetrics::measure(&program, &cg);
        assert_eq!(m.functions, 1);
        assert_eq!(m.statements, 2); // entry/exit skips excluded
        assert_eq!(m.blocks, 1);
        assert_eq!(m.max_scc, 1);
    }
}
