//! Procedures: one-command-per-node control-flow graphs.

use crate::expr::Cmd;
use crate::program::VarId;
use sga_utils::graph::DiGraph;
use sga_utils::{new_index, IndexVec};

new_index!(pub struct ProcId, "p");
new_index!(pub struct NodeId, "n");

/// One CFG node — a control point carrying a single command.
#[derive(Clone, Debug)]
pub struct Node {
    /// The command executed at this point.
    pub cmd: Cmd,
    /// Source line, for diagnostics (0 when synthetic).
    pub line: u32,
}

/// A procedure: its signature and its control-flow graph.
#[derive(Clone, Debug)]
pub struct Proc {
    /// Source-level name.
    pub name: String,
    /// Formal parameters, in order.
    pub params: Vec<VarId>,
    /// Declared locals and temporaries.
    pub locals: Vec<VarId>,
    /// Synthetic variable receiving `return e` values.
    pub ret_var: VarId,
    /// The nodes (control points).
    pub nodes: IndexVec<NodeId, Node>,
    /// Forward edges.
    pub succs: IndexVec<NodeId, Vec<NodeId>>,
    /// Backward edges (kept in sync by the builder).
    pub preds: IndexVec<NodeId, Vec<NodeId>>,
    /// Entry point (a `Skip` node).
    pub entry: NodeId,
    /// Exit point (a `Skip` node every `return` jumps to).
    pub exit: NodeId,
    /// Whether the procedure body is unknown (external/library): the analysis
    /// treats calls to it as returning ⊤ with no side effects (§6).
    pub is_external: bool,
}

impl Proc {
    /// Successors of `n`.
    pub fn succs_of(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n]
    }

    /// Predecessors of `n`.
    pub fn preds_of(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n]
    }

    /// Number of control points.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// A [`DiGraph`] view of the CFG for the graph algorithms.
    pub fn cfg_view(&self) -> CfgView<'_> {
        CfgView { proc: self }
    }

    /// Counts *basic blocks*: maximal straight-line chains. Used for the
    /// `Blocks` column of Table 1.
    pub fn num_basic_blocks(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut leaders = 0usize;
        for n in self.nodes.indices() {
            let preds = self.preds_of(n);
            let is_leader =
                n == self.entry || preds.len() != 1 || self.succs_of(preds[0]).len() != 1;
            if is_leader {
                leaders += 1;
            }
        }
        leaders
    }
}

/// Borrowed [`DiGraph`] adapter over a procedure CFG.
#[derive(Clone, Copy, Debug)]
pub struct CfgView<'a> {
    proc: &'a Proc,
}

impl DiGraph for CfgView<'_> {
    fn num_nodes(&self) -> usize {
        self.proc.nodes.len()
    }
    fn successors(&self, node: usize) -> Vec<usize> {
        self.proc.succs[NodeId(node as u32)]
            .iter()
            .map(|n| n.0 as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::{Cmd, Expr, LVal};
    use sga_utils::graph::reverse_postorder;
    use sga_utils::Idx;

    fn linear_proc() -> Proc {
        let mut b = ProcBuilder::new("f", VarId::new(0));
        let n1 = b.node(Cmd::Assign(LVal::Var(VarId::new(1)), Expr::Const(1)));
        let n2 = b.node(Cmd::Assign(LVal::Var(VarId::new(2)), Expr::Const(2)));
        b.edge(b.entry(), n1);
        b.edge(n1, n2);
        b.edge(n2, b.exit());
        b.finish()
    }

    #[test]
    fn preds_mirror_succs() {
        let p = linear_proc();
        for n in p.nodes.indices() {
            for &s in p.succs_of(n) {
                assert!(p.preds_of(s).contains(&n));
            }
        }
    }

    #[test]
    fn linear_chain_is_one_block() {
        let p = linear_proc();
        // entry..exit is one straight line => 1 leader (entry).
        assert_eq!(p.num_basic_blocks(), 1);
        let rpo = reverse_postorder(&p.cfg_view(), p.entry.index());
        assert_eq!(rpo.len(), p.num_nodes());
    }
}
