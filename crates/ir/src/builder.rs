//! Convenient construction of procedure CFGs.
//!
//! Used by the frontend's lowering pass, by the synthetic program generator,
//! and pervasively by tests. The builder keeps `preds` in sync with `succs`
//! and pins entry/exit skip nodes at indices 0 and 1.
//!
//! # Examples
//!
//! ```
//! use sga_ir::{Cmd, Expr, LVal, ProcBuilder, VarId};
//! use sga_utils::Idx;
//!
//! let x = VarId::new(1);
//! let mut b = ProcBuilder::new("f", VarId::new(0));
//! let n = b.node(Cmd::Assign(LVal::Var(x), Expr::Const(42)));
//! b.edge(b.entry(), n);
//! b.edge(n, b.exit());
//! let proc = b.finish();
//! assert_eq!(proc.num_nodes(), 3);
//! ```

use crate::expr::Cmd;
use crate::proc::{Node, NodeId, Proc};
use crate::program::VarId;
use sga_utils::IndexVec;

/// Incremental builder for a [`Proc`].
#[derive(Debug)]
pub struct ProcBuilder {
    name: String,
    params: Vec<VarId>,
    locals: Vec<VarId>,
    ret_var: VarId,
    nodes: IndexVec<NodeId, Node>,
    succs: IndexVec<NodeId, Vec<NodeId>>,
    preds: IndexVec<NodeId, Vec<NodeId>>,
    entry: NodeId,
    exit: NodeId,
    is_external: bool,
}

impl ProcBuilder {
    /// Starts a procedure named `name` whose return variable is `ret_var`.
    /// Entry and exit `Skip` nodes are created immediately.
    pub fn new(name: impl Into<String>, ret_var: VarId) -> Self {
        let mut nodes = IndexVec::new();
        let entry = nodes.push(Node {
            cmd: Cmd::Skip,
            line: 0,
        });
        let exit = nodes.push(Node {
            cmd: Cmd::Skip,
            line: 0,
        });
        let succs = IndexVec::from_elem_n(Vec::new(), 2);
        let preds = IndexVec::from_elem_n(Vec::new(), 2);
        ProcBuilder {
            name: name.into(),
            params: Vec::new(),
            locals: Vec::new(),
            ret_var,
            nodes,
            succs,
            preds,
            entry,
            exit,
            is_external: false,
        }
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Declares a formal parameter.
    pub fn param(&mut self, v: VarId) -> &mut Self {
        self.params.push(v);
        self
    }

    /// Declares a local or temporary.
    pub fn local(&mut self, v: VarId) -> &mut Self {
        self.locals.push(v);
        self
    }

    /// Marks the procedure as external (unknown body).
    pub fn external(&mut self) -> &mut Self {
        self.is_external = true;
        self
    }

    /// Adds a node carrying `cmd`, returning its id.
    pub fn node(&mut self, cmd: Cmd) -> NodeId {
        self.node_at_line(cmd, 0)
    }

    /// Adds a node with source-line info.
    pub fn node_at_line(&mut self, cmd: Cmd, line: u32) -> NodeId {
        let id = self.nodes.push(Node { cmd, line });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds the edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate edges, which indicate a lowering bug.
    pub fn edge(&mut self, from: NodeId, to: NodeId) {
        assert!(
            !self.succs[from].contains(&to),
            "duplicate edge {from:?} -> {to:?} in {}",
            self.name
        );
        self.succs[from].push(to);
        self.preds[to].push(from);
    }

    /// Adds a straight-line chain of commands after `from`, returning the
    /// last node (or `from` if `cmds` is empty).
    pub fn chain(&mut self, from: NodeId, cmds: impl IntoIterator<Item = Cmd>) -> NodeId {
        let mut cur = from;
        for cmd in cmds {
            let n = self.node(cmd);
            self.edge(cur, n);
            cur = n;
        }
        cur
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Finishes the procedure.
    pub fn finish(self) -> Proc {
        Proc {
            name: self.name,
            params: self.params,
            locals: self.locals,
            ret_var: self.ret_var,
            nodes: self.nodes,
            succs: self.succs,
            preds: self.preds,
            entry: self.entry,
            exit: self.exit,
            is_external: self.is_external,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, Expr, LVal, RelOp};
    use sga_utils::Idx;

    #[test]
    fn chain_builds_straight_line() {
        let mut b = ProcBuilder::new("f", VarId::new(0));
        let end = b.chain(
            b.entry(),
            vec![
                Cmd::Assign(LVal::Var(VarId::new(1)), Expr::Const(1)),
                Cmd::Assign(LVal::Var(VarId::new(2)), Expr::Const(2)),
            ],
        );
        b.edge(end, b.exit());
        let p = b.finish();
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.succs_of(p.entry).len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut b = ProcBuilder::new("f", VarId::new(0));
        b.edge(b.entry(), b.exit());
        b.edge(b.entry(), b.exit());
    }

    #[test]
    fn branch_shape() {
        let x = VarId::new(1);
        let mut b = ProcBuilder::new("f", VarId::new(0));
        let cond = Cond::new(Expr::Var(x), RelOp::Lt, Expr::Const(10));
        let t = b.node(Cmd::Assume(cond.clone()));
        let f = b.node(Cmd::Assume(cond.negate()));
        b.edge(b.entry(), t);
        b.edge(b.entry(), f);
        b.edge(t, b.exit());
        b.edge(f, b.exit());
        let p = b.finish();
        assert_eq!(p.succs_of(p.entry).len(), 2);
        assert_eq!(p.preds_of(p.exit).len(), 2);
    }
}
