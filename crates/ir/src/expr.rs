//! Expressions, l-values, conditions and commands.
//!
//! The shapes here mirror the abstract semantics in §3.1 of the paper. The
//! frontend flattens side-effecting subexpressions into temporaries, so
//! expressions are pure and commands have at most one store/call each — which
//! is what makes the per-command definition/use sets of §3.2 well defined.

use crate::proc::ProcId;
use crate::program::{FieldId, VarId};

/// Binary operators on abstract values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` — also pointer/array arithmetic (shifts array offsets).
    Add,
    /// `-` — also pointer difference.
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// Comparison producing 0/1; kept as data so conditions can reuse it.
    Cmp(RelOp),
    /// `&&` (logical, on already-evaluated scalar values)
    And,
    /// `||`
    Or,
    /// Bitwise ops, shifts — abstracted conservatively by the domains.
    Bits,
}

/// Relational operators used in conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl RelOp {
    /// The operator asserting the negation (`!(a < b)` is `a >= b`).
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
        }
    }

    /// The operator with swapped operands (`a < b` is `b > a`).
    pub fn swap(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Gt,
            RelOp::Le => RelOp::Ge,
            RelOp::Gt => RelOp::Lt,
            RelOp::Ge => RelOp::Le,
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0/1).
    Not,
    /// Bitwise complement — abstracted conservatively.
    BitNot,
}

/// Pure expressions (`e` in the paper's grammar).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal `n`.
    Const(i64),
    /// Variable read `x`.
    Var(VarId),
    /// Struct-field read `x.f`.
    Field(VarId, FieldId),
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// `e->f`, i.e. `(*e).f`.
    DerefField(Box<Expr>, FieldId),
    /// Address-of `&x`.
    AddrOf(VarId),
    /// Address of a field `&x.f`.
    AddrOfField(VarId, FieldId),
    /// A function's address (function pointer constant).
    AddrOfProc(ProcId),
    /// Binary operation `e₁ ⊕ e₂`; `Add`/`Sub` double as pointer arithmetic.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unop(UnOp, Box<Expr>),
    /// An unknown external value (input, unmodeled library result): ⊤.
    Unknown,
}

impl Expr {
    /// Convenience constructor for `e₁ ⊕ e₂`.
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for `*e`.
    pub fn deref(e: Expr) -> Expr {
        Expr::Deref(Box::new(e))
    }

    /// All variables syntactically read by the expression (`V(e)` in §4.2),
    /// *excluding* variables only reached through a dereference (those are
    /// discovered semantically via the pre-analysis).
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) | Expr::Unknown | Expr::AddrOfProc(_) => {}
            Expr::Var(x) | Expr::Field(x, _) => out.push(*x),
            Expr::AddrOf(_) | Expr::AddrOfField(_, _) => {}
            Expr::Deref(e) | Expr::DerefField(e, _) | Expr::Unop(_, e) => e.vars(out),
            Expr::Binop(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }

    /// Whether the expression contains a dereference anywhere.
    pub fn has_deref(&self) -> bool {
        match self {
            Expr::Deref(_) | Expr::DerefField(_, _) => true,
            Expr::Binop(_, a, b) => a.has_deref() || b.has_deref(),
            Expr::Unop(_, e) => e.has_deref(),
            _ => false,
        }
    }
}

/// Assignment targets after lowering.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LVal {
    /// `x := e`
    Var(VarId),
    /// `x.f := e`
    Field(VarId, FieldId),
    /// `*x := e` — the paper's store command; targets come from `x`'s
    /// points-to set.
    Deref(VarId),
    /// `x->f := e`
    DerefField(VarId, FieldId),
}

impl LVal {
    /// The variable syntactically mentioned by the l-value.
    pub fn base(&self) -> VarId {
        match *self {
            LVal::Var(x) | LVal::Field(x, _) | LVal::Deref(x) | LVal::DerefField(x, _) => x,
        }
    }

    /// Whether the target is reached through a pointer (indirect store).
    pub fn is_indirect(&self) -> bool {
        matches!(self, LVal::Deref(_) | LVal::DerefField(_, _))
    }
}

/// A branch condition, `assume(lhs ⋈ rhs)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Left operand.
    pub lhs: Expr,
    /// Relation.
    pub op: RelOp,
    /// Right operand.
    pub rhs: Expr,
}

impl Cond {
    /// Builds a condition.
    pub fn new(lhs: Expr, op: RelOp, rhs: Expr) -> Self {
        Cond { lhs, op, rhs }
    }

    /// The negated condition (taken on the false branch).
    pub fn negate(&self) -> Cond {
        Cond {
            lhs: self.lhs.clone(),
            op: self.op.negate(),
            rhs: self.rhs.clone(),
        }
    }
}

/// Who a call targets.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A direct call `f(...)`.
    Direct(ProcId),
    /// An indirect call through a function pointer expression.
    Indirect(Expr),
}

/// One command (statement); each CFG node carries exactly one.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cmd {
    /// No-op (also used for procedure entry/exit markers and joins).
    Skip,
    /// `lv := e`.
    Assign(LVal, Expr),
    /// `lv := alloc(size)` — dynamic allocation; the allocation site is the
    /// control point itself.
    Alloc(LVal, Expr),
    /// `assume(cond)` — the true/false branch guard.
    Assume(Cond),
    /// A procedure call `ret := callee(args)`.
    Call {
        /// Where the return value goes, if used.
        ret: Option<LVal>,
        /// Call target.
        callee: Callee,
        /// Actual arguments (pure expressions).
        args: Vec<Expr>,
    },
    /// `return e` — assigns the synthetic return variable and jumps to exit.
    Return(Option<Expr>),
}

impl Cmd {
    /// Whether this command is a no-op for every abstract semantics
    /// (the "identity function" case that sparse *evaluation* techniques
    /// remove; our sparse *analysis* subsumes this).
    pub fn is_skip(&self) -> bool {
        matches!(self, Cmd::Skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_utils::Idx;

    #[test]
    fn relop_negate_involution() {
        for op in [
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
            RelOp::Eq,
            RelOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.swap().swap(), op);
        }
    }

    #[test]
    fn expr_vars_skips_addr_of() {
        let x = VarId::new(0);
        let y = VarId::new(1);
        // &x + y reads only y syntactically.
        let e = Expr::binop(BinOp::Add, Expr::AddrOf(x), Expr::Var(y));
        let mut vs = Vec::new();
        e.vars(&mut vs);
        assert_eq!(vs, vec![y]);
    }

    #[test]
    fn expr_vars_sees_through_deref_base() {
        let p = VarId::new(0);
        // *(p) reads p.
        let e = Expr::deref(Expr::Var(p));
        let mut vs = Vec::new();
        e.vars(&mut vs);
        assert_eq!(vs, vec![p]);
        assert!(e.has_deref());
    }

    #[test]
    fn cond_negation() {
        let c = Cond::new(Expr::Var(VarId::new(0)), RelOp::Lt, Expr::Const(5));
        let n = c.negate();
        assert_eq!(n.op, RelOp::Ge);
        assert_eq!(n.lhs, c.lhs);
    }

    #[test]
    fn lval_base_and_indirection() {
        let x = VarId::new(2);
        let f = FieldId::new(0);
        assert_eq!(LVal::Var(x).base(), x);
        assert!(!LVal::Var(x).is_indirect());
        assert!(LVal::Deref(x).is_indirect());
        assert!(LVal::DerefField(x, f).is_indirect());
        assert!(!LVal::Field(x, f).is_indirect());
    }
}
