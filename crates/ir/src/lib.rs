//! The C-like intermediate representation analyzed by the SGA framework.
//!
//! A [`Program`] is a set of procedures plus a global
//! variable/field table. Each [`Proc`] is a control-flow graph
//! whose nodes each carry one [`Cmd`] — so a node *is* a control
//! point `c ∈ C` in the paper's sense, and the CFG edge relation is the
//! paper's `↪`. The frontend (`sga-cfront`) lowers C source to this IR;
//! the analyses in `sga-core` consume it.
//!
//! The command language follows §3 of the paper, extended with the C
//! features §6.1 mentions (arrays, structures, dynamic allocation, calls and
//! function pointers):
//!
//! ```text
//! cmd ::= skip | x := e | *x := e | x.f := e | x->f := e
//!       | assume(e ⋈ e) | x := alloc(e) | call | return e
//! ```

pub mod builder;
pub mod callgraph;
pub mod expr;
pub mod interp;
pub mod metrics;
pub mod pretty;
pub mod proc;
pub mod program;
pub mod validate;

pub use builder::ProcBuilder;
pub use expr::{BinOp, Callee, Cmd, Cond, Expr, LVal, RelOp, UnOp};
pub use proc::{Node, NodeId, Proc, ProcId};
pub use program::{Cp, FieldId, PointNumbering, Program, VarId, VarInfo, VarKind};
