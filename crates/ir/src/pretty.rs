//! Human-readable dumps of the IR, for debugging and the examples.

use crate::expr::{BinOp, Callee, Cmd, Cond, Expr, LVal, RelOp, UnOp};
use crate::proc::Proc;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders an expression in C-like syntax.
pub fn expr(program: &Program, e: &Expr) -> String {
    match e {
        Expr::Const(n) => n.to_string(),
        Expr::Var(x) => program.var_name(*x).to_string(),
        Expr::Field(x, f) => format!("{}.{}", program.var_name(*x), program.field_name(*f)),
        Expr::Deref(inner) => format!("*({})", expr(program, inner)),
        Expr::DerefField(inner, f) => {
            format!("({})->{}", expr(program, inner), program.field_name(*f))
        }
        Expr::AddrOf(x) => format!("&{}", program.var_name(*x)),
        Expr::AddrOfField(x, f) => {
            format!("&{}.{}", program.var_name(*x), program.field_name(*f))
        }
        Expr::AddrOfProc(p) => format!("&{}", program.procs[*p].name),
        Expr::Binop(op, a, b) => {
            format!("({} {} {})", expr(program, a), binop(*op), expr(program, b))
        }
        Expr::Unop(op, a) => format!("{}({})", unop(*op), expr(program, a)),
        Expr::Unknown => "⊤".to_string(),
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Cmp(r) => relop(r),
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Bits => "<bits>",
    }
}

fn relop(op: RelOp) -> &'static str {
    match op {
        RelOp::Lt => "<",
        RelOp::Le => "<=",
        RelOp::Gt => ">",
        RelOp::Ge => ">=",
        RelOp::Eq => "==",
        RelOp::Ne => "!=",
    }
}

fn unop(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::Not => "!",
        UnOp::BitNot => "~",
    }
}

/// Renders an l-value.
pub fn lval(program: &Program, lv: &LVal) -> String {
    match lv {
        LVal::Var(x) => program.var_name(*x).to_string(),
        LVal::Field(x, f) => format!("{}.{}", program.var_name(*x), program.field_name(*f)),
        LVal::Deref(x) => format!("*{}", program.var_name(*x)),
        LVal::DerefField(x, f) => {
            format!("{}->{}", program.var_name(*x), program.field_name(*f))
        }
    }
}

/// Renders a condition.
pub fn cond(program: &Program, c: &Cond) -> String {
    format!(
        "{} {} {}",
        expr(program, &c.lhs),
        relop(c.op),
        expr(program, &c.rhs)
    )
}

/// Renders one command.
pub fn cmd(program: &Program, c: &Cmd) -> String {
    match c {
        Cmd::Skip => "skip".to_string(),
        Cmd::Assign(lv, e) => format!("{} := {}", lval(program, lv), expr(program, e)),
        Cmd::Alloc(lv, size) => {
            format!("{} := alloc({})", lval(program, lv), expr(program, size))
        }
        Cmd::Assume(c) => format!("assume({})", cond(program, c)),
        Cmd::Call { ret, callee, args } => {
            let callee_str = match callee {
                Callee::Direct(p) => program.procs[*p].name.clone(),
                Callee::Indirect(e) => format!("(*{})", expr(program, e)),
            };
            let args_str: Vec<String> = args.iter().map(|a| expr(program, a)).collect();
            match ret {
                Some(lv) => {
                    format!(
                        "{} := {}({})",
                        lval(program, lv),
                        callee_str,
                        args_str.join(", ")
                    )
                }
                None => format!("{}({})", callee_str, args_str.join(", ")),
            }
        }
        Cmd::Return(Some(e)) => format!("return {}", expr(program, e)),
        Cmd::Return(None) => "return".to_string(),
    }
}

/// Renders a whole procedure with its CFG edges.
pub fn proc(program: &Program, p: &Proc) -> String {
    let mut out = String::new();
    let params: Vec<&str> = p.params.iter().map(|&v| program.var_name(v)).collect();
    let _ = writeln!(out, "proc {}({}) {{", p.name, params.join(", "));
    for (n, node) in p.nodes.iter_enumerated() {
        let succs: Vec<String> = p.succs_of(n).iter().map(|s| format!("{s}")).collect();
        let marker = if n == p.entry {
            " <entry>"
        } else if n == p.exit {
            " <exit>"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {n}: {} -> [{}]{marker}",
            cmd(program, &node.cmd),
            succs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for procedure in &p.procs {
        if !procedure.is_external {
            out.push_str(&proc(p, procedure));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::program::{FieldTable, VarId, VarInfo, VarKind};
    use crate::ProcId;
    use sga_utils::{Idx, IndexVec};

    fn tiny() -> Program {
        let mut vars: IndexVec<VarId, VarInfo> = IndexVec::new();
        let ret = vars.push(VarInfo {
            name: "__ret_main".into(),
            kind: VarKind::Return(ProcId::new(0)),
            address_taken: false,
        });
        let x = vars.push(VarInfo {
            name: "x".into(),
            kind: VarKind::Global,
            address_taken: true,
        });
        let p = vars.push(VarInfo {
            name: "p".into(),
            kind: VarKind::Global,
            address_taken: false,
        });
        let mut b = ProcBuilder::new("main", ret);
        let n1 = b.node(Cmd::Assign(LVal::Var(p), Expr::AddrOf(x)));
        let n2 = b.node(Cmd::Assign(LVal::Deref(p), Expr::Const(7)));
        b.edge(b.entry(), n1);
        b.edge(n1, n2);
        let exit = b.exit();
        b.edge(n2, exit);
        let mut procs = IndexVec::new();
        let main = procs.push(b.finish());
        Program {
            procs,
            vars,
            fields: FieldTable::new().into_names(),
            main,
        }
    }

    #[test]
    fn renders_store_through_pointer() {
        let prog = tiny();
        let text = program(&prog);
        assert!(text.contains("p := &x"), "{text}");
        assert!(text.contains("*p := 7"), "{text}");
        assert!(text.contains("<entry>"));
    }
}
