//! A concrete interpreter for the IR.
//!
//! Executes a program with real values — stack frames, a heap of allocated
//! blocks, struct fields — and records the value every assignment writes at
//! every control point it visits. Its purpose is *testing*: a static
//! analysis claims `X(c)(l)` over-approximates every concrete value `l`
//! takes at `c`; the interpreter produces those concrete values, so the
//! workspace's soundness tests can check the claim run by run.
//!
//! Nondeterminism (`⊤` expressions, external calls) draws from a caller-
//! provided supply, keeping runs reproducible.

use crate::expr::{BinOp, Callee, Cmd, Cond, Expr, LVal, RelOp, UnOp};
use crate::proc::{NodeId, ProcId};
use crate::program::{Cp, FieldId, Program, VarId};
use sga_utils::FxHashMap;

/// A concrete runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum CVal {
    /// An integer.
    Int(i64),
    /// A pointer: addressed cell plus an element offset (pointer
    /// arithmetic moves the offset).
    Ptr(Place, i64),
    /// A function pointer.
    Fn(ProcId),
    /// Never assigned.
    Uninit,
}

impl CVal {
    fn as_int(&self) -> Option<i64> {
        match self {
            CVal::Int(n) => Some(*n),
            CVal::Uninit => Some(0), // uninitialized reads settle on 0
            CVal::Ptr(_, _) | CVal::Fn(_) => None,
        }
    }

    /// C truthiness (used by clients building condition-driven drivers).
    pub fn truthy(&self) -> bool {
        match self {
            CVal::Int(n) => *n != 0,
            CVal::Ptr(_, _) | CVal::Fn(_) => true,
            CVal::Uninit => false,
        }
    }
}

/// A concrete memory cell address (without the pointer offset).
#[derive(Clone, Debug, PartialEq)]
pub enum Place {
    /// A global variable.
    Global(VarId),
    /// A local in a specific frame (frames are numbered from program
    /// start, so recursion distinguishes activations).
    Local(usize, VarId),
    /// A heap block: allocation index plus the allocating control point
    /// (the abstract allocation site, carried for soundness checking).
    Heap(usize, Cp),
}

/// One observation: the command at `cp` wrote `value` into `target`.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Where it happened.
    pub cp: Cp,
    /// The (variable or field) cell written. Heap writes record the
    /// allocation's originating control point instead.
    pub target: ObservedLoc,
    /// The written value.
    pub value: CVal,
}

/// The abstract-location-shaped view of a concrete write target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObservedLoc {
    /// A variable.
    Var(VarId),
    /// A field of a variable.
    Field(VarId, FieldId),
    /// The summarized contents of the allocation made at `Cp`.
    AllocSite(Cp),
    /// A field of the allocation at `Cp`.
    AllocField(Cp, FieldId),
}

/// Why a run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// `main` returned this value.
    Finished(Option<i64>),
    /// The step budget ran out (e.g. an intentional infinite loop).
    OutOfFuel,
    /// The program performed an operation the interpreter rejects
    /// (wild pointer, call through a non-function, stuck branch).
    Trap(String),
    /// The program hit C undefined behaviour (signed overflow, division by
    /// zero); execution stops, and anything before this point is still a
    /// valid observation.
    UndefinedBehaviour(String),
}

/// A completed run: outcome plus the write log.
#[derive(Debug)]
pub struct Run {
    /// How it ended.
    pub outcome: Outcome,
    /// Every write, in execution order.
    pub log: Vec<Observation>,
}

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct InterpConfig {
    /// Values supplied to `main`'s parameters.
    pub main_args: Vec<i64>,
    /// Values drawn (cyclically) for `⊤` expressions and external calls.
    pub unknown_supply: Vec<i64>,
    /// Maximum executed commands.
    pub fuel: usize,
    /// Maximum call depth (runaway recursion ends the run like exhausted
    /// fuel rather than exhausting the host stack).
    pub max_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            main_args: vec![1],
            unknown_supply: vec![7],
            fuel: 200_000,
            max_depth: 1000,
        }
    }
}

struct HeapBlock {
    /// Allocation site.
    site: Cp,
    /// Summarized element cell (the abstract array model keeps one cell per
    /// site; the interpreter mirrors that so observations line up).
    cell: CVal,
    /// Field cells.
    fields: FxHashMap<FieldId, CVal>,
}

struct Interp<'p> {
    program: &'p Program,
    globals: FxHashMap<VarId, CVal>,
    global_fields: FxHashMap<(VarId, FieldId), CVal>,
    frames: Vec<FxHashMap<VarId, CVal>>,
    frame_fields: Vec<FxHashMap<(VarId, FieldId), CVal>>,
    heap: Vec<HeapBlock>,
    unknown_supply: Vec<i64>,
    unknown_next: usize,
    fuel: usize,
    max_depth: usize,
    log: Vec<Observation>,
}

impl<'p> Interp<'p> {
    fn unknown(&mut self) -> i64 {
        let v = self.unknown_supply[self.unknown_next % self.unknown_supply.len()];
        self.unknown_next += 1;
        v
    }

    fn read_var(&self, frame: usize, v: VarId) -> CVal {
        let kind = self.program.vars[v].kind;
        if kind == crate::program::VarKind::Global {
            self.globals.get(&v).cloned().unwrap_or(CVal::Uninit)
        } else {
            self.frames[frame].get(&v).cloned().unwrap_or(CVal::Uninit)
        }
    }

    fn write_var(&mut self, frame: usize, v: VarId, value: CVal) {
        if self.program.vars[v].kind == crate::program::VarKind::Global {
            self.globals.insert(v, value);
        } else {
            self.frames[frame].insert(v, value);
        }
    }

    fn read_field(&self, frame: usize, v: VarId, f: FieldId) -> CVal {
        if self.program.vars[v].kind == crate::program::VarKind::Global {
            self.global_fields
                .get(&(v, f))
                .cloned()
                .unwrap_or(CVal::Uninit)
        } else {
            self.frame_fields[frame]
                .get(&(v, f))
                .cloned()
                .unwrap_or(CVal::Uninit)
        }
    }

    fn read_place(&self, place: &Place, field: Option<FieldId>) -> Result<CVal, String> {
        Ok(match (place, field) {
            (Place::Global(v) | Place::Local(_, v), None) => match place {
                Place::Local(fr, _) => self.frames[*fr].get(v).cloned().unwrap_or(CVal::Uninit),
                _ => self.globals.get(v).cloned().unwrap_or(CVal::Uninit),
            },
            (Place::Global(v), Some(f)) => self
                .global_fields
                .get(&(*v, f))
                .cloned()
                .unwrap_or(CVal::Uninit),
            (Place::Local(fr, v), Some(f)) => self.frame_fields[*fr]
                .get(&(*v, f))
                .cloned()
                .unwrap_or(CVal::Uninit),
            (Place::Heap(i, _), None) => self
                .heap
                .get(*i)
                .ok_or("dangling heap pointer")?
                .cell
                .clone(),
            (Place::Heap(i, _), Some(f)) => self
                .heap
                .get(*i)
                .ok_or("dangling heap pointer")?
                .fields
                .get(&f)
                .cloned()
                .unwrap_or(CVal::Uninit),
        })
    }

    fn write_place(
        &mut self,
        cp: Cp,
        place: &Place,
        field: Option<FieldId>,
        value: CVal,
    ) -> Result<(), String> {
        let target = match (place, field) {
            (Place::Global(v) | Place::Local(_, v), None) => ObservedLoc::Var(*v),
            (Place::Global(v) | Place::Local(_, v), Some(f)) => ObservedLoc::Field(*v, f),
            (Place::Heap(i, _), None) => {
                ObservedLoc::AllocSite(self.heap.get(*i).ok_or("dangling heap pointer")?.site)
            }
            (Place::Heap(i, _), Some(f)) => {
                ObservedLoc::AllocField(self.heap.get(*i).ok_or("dangling heap pointer")?.site, f)
            }
        };
        match (place, field) {
            (Place::Global(v), None) => {
                self.globals.insert(*v, value.clone());
            }
            (Place::Global(v), Some(f)) => {
                self.global_fields.insert((*v, f), value.clone());
            }
            (Place::Local(fr, v), None) => {
                self.frames[*fr].insert(*v, value.clone());
            }
            (Place::Local(fr, v), Some(f)) => {
                self.frame_fields[*fr].insert((*v, f), value.clone());
            }
            (Place::Heap(i, _), None) => {
                self.heap[*i].cell = value.clone();
            }
            (Place::Heap(i, _), Some(f)) => {
                self.heap[*i].fields.insert(f, value.clone());
            }
        }
        self.log.push(Observation { cp, target, value });
        Ok(())
    }

    fn var_place(&self, frame: usize, v: VarId) -> Place {
        if self.program.vars[v].kind == crate::program::VarKind::Global {
            Place::Global(v)
        } else {
            Place::Local(frame, v)
        }
    }

    fn eval(&mut self, frame: usize, e: &Expr) -> Result<CVal, String> {
        Ok(match e {
            Expr::Const(n) => CVal::Int(*n),
            Expr::Unknown => CVal::Int(self.unknown()),
            Expr::Var(x) => self.read_var(frame, *x),
            Expr::Field(x, f) => self.read_field(frame, *x, *f),
            Expr::AddrOf(x) => CVal::Ptr(self.var_place(frame, *x), 0),
            Expr::AddrOfField(x, _f) => CVal::Ptr(self.var_place(frame, *x), 0),
            Expr::AddrOfProc(p) => CVal::Fn(*p),
            Expr::Deref(inner) => {
                let ptr = self.eval(frame, inner)?;
                match ptr {
                    CVal::Ptr(place, _off) => self.read_place(&place, None)?,
                    other => return Err(format!("deref of non-pointer {other:?}")),
                }
            }
            Expr::DerefField(inner, f) => {
                let ptr = self.eval(frame, inner)?;
                match ptr {
                    CVal::Ptr(place, _off) => self.read_place(&place, Some(*f))?,
                    other => return Err(format!("deref of non-pointer {other:?}")),
                }
            }
            Expr::Unop(op, inner) => {
                let v = self.eval(frame, inner)?;
                let n = v.as_int().ok_or("unop on pointer")?;
                CVal::Int(match op {
                    UnOp::Neg => n.checked_neg().ok_or("__ub__ negation overflow")?,
                    UnOp::Not => i64::from(n == 0),
                    UnOp::BitNot => !n,
                })
            }
            Expr::Binop(op, a, b) => {
                let va = self.eval(frame, a)?;
                let vb = self.eval(frame, b)?;
                self.binop(*op, va, vb)?
            }
        })
    }

    fn binop(&mut self, op: BinOp, a: CVal, b: CVal) -> Result<CVal, String> {
        // Pointer ± integer moves the offset; everything else is integer.
        if let (BinOp::Add | BinOp::Sub, CVal::Ptr(place, off)) = (op, a.clone()) {
            let delta = b.as_int().ok_or("pointer arith with pointer rhs")?;
            let delta = if op == BinOp::Add { delta } else { -delta };
            return Ok(CVal::Ptr(place, off + delta));
        }
        if let (BinOp::Add, CVal::Ptr(place, off)) = (op, b.clone()) {
            let delta = a.as_int().ok_or("pointer arith with pointer lhs")?;
            return Ok(CVal::Ptr(place, off + delta));
        }
        if let BinOp::Cmp(rel) = op {
            return Ok(CVal::Int(i64::from(self.compare(rel, &a, &b)?)));
        }
        let x = a.as_int().ok_or("integer op on pointer")?;
        let y = b.as_int().ok_or("integer op on pointer")?;
        Ok(CVal::Int(match op {
            // Signed overflow is C undefined behaviour: stop the run there
            // rather than wrapping (the abstract domains model unbounded
            // integers, so a wrapped value would be a false unsoundness).
            BinOp::Add => x.checked_add(y).ok_or("__ub__ signed overflow in +")?,
            BinOp::Sub => x.checked_sub(y).ok_or("__ub__ signed overflow in -")?,
            BinOp::Mul => x.checked_mul(y).ok_or("__ub__ signed overflow in *")?,
            BinOp::Div => {
                if y == 0 {
                    return Err("__ub__ division by zero".into());
                }
                x.checked_div(y).ok_or("__ub__ signed overflow in /")?
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err("__ub__ modulo by zero".into());
                }
                x.checked_rem(y).ok_or("__ub__ signed overflow in %")?
            }
            BinOp::And => i64::from(x != 0 && y != 0),
            BinOp::Or => i64::from(x != 0 || y != 0),
            BinOp::Bits => x ^ y, // representative bit op
            BinOp::Cmp(_) => unreachable!("handled above"),
        }))
    }

    fn compare(&self, rel: RelOp, a: &CVal, b: &CVal) -> Result<bool, String> {
        // Pointer comparisons: equality by place, ordering unsupported
        // except against null (0).
        let as_num = |v: &CVal| -> Option<i64> { v.as_int() };
        match (as_num(a), as_num(b)) {
            (Some(x), Some(y)) => Ok(match rel {
                RelOp::Lt => x < y,
                RelOp::Le => x <= y,
                RelOp::Gt => x > y,
                RelOp::Ge => x >= y,
                RelOp::Eq => x == y,
                RelOp::Ne => x != y,
            }),
            _ => match rel {
                RelOp::Eq => Ok(a == b),
                RelOp::Ne => Ok(a != b),
                // Pointer vs 0 orderings: treat any pointer as "nonzero".
                RelOp::Lt | RelOp::Le => Ok(false),
                RelOp::Gt | RelOp::Ge => Ok(true),
            },
        }
    }

    fn check(&mut self, frame: usize, cond: &Cond) -> Result<bool, String> {
        let a = self.eval(frame, &cond.lhs)?;
        let b = self.eval(frame, &cond.rhs)?;
        self.compare(cond.op, &a, &b)
    }

    fn lval_place(&mut self, frame: usize, lv: &LVal) -> Result<(Place, Option<FieldId>), String> {
        Ok(match lv {
            LVal::Var(x) => (self.var_place(frame, *x), None),
            LVal::Field(x, f) => (self.var_place(frame, *x), Some(*f)),
            LVal::Deref(x) => match self.read_var(frame, *x) {
                CVal::Ptr(place, _) => (place, None),
                other => return Err(format!("store through non-pointer {other:?}")),
            },
            LVal::DerefField(x, f) => match self.read_var(frame, *x) {
                CVal::Ptr(place, _) => (place, Some(*f)),
                other => return Err(format!("store through non-pointer {other:?}")),
            },
        })
    }

    /// Executes procedure `pid`; returns its return value.
    fn call(&mut self, pid: ProcId, args: Vec<CVal>) -> Result<Option<CVal>, String> {
        let proc = &self.program.procs[pid];
        if proc.is_external {
            return Ok(Some(CVal::Int(self.unknown())));
        }
        if self.frames.len() >= self.max_depth {
            return Err("__fuel__".into());
        }
        let frame = self.frames.len();
        self.frames.push(FxHashMap::default());
        self.frame_fields.push(FxHashMap::default());
        for (i, &p) in proc.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(CVal::Uninit);
            self.write_var(frame, p, v);
        }
        let mut node = proc.entry;
        let result = loop {
            if self.fuel == 0 {
                return Err("__fuel__".into());
            }
            self.fuel -= 1;
            let cp = Cp::new(pid, node);
            match &proc.nodes[node].cmd {
                Cmd::Skip => {}
                Cmd::Assign(lv, e) => {
                    let v = self.eval(frame, e)?;
                    let (place, field) = self.lval_place(frame, lv)?;
                    self.write_place(cp, &place, field, v)?;
                }
                Cmd::Alloc(lv, _size) => {
                    let idx = self.heap.len();
                    self.heap.push(HeapBlock {
                        site: cp,
                        cell: CVal::Uninit,
                        fields: FxHashMap::default(),
                    });
                    let (place, field) = self.lval_place(frame, lv)?;
                    self.write_place(cp, &place, field, CVal::Ptr(Place::Heap(idx, cp), 0))?;
                }
                Cmd::Assume(_) => {} // handled during successor choice
                Cmd::Call { ret, callee, args } => {
                    let mut arg_vals = Vec::with_capacity(args.len());
                    for a in args {
                        arg_vals.push(self.eval(frame, a)?);
                    }
                    let target = match callee {
                        Callee::Direct(t) => *t,
                        Callee::Indirect(e) => match self.eval(frame, e)? {
                            CVal::Fn(t) => t,
                            other => return Err(format!("call through non-function {other:?}")),
                        },
                    };
                    let rv = self.call(target, arg_vals)?;
                    if let Some(lv) = ret {
                        let v = rv.unwrap_or(CVal::Uninit);
                        let (place, field) = self.lval_place(frame, lv)?;
                        self.write_place(cp, &place, field, v)?;
                    }
                }
                Cmd::Return(e) => {
                    let v = match e {
                        Some(e) => Some(self.eval(frame, e)?),
                        None => None,
                    };
                    if let Some(v) = &v {
                        self.log.push(Observation {
                            cp,
                            target: ObservedLoc::Var(proc.ret_var),
                            value: v.clone(),
                        });
                    }
                    break v;
                }
            }
            if node == proc.exit {
                break None;
            }
            // Choose the successor: unique, or the assume that holds.
            let succs = proc.succs_of(node);
            node = match succs {
                [] => break None,
                [only] => *only,
                many => {
                    let mut chosen: Option<NodeId> = None;
                    for &s in many {
                        if let Cmd::Assume(cond) = &proc.nodes[s].cmd {
                            if self.check(frame, cond)? {
                                chosen = Some(s);
                                break;
                            }
                        } else {
                            chosen = Some(s);
                            break;
                        }
                    }
                    chosen.ok_or("no feasible branch")?
                }
            };
        };
        self.frames.pop();
        self.frame_fields.pop();
        Ok(result)
    }
}

/// Runs `main` under `config`.
pub fn run(program: &Program, config: &InterpConfig) -> Run {
    let mut interp = Interp {
        program,
        globals: FxHashMap::default(),
        global_fields: FxHashMap::default(),
        frames: Vec::new(),
        frame_fields: Vec::new(),
        heap: Vec::new(),
        unknown_supply: if config.unknown_supply.is_empty() {
            vec![0]
        } else {
            config.unknown_supply.clone()
        },
        unknown_next: 0,
        fuel: config.fuel,
        max_depth: config.max_depth.max(1),
        log: Vec::new(),
    };
    let args: Vec<CVal> = config.main_args.iter().map(|&n| CVal::Int(n)).collect();
    let outcome = match interp.call(program.main, args) {
        Ok(Some(CVal::Int(n))) => Outcome::Finished(Some(n)),
        Ok(_) => Outcome::Finished(None),
        Err(e) if e == "__fuel__" => Outcome::OutOfFuel,
        Err(e) if e.starts_with("__ub__") => {
            Outcome::UndefinedBehaviour(e.trim_start_matches("__ub__ ").to_string())
        }
        Err(e) => Outcome::Trap(e),
    };
    Run {
        outcome,
        log: interp.log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::program::{FieldTable, VarInfo, VarKind};
    use sga_utils::{Idx, IndexVec};

    /// Builds `main() { x := 1; x := x + 2; return x; }` by hand (the C
    /// frontend lives downstream; cross-crate tests drive real sources).
    fn tiny_program() -> Program {
        let mut vars: IndexVec<VarId, VarInfo> = IndexVec::new();
        let ret = vars.push(VarInfo {
            name: "__ret".into(),
            kind: VarKind::Return(ProcId::new(0)),
            address_taken: false,
        });
        let x = vars.push(VarInfo {
            name: "x".into(),
            kind: VarKind::Local(ProcId::new(0)),
            address_taken: false,
        });
        let mut b = ProcBuilder::new("main", ret);
        b.local(x);
        let n1 = b.node(Cmd::Assign(LVal::Var(x), Expr::Const(1)));
        let n2 = b.node(Cmd::Assign(
            LVal::Var(x),
            Expr::binop(BinOp::Add, Expr::Var(x), Expr::Const(2)),
        ));
        let n3 = b.node(Cmd::Return(Some(Expr::Var(x))));
        let entry = b.entry();
        let exit = b.exit();
        b.edge(entry, n1);
        b.edge(n1, n2);
        b.edge(n2, n3);
        b.edge(n3, exit);
        let mut procs = IndexVec::new();
        let main = procs.push(b.finish());
        Program {
            procs,
            vars,
            fields: FieldTable::new().into_names(),
            main,
        }
    }

    #[test]
    fn runs_straight_line_and_logs_writes() {
        let p = tiny_program();
        let run = super::run(&p, &InterpConfig::default());
        assert_eq!(run.outcome, Outcome::Finished(Some(3)));
        let values: Vec<&CVal> = run.log.iter().map(|o| &o.value).collect();
        assert!(values.contains(&&CVal::Int(1)));
        assert!(values.contains(&&CVal::Int(3)));
    }

    #[test]
    fn fuel_limits_execution() {
        let p = tiny_program();
        let run = super::run(
            &p,
            &InterpConfig {
                fuel: 2,
                ..Default::default()
            },
        );
        assert_eq!(run.outcome, Outcome::OutOfFuel);
    }

    #[test]
    fn cval_truthiness() {
        assert!(CVal::Int(1).truthy());
        assert!(!CVal::Int(0).truthy());
        assert!(!CVal::Uninit.truthy());
        assert!(CVal::Ptr(Place::Global(VarId::new(0)), 0).truthy());
    }
}
