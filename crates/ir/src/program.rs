//! Whole-program containers: variables, fields, procedures, control points.

use crate::proc::{NodeId, Proc, ProcId};
use sga_utils::{new_index, FxHashMap, Idx, IndexVec};
use std::fmt;

new_index!(pub struct VarId, "v");
new_index!(pub struct FieldId, "f");

/// What kind of storage a variable names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A file-scope global.
    Global,
    /// A procedure-local declared variable.
    Local(ProcId),
    /// A formal parameter.
    Param(ProcId),
    /// A compiler-introduced temporary.
    Temp(ProcId),
    /// The synthetic variable holding a procedure's return value.
    Return(ProcId),
}

impl VarKind {
    /// The procedure owning the variable, or `None` for globals.
    pub fn owner(self) -> Option<ProcId> {
        match self {
            VarKind::Global => None,
            VarKind::Local(p) | VarKind::Param(p) | VarKind::Temp(p) | VarKind::Return(p) => {
                Some(p)
            }
        }
    }
}

/// Metadata for one program variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Source-level name (synthetic for temporaries).
    pub name: String,
    /// Storage kind.
    pub kind: VarKind,
    /// Whether the program takes this variable's address (`&x`). Top-level
    /// variables (address never taken) admit strong updates and are what
    /// semi-sparse analysis [Hardekopf & Lin 2009] treats sparsely.
    pub address_taken: bool,
}

/// A *control point*: a (procedure, node) pair, the `c ∈ C` of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cp {
    /// The procedure.
    pub proc: ProcId,
    /// The node within the procedure's CFG.
    pub node: NodeId,
}

impl Cp {
    /// Builds a control point.
    pub fn new(proc: ProcId, node: NodeId) -> Self {
        Cp { proc, node }
    }
}

impl fmt::Debug for Cp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.proc, self.node)
    }
}

impl fmt::Display for Cp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.proc, self.node)
    }
}

/// A whole program: procedures plus global symbol tables.
#[derive(Clone, Debug)]
pub struct Program {
    /// All procedures.
    pub procs: IndexVec<ProcId, Proc>,
    /// All variables (globals, locals, params, temps, returns).
    pub vars: IndexVec<VarId, VarInfo>,
    /// Interned field names.
    pub fields: IndexVec<FieldId, String>,
    /// The entry procedure (`main`).
    pub main: ProcId,
}

impl Program {
    /// Looks up a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter_enumerated()
            .find(|(_, p)| p.name == name)
            .map(|(id, _)| id)
    }

    /// Total number of control points (IR statements) in the program.
    pub fn num_points(&self) -> usize {
        self.procs.iter().map(|p| p.nodes.len()).sum()
    }

    /// Iterates over every control point of the program.
    pub fn all_points(&self) -> impl Iterator<Item = Cp> + '_ {
        self.procs
            .iter_enumerated()
            .flat_map(|(pid, p)| p.nodes.indices().map(move |n| Cp::new(pid, n)))
    }

    /// Assigns each control point a dense global number (used for bitset and
    /// BDD encodings of the dependency relation).
    pub fn point_numbering(&self) -> PointNumbering {
        let mut offsets = IndexVec::with_capacity(self.procs.len());
        let mut total = 0usize;
        for p in &self.procs {
            offsets.push(total);
            total += p.nodes.len();
        }
        PointNumbering { offsets, total }
    }

    /// The command at control point `cp`.
    pub fn cmd(&self, cp: Cp) -> &crate::expr::Cmd {
        &self.procs[cp.proc].nodes[cp.node].cmd
    }

    /// Field name for a [`FieldId`].
    pub fn field_name(&self, f: FieldId) -> &str {
        &self.fields[f]
    }

    /// Variable name for a [`VarId`].
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v].name
    }

    /// All global variables.
    pub fn globals(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter_enumerated()
            .filter(|(_, info)| info.kind == VarKind::Global)
            .map(|(v, _)| v)
    }
}

/// Dense numbering of control points, `Cp ↔ usize`.
#[derive(Clone, Debug)]
pub struct PointNumbering {
    offsets: IndexVec<ProcId, usize>,
    total: usize,
}

impl PointNumbering {
    /// Total number of control points.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the program had no control points.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Global index of `cp`.
    pub fn index(&self, cp: Cp) -> usize {
        self.offsets[cp.proc] + cp.node.index()
    }

    /// Inverse of [`index`](Self::index).
    pub fn cp(&self, index: usize) -> Cp {
        // Binary search over the offset table.
        let mut lo = 0usize;
        let mut hi = self.offsets.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.offsets[ProcId::new(mid)] <= index {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let proc = ProcId::new(lo);
        Cp::new(proc, NodeId::new(index - self.offsets[proc]))
    }
}

/// A builder-side interner for field names.
#[derive(Default, Debug)]
pub struct FieldTable {
    names: IndexVec<FieldId, String>,
    index: FxHashMap<String, FieldId>,
}

impl FieldTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Finishes building, returning the name arena.
    pub fn into_names(self) -> IndexVec<FieldId, String> {
        self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_interning_dedups() {
        let mut t = FieldTable::new();
        let a = t.intern("next");
        let b = t.intern("data");
        let a2 = t.intern("next");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.into_names().into_raw(), vec!["next", "data"]);
    }

    #[test]
    fn var_kind_owner() {
        let p = ProcId::new(3);
        assert_eq!(VarKind::Global.owner(), None);
        assert_eq!(VarKind::Local(p).owner(), Some(p));
        assert_eq!(VarKind::Return(p).owner(), Some(p));
    }

    #[test]
    fn cp_display() {
        let cp = Cp::new(ProcId::new(1), NodeId::new(4));
        assert_eq!(format!("{cp}"), "p1:n4");
    }
}
