//! Dense bitsets over a fixed universe.
//!
//! Def/use sets and reaching-definition facts range over small, dense index
//! spaces (locations used in a procedure, nodes of a CFG), which makes a
//! `u64`-word bitset the right representation: set algebra is word-parallel
//! and iteration skips empty words.
//!
//! # Examples
//!
//! ```
//! use sga_utils::BitSet;
//!
//! let mut a = BitSet::new(128);
//! a.insert(3);
//! a.insert(100);
//! let mut b = BitSet::new(128);
//! b.insert(100);
//! assert!(a.union_with(&b) == false); // b added nothing new
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 100]);
//! ```

use std::fmt;

const WORD_BITS: usize = 64;

/// A growably-sized dense bitset over `usize` elements `< domain_size`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    domain_size: usize,
}

#[inline]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
}

impl BitSet {
    /// Creates an empty set over a universe of `domain_size` elements.
    pub fn new(domain_size: usize) -> Self {
        BitSet {
            words: vec![0; domain_size.div_ceil(WORD_BITS)],
            domain_size,
        }
    }

    /// Size of the universe this set ranges over.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Inserts `bit`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= domain_size`.
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(
            bit < self.domain_size,
            "bit {bit} out of domain {}",
            self.domain_size
        );
        let (w, mask) = word_index(bit);
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `bit`; returns `true` if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, mask) = word_index(bit);
        match self.words.get_mut(w) {
            Some(word) => {
                let present = *word & mask != 0;
                *word &= !mask;
                present
            }
            None => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, mask) = word_index(bit);
        self.words.get(w).is_some_and(|word| word & mask != 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(
            self.domain_size, other.domain_size,
            "bitset domain mismatch"
        );
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(
            self.domain_size, other.domain_size,
            "bitset domain mismatch"
        );
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self −= other`; returns `true` if `self` changed.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        assert_eq!(
            self.domain_size, other.domain_size,
            "bitset domain mismatch"
        );
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(
            self.domain_size, other.domain_size,
            "bitset domain mismatch"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The smallest element `>= from`, if any — the cursor primitive a
    /// sorted worklist needs (pop scans forward; an insertion behind the
    /// cursor moves it back).
    pub fn next_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.domain_size {
            return None;
        }
        let mut w = from / WORD_BITS;
        let mut word = self.words[w] & (!0u64 << (from % WORD_BITS));
        loop {
            if word != 0 {
                return Some(w * WORD_BITS + word.trailing_zeros() as usize);
            }
            w += 1;
            word = *self.words.get(w)?;
        }
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            current: self.words.first().copied().unwrap_or(0),
            word_idx: 0,
        }
    }
}

/// Ascending iterator over a [`BitSet`], produced by [`BitSet::iter`].
pub struct Iter<'a> {
    words: &'a [u64],
    current: u64,
    word_idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let size = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(size);
        for i in items {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(63));
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(300);
        for &b in &[250, 3, 64, 128, 65] {
            s.insert(b);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 128, 250]);
    }

    #[test]
    fn next_set_from_scans_and_wraps_nothing() {
        let mut s = BitSet::new(300);
        for &b in &[3, 64, 65, 250] {
            s.insert(b);
        }
        assert_eq!(s.next_set_from(0), Some(3));
        assert_eq!(s.next_set_from(3), Some(3));
        assert_eq!(s.next_set_from(4), Some(64));
        assert_eq!(s.next_set_from(66), Some(250));
        assert_eq!(s.next_set_from(251), None);
        assert_eq!(s.next_set_from(300), None);
        assert_eq!(BitSet::new(0).next_set_from(0), None);
    }

    proptest! {
        #[test]
        fn next_set_from_matches_iter(bits in prop::collection::btree_set(0usize..512, 0..64), from in 0usize..600) {
            let mut s = BitSet::new(512);
            for &b in &bits {
                s.insert(b);
            }
            let expected = bits.iter().copied().find(|&b| b >= from);
            prop_assert_eq!(s.next_set_from(from), expected);
        }
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(1) && a.contains(2));
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(10);
        b.insert(10);
        b.insert(20);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(!a.is_disjoint(&b));
        a.clear();
        assert!(a.is_disjoint(&b));
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn insert_out_of_domain_panics() {
        BitSet::new(10).insert(10);
    }

    proptest! {
        #[test]
        fn set_algebra_matches_btreeset(
            xs in prop::collection::btree_set(0usize..512, 0..64),
            ys in prop::collection::btree_set(0usize..512, 0..64),
        ) {
            let mut a = BitSet::new(512);
            let mut b = BitSet::new(512);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }

            let mut u = a.clone();
            u.union_with(&b);
            let expect_u: Vec<_> = xs.union(&ys).copied().collect();
            prop_assert_eq!(u.iter().collect::<Vec<_>>(), expect_u);

            let mut i = a.clone();
            i.intersect_with(&b);
            let expect_i: Vec<_> = xs.intersection(&ys).copied().collect();
            prop_assert_eq!(i.iter().collect::<Vec<_>>(), expect_i);

            let mut d = a.clone();
            d.subtract(&b);
            let expect_d: Vec<_> = xs.difference(&ys).copied().collect();
            prop_assert_eq!(d.iter().collect::<Vec<_>>(), expect_d);

            prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
            prop_assert_eq!(a.is_disjoint(&b), xs.is_disjoint(&ys));
            prop_assert_eq!(a.count(), xs.len());
        }
    }
}
