//! Support data structures shared by every crate in the SGA workspace.
//!
//! The analysis crates need a handful of infrastructure pieces that we build
//! from scratch so the whole system is self-contained:
//!
//! * [`idx`] — strongly typed indices and the [`IndexVec`]
//!   arena they index into. All IR entities (procedures, blocks, nodes,
//!   variables, abstract locations, …) are newtyped `u32` indices.
//! * [`fxhash`] — a fast, deterministic hash function (the multiply-xor
//!   hash used by rustc), plus `HashMap`/`HashSet` aliases built on it.
//!   Determinism matters: analysis results and benchmark tables must not
//!   depend on `RandomState`.
//! * [`pmap`] — a persistent (shared-structure) balanced search tree used as
//!   the abstract-state store. Dense analyses keep one abstract state per
//!   control point; without structural sharing the memory cost is quadratic.
//! * [`bitset`] — dense fixed-width bitsets used for def/use sets and
//!   reaching-definition style passes.
//! * [`graph`] — small graph toolkit: Tarjan SCC, reverse postorder, and
//!   Bourdoncle-style weak topological order used to place widening points.
//! * [`stats`] — wall-clock timers and peak-memory sampling used by the
//!   benchmark harness to fill in the paper's tables.

//! * [`json`] — a small deterministic JSON reader/writer used by the
//!   pipeline's run reports and on-disk cache.

pub mod bitset;
pub mod fxhash;
pub mod graph;
pub mod idx;
pub mod json;
pub mod pmap;
pub mod stats;

pub use bitset::BitSet;
pub use fxhash::{FxHashMap, FxHashSet};
pub use idx::{Idx, IndexVec};
pub use json::Json;
pub use pmap::PMap;
