//! A fast, deterministic hasher.
//!
//! The analysis must be reproducible run-to-run (the benchmark tables diff
//! badly otherwise), so we cannot use `std`'s `RandomState`. This is the
//! multiply-rotate hash popularized by Firefox and rustc ("FxHash"),
//! reimplemented from its public description.
//!
//! # Examples
//!
//! ```
//! use sga_utils::FxHashMap;
//!
//! let mut m: FxHashMap<&str, i32> = FxHashMap::default();
//! m.insert("x", 1);
//! assert_eq!(m["x"], 1);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Hashes one value with [`FxHasher`]; handy for hash-consing tables.
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&"ab"), hash_one(&"ba"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn byte_stream_equivalence_is_not_assumed() {
        // write() chunks 8/4/1; different splits of the same logical value may
        // hash differently, which is fine for HashMap use but worth pinning.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}
