//! A persistent (immutable, structure-sharing) ordered map.
//!
//! Dense abstract interpretation keeps one abstract state — a finite map
//! `AbsLoc → Value` — *per control point*. Naively copying `BTreeMap`s makes
//! that quadratic in program size; the original Sparrow implementation relies
//! on OCaml's persistent `Map` for structural sharing, and this module is the
//! Rust equivalent: a height-balanced (AVL-style) search tree whose nodes are
//! reference-counted, so `insert` returns a new map sharing all untouched
//! subtrees with the old one.
//!
//! The balancing scheme follows OCaml's `Map` (heights, rotation when one
//! side is more than 2 taller), and `union_with` uses the split-based
//! divide-and-conquer algorithm, which is `O(m log(n/m + 1))` and — crucially
//! for fixpoint iteration — returns physically shared subtrees whenever the
//! merge does not change them.
//!
//! # Examples
//!
//! ```
//! use sga_utils::PMap;
//!
//! let m1: PMap<&str, i32> = PMap::new().insert("a", 1).insert("b", 2);
//! let m2 = m1.insert("a", 10);
//! assert_eq!(m1.get(&"a"), Some(&1));  // m1 unchanged
//! assert_eq!(m2.get(&"a"), Some(&10));
//! let joined = m1.union_with(&m2, |_k, x, y| x + y);
//! assert_eq!(joined.get(&"a"), Some(&11));
//! assert_eq!(joined.get(&"b"), Some(&2));
//! ```

use std::cmp::Ordering;
use std::fmt;
// `Arc`, not `Rc`: abstract states (pre-analysis results, fixpoint tables)
// are shared read-only across the pipeline's worker threads, so the
// structural-sharing pointer must be `Send + Sync`. The atomic refcount
// costs a few percent on clone-heavy paths; sequential callers pay it too,
// which keeps `--jobs 1` and `--jobs N` byte-identical for free.
use std::sync::Arc;

type Rc<T> = Arc<T>;

type Link<K, V> = Option<Rc<Node<K, V>>>;

struct Node<K, V> {
    left: Link<K, V>,
    key: K,
    value: V,
    right: Link<K, V>,
    height: u32,
    size: usize,
}

/// A persistent ordered map from `K` to `V`.
///
/// Cloning is O(1) (bumps one refcount); all updates return new maps sharing
/// structure with the input.
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

fn height<K, V>(l: &Link<K, V>) -> u32 {
    l.as_ref().map_or(0, |n| n.height)
}

fn size<K, V>(l: &Link<K, V>) -> usize {
    l.as_ref().map_or(0, |n| n.size)
}

fn mk<K, V>(left: Link<K, V>, key: K, value: V, right: Link<K, V>) -> Link<K, V> {
    let height = height(&left).max(height(&right)) + 1;
    let size = size(&left) + size(&right) + 1;
    Some(Rc::new(Node {
        left,
        key,
        value,
        right,
        height,
        size,
    }))
}

/// Rebalances assuming `left`/`right` heights differ by at most 3
/// (the precondition of OCaml Map's `bal`).
fn bal<K: Clone, V: Clone>(left: Link<K, V>, key: K, value: V, right: Link<K, V>) -> Link<K, V> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 2 {
        let l = left.expect("left taller than right+2 implies nonempty");
        if height(&l.left) >= height(&l.right) {
            mk(
                l.left.clone(),
                l.key.clone(),
                l.value.clone(),
                mk(l.right.clone(), key, value, right),
            )
        } else {
            let lr = l
                .right
                .as_ref()
                .expect("right-leaning left child is nonempty");
            mk(
                mk(
                    l.left.clone(),
                    l.key.clone(),
                    l.value.clone(),
                    lr.left.clone(),
                ),
                lr.key.clone(),
                lr.value.clone(),
                mk(lr.right.clone(), key, value, right),
            )
        }
    } else if hr > hl + 2 {
        let r = right.expect("right taller than left+2 implies nonempty");
        if height(&r.right) >= height(&r.left) {
            mk(
                mk(left, key, value, r.left.clone()),
                r.key.clone(),
                r.value.clone(),
                r.right.clone(),
            )
        } else {
            let rl = r
                .left
                .as_ref()
                .expect("left-leaning right child is nonempty");
            mk(
                mk(left, key, value, rl.left.clone()),
                rl.key.clone(),
                rl.value.clone(),
                mk(
                    rl.right.clone(),
                    r.key.clone(),
                    r.value.clone(),
                    r.right.clone(),
                ),
            )
        }
    } else {
        mk(left, key, value, right)
    }
}

/// Joins two trees of arbitrary relative heights around a middle entry.
fn join<K: Clone, V: Clone>(left: Link<K, V>, key: K, value: V, right: Link<K, V>) -> Link<K, V> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 2 {
        let l = left.as_ref().unwrap();
        bal(
            l.left.clone(),
            l.key.clone(),
            l.value.clone(),
            join(l.right.clone(), key, value, right),
        )
    } else if hr > hl + 2 {
        let r = right.as_ref().unwrap();
        bal(
            join(left, key, value, r.left.clone()),
            r.key.clone(),
            r.value.clone(),
            r.right.clone(),
        )
    } else {
        mk(left, key, value, right)
    }
}

fn min_binding<K, V>(mut n: &Rc<Node<K, V>>) -> (&K, &V) {
    while let Some(l) = n.left.as_ref() {
        n = l;
    }
    (&n.key, &n.value)
}

/// Concatenates two trees where every key of `left` < every key of `right`.
fn concat<K: Clone + Ord, V: Clone>(left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    match (&left, &right) {
        (None, _) => right,
        (_, None) => left,
        (_, Some(r)) => {
            let (k, v) = min_binding(r);
            let (k, v) = (k.clone(), v.clone());
            let right = remove_min(right);
            join(left, k, v, right)
        }
    }
}

fn remove_min<K: Clone + Ord, V: Clone>(link: Link<K, V>) -> Link<K, V> {
    let n = link.expect("remove_min on empty tree");
    match &n.left {
        None => n.right.clone(),
        Some(_) => bal(
            remove_min(n.left.clone()),
            n.key.clone(),
            n.value.clone(),
            n.right.clone(),
        ),
    }
}

fn insert_rec<K: Clone + Ord, V: Clone>(link: &Link<K, V>, key: K, value: V) -> Link<K, V> {
    match link {
        None => mk(None, key, value, None),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Less => bal(
                insert_rec(&n.left, key, value),
                n.key.clone(),
                n.value.clone(),
                n.right.clone(),
            ),
            Ordering::Greater => bal(
                n.left.clone(),
                n.key.clone(),
                n.value.clone(),
                insert_rec(&n.right, key, value),
            ),
            Ordering::Equal => mk(n.left.clone(), key, value, n.right.clone()),
        },
    }
}

fn remove_rec<K: Clone + Ord, V: Clone>(link: &Link<K, V>, key: &K) -> (Link<K, V>, bool) {
    match link {
        None => (None, false),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Less => {
                let (l, removed) = remove_rec(&n.left, key);
                if removed {
                    (
                        bal(l, n.key.clone(), n.value.clone(), n.right.clone()),
                        true,
                    )
                } else {
                    (link.clone(), false)
                }
            }
            Ordering::Greater => {
                let (r, removed) = remove_rec(&n.right, key);
                if removed {
                    (bal(n.left.clone(), n.key.clone(), n.value.clone(), r), true)
                } else {
                    (link.clone(), false)
                }
            }
            Ordering::Equal => (concat(n.left.clone(), n.right.clone()), true),
        },
    }
}

/// Splits into (< key, at key, > key).
#[allow(clippy::type_complexity)]
fn split<K: Clone + Ord, V: Clone>(
    link: &Link<K, V>,
    key: &K,
) -> (Link<K, V>, Option<V>, Link<K, V>) {
    match link {
        None => (None, None, None),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => (n.left.clone(), Some(n.value.clone()), n.right.clone()),
            Ordering::Less => {
                let (ll, hit, lr) = split(&n.left, key);
                (
                    ll,
                    hit,
                    join(lr, n.key.clone(), n.value.clone(), n.right.clone()),
                )
            }
            Ordering::Greater => {
                let (rl, hit, rr) = split(&n.right, key);
                (
                    join(n.left.clone(), n.key.clone(), n.value.clone(), rl),
                    hit,
                    rr,
                )
            }
        },
    }
}

fn union_rec<K: Clone + Ord, V: Clone>(
    a: &Link<K, V>,
    b: &Link<K, V>,
    f: &mut impl FnMut(&K, &V, &V) -> V,
) -> Link<K, V> {
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(an), Some(bn)) => {
            if Rc::ptr_eq(an, bn) {
                // Identical subtrees: merging is the identity for any
                // idempotent f used by lattice joins. We still must apply f in
                // general, but fixpoint engines only use idempotent joins, so
                // sharing here is both a correctness-preserving and decisive
                // optimization. Callers needing non-idempotent merges must not
                // pass aliased maps.
                return a.clone();
            }
            // Split the smaller tree by the larger tree's root for balance.
            if an.size >= bn.size {
                let (bl, hit, br) = split(b, &an.key);
                let value = match hit {
                    Some(bv) => f(&an.key, &an.value, &bv),
                    None => an.value.clone(),
                };
                join(
                    union_rec(&an.left, &bl, f),
                    an.key.clone(),
                    value,
                    union_rec(&an.right, &br, f),
                )
            } else {
                let (al, hit, ar) = split(a, &bn.key);
                let value = match hit {
                    Some(av) => f(&bn.key, &av, &bn.value),
                    None => bn.value.clone(),
                };
                join(
                    union_rec(&al, &bn.left, f),
                    bn.key.clone(),
                    value,
                    union_rec(&ar, &bn.right, f),
                )
            }
        }
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Whether the two maps share the same root node (O(1) equality witness).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl<K: Clone + Ord, V: Clone> PMap<K, V> {
    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_ref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = n.left.as_ref(),
                Ordering::Greater => cur = n.right.as_ref(),
                Ordering::Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Whether `key` is bound.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns a new map with `key` bound to `value`.
    #[must_use = "PMap::insert returns the updated map"]
    pub fn insert(&self, key: K, value: V) -> Self {
        PMap {
            root: insert_rec(&self.root, key, value),
        }
    }

    /// Returns a new map with `key` unbound (same map if it was absent).
    #[must_use = "PMap::remove returns the updated map"]
    pub fn remove(&self, key: &K) -> Self {
        PMap {
            root: remove_rec(&self.root, key).0,
        }
    }

    /// Merges two maps. Keys present in both are combined with `f`; keys in
    /// only one side are kept as-is.
    ///
    /// Aliased subtrees are returned unmerged (see module docs), so `f` must
    /// be idempotent (`f(k, v, v) == v`) — which lattice joins are.
    #[must_use = "PMap::union_with returns the merged map"]
    pub fn union_with(&self, other: &Self, mut f: impl FnMut(&K, &V, &V) -> V) -> Self {
        PMap {
            root: union_rec(&self.root, &other.root, &mut f),
        }
    }

    /// Returns the map restricted to keys satisfying `pred`.
    #[must_use = "PMap::filter returns the restricted map"]
    pub fn filter(&self, mut pred: impl FnMut(&K, &V) -> bool) -> Self {
        let mut out = PMap::new();
        for (k, v) in self.iter() {
            if pred(k, v) {
                out = out.insert(k.clone(), v.clone());
            }
        }
        out
    }

    /// In-order iterator over `(key, value)` pairs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        push_left(&self.root, &mut stack);
        Iter { stack }
    }

    /// Iterator over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterator over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

fn push_left<'a, K, V>(mut link: &'a Link<K, V>, stack: &mut Vec<&'a Node<K, V>>) {
    while let Some(n) = link {
        stack.push(n);
        link = &n.left;
    }
}

/// In-order iterator over a [`PMap`], produced by [`PMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        push_left(&n.right, &mut self.stack);
        Some((&n.key, &n.value))
    }
}

impl<K: Clone + Ord, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PMap::new();
        for (k, v) in iter {
            m = m.insert(k, v);
        }
        m
    }
}

impl<K: Clone + Ord + PartialEq, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || (self.len() == other.len() && self.iter().eq(other.iter()))
    }
}

impl<K: Clone + Ord + Eq, V: Clone + Eq> Eq for PMap<K, V> {}

impl<K: Clone + Ord + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn check_balance<K, V>(link: &Link<K, V>) -> u32 {
        match link {
            None => 0,
            Some(n) => {
                let hl = check_balance(&n.left);
                let hr = check_balance(&n.right);
                assert!(hl.abs_diff(hr) <= 2, "unbalanced node: {hl} vs {hr}");
                assert_eq!(n.height, hl.max(hr) + 1, "stale height");
                assert_eq!(n.size, size(&n.left) + size(&n.right) + 1, "stale size");
                n.height
            }
        }
    }

    #[test]
    fn insert_get_persistence() {
        let m0: PMap<i32, i32> = PMap::new();
        let m1 = m0.insert(1, 10);
        let m2 = m1.insert(2, 20);
        let m3 = m2.insert(1, 11);
        assert_eq!(m0.get(&1), None);
        assert_eq!(m1.get(&1), Some(&10));
        assert_eq!(m3.get(&1), Some(&11));
        assert_eq!(m3.get(&2), Some(&20));
        assert_eq!(m2.get(&1), Some(&10), "older versions unaffected");
    }

    #[test]
    fn remove_absent_is_noop_and_shares() {
        let m: PMap<i32, i32> = (0..10).map(|i| (i, i)).collect();
        let r = m.remove(&99);
        assert!(r.ptr_eq(&m));
        let r2 = m.remove(&5);
        assert_eq!(r2.len(), 9);
        assert!(!r2.contains_key(&5));
    }

    #[test]
    fn union_prefers_combined() {
        let a: PMap<i32, i32> = [(1, 1), (2, 2)].into_iter().collect();
        let b: PMap<i32, i32> = [(2, 20), (3, 30)].into_iter().collect();
        let u = a.union_with(&b, |_, x, y| x.max(y).to_owned());
        assert_eq!(u.get(&1), Some(&1));
        assert_eq!(u.get(&2), Some(&20));
        assert_eq!(u.get(&3), Some(&30));
    }

    #[test]
    fn union_aliased_is_identity() {
        let a: PMap<i32, i32> = (0..100).map(|i| (i, i)).collect();
        let b = a.clone();
        let mut calls = 0;
        let u = a.union_with(&b, |_, x, _| {
            calls += 1;
            *x
        });
        assert!(u.ptr_eq(&a));
        assert_eq!(calls, 0, "aliased union should not visit entries");
    }

    #[test]
    fn iteration_is_ordered() {
        let m: PMap<i32, i32> = [(5, 0), (1, 0), (3, 0), (2, 0), (4, 0)]
            .into_iter()
            .collect();
        let keys: Vec<i32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn filter_restricts() {
        let m: PMap<i32, i32> = (0..10).map(|i| (i, i)).collect();
        let even = m.filter(|k, _| k % 2 == 0);
        assert_eq!(even.len(), 5);
        assert!(even.contains_key(&4) && !even.contains_key(&3));
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec((0u8..3, 0i64..64, 0i64..1000), 0..200)) {
            let mut model: BTreeMap<i64, i64> = BTreeMap::new();
            let mut map: PMap<i64, i64> = PMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => { model.insert(k, v); map = map.insert(k, v); }
                    1 => { model.remove(&k); map = map.remove(&k); }
                    _ => { prop_assert_eq!(model.get(&k), map.get(&k)); }
                }
                check_balance(&map.root);
            }
            prop_assert_eq!(map.len(), model.len());
            let got: Vec<(i64, i64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(i64, i64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn union_matches_model(
            xs in prop::collection::btree_map(0i64..64, 0i64..100, 0..40),
            ys in prop::collection::btree_map(0i64..64, 0i64..100, 0..40),
        ) {
            let a: PMap<i64, i64> = xs.clone().into_iter().collect();
            let b: PMap<i64, i64> = ys.clone().into_iter().collect();
            let u = a.union_with(&b, |_, x, y| *x.max(y));
            check_balance(&u.root);
            let mut want = xs.clone();
            for (k, v) in ys {
                want.entry(k).and_modify(|w| *w = (*w).max(v)).or_insert(v);
            }
            let got: Vec<(i64, i64)> = u.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want.into_iter().collect::<Vec<_>>());
        }
    }
}
