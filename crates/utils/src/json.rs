//! A small, deterministic JSON reader/writer.
//!
//! The pipeline's run reports and on-disk cache segments are JSON, and the
//! workspace has no serialization dependency, so this module provides the
//! needed subset from scratch. Objects keep **insertion order** — writers
//! emit fields in the order they were added and parsing preserves document
//! order — so serializing the same data always yields the same bytes, which
//! the pipeline's determinism guarantee (`--jobs 1` ≡ `--jobs 8`) relies
//! on.
//!
//! Numbers are stored as `f64`. Values that must survive a round trip
//! exactly at 64-bit width (content hashes) are written as hex strings, not
//! numbers.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(fields) = self else {
            panic!("Json::set on non-object")
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => fields.push((key.to_string(), value.into())),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Field lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), deterministically.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, deterministically.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, padc, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => (Default::default(), String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we only \u-escape control characters).
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let doc = Json::obj()
            .with("name", "unit_3")
            .with("count", 42usize)
            .with("ok", true)
            .with("ratio", Json::Num(0.5))
            .with(
                "items",
                vec![Json::Num(1.0), Json::Str("x\ny".into()), Json::Null],
            );
        let text = doc.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Re-serializing the parse gives identical bytes (determinism).
        assert_eq!(Json::parse(&text).unwrap().to_compact(), text);
    }

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::obj()
            .with("a", 1usize)
            .with("b", vec![Json::Bool(false)]);
        let pretty = doc.to_pretty();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let parsed = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(parsed.to_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut doc = Json::obj().with("a", 1usize).with("b", 2usize);
        doc.set("a", 9usize);
        assert_eq!(doc.to_compact(), r#"{"a":9,"b":2}"#);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"s":"x","n":7,"b":true,"l":[1,2]}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("l").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn escapes() {
        let doc = Json::Str("quote\" slash\\ tab\t nl\n ctl\u{1}".to_string());
        let text = doc.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn large_integers_roundtrip() {
        // 2^53 - 1 is the largest integer f64 holds exactly.
        let n = 9_007_199_254_740_991u64;
        let text = Json::Num(n as f64).to_compact();
        assert_eq!(text, "9007199254740991");
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }
}
