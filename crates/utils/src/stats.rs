//! Timers and memory statistics for the benchmark harness.
//!
//! The paper's Tables 2–3 report, per analyzer: total analysis time, its
//! split into dependency-generation (`Dep`) and fixpoint (`Fix`) phases, and
//! peak memory. [`Phase`] provides the stopwatch; [`peak_rss_bytes`] reads the
//! process high-water mark from `/proc/self/status` (Linux), which is the
//! same notion of "peak memory consumption" the paper reports.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simple stopwatch for one named analysis phase.
#[derive(Debug)]
pub struct Phase {
    name: &'static str,
    start: Instant,
}

impl Phase {
    /// Starts timing a phase.
    pub fn start(name: &'static str) -> Self {
        Phase {
            name,
            start: Instant::now(),
        }
    }

    /// Phase name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stops the phase, returning its duration.
    pub fn stop(self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time so far, without stopping.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Thread-safe accumulating timers, one counter per named stage.
///
/// [`Phase`] times one scoped measurement on one thread; the parallel
/// pipeline instead needs many workers charging time to shared stage
/// buckets ("parse", "pre", "dep", "fix", …). Each bucket is an atomic
/// nanosecond counter, so concurrent [`StageTimers::add`] calls never block
/// each other; the registry mutex is touched only when a stage name is
/// first seen (or at snapshot time). Stage order in snapshots is first-use
/// order, which keeps reports deterministic.
#[derive(Debug, Default)]
pub struct StageTimers {
    stages: Mutex<Vec<(String, Arc<AtomicU64>)>>,
}

impl StageTimers {
    /// Creates an empty set of timers.
    pub fn new() -> Self {
        Self::default()
    }

    fn counter(&self, stage: &str) -> Arc<AtomicU64> {
        let mut stages = self.stages.lock();
        if let Some((_, c)) = stages.iter().find(|(name, _)| name == stage) {
            return c.clone();
        }
        let c = Arc::new(AtomicU64::new(0));
        stages.push((stage.to_string(), c.clone()));
        c
    }

    /// Charges `elapsed` to `stage`.
    pub fn add(&self, stage: &str, elapsed: Duration) {
        self.counter(stage)
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Runs `f`, charging its wall time to `stage`.
    pub fn time<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(stage, start.elapsed());
        out
    }

    /// Total charged to `stage` so far.
    pub fn get(&self, stage: &str) -> Duration {
        let stages = self.stages.lock();
        stages
            .iter()
            .find(|(name, _)| name == stage)
            .map_or(Duration::ZERO, |(_, c)| {
                Duration::from_nanos(c.load(Ordering::Relaxed))
            })
    }

    /// All stages with their accumulated times, in first-use order.
    pub fn snapshot(&self) -> Vec<(String, Duration)> {
        let stages = self.stages.lock();
        stages
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    Duration::from_nanos(c.load(Ordering::Relaxed)),
                )
            })
            .collect()
    }
}

/// Peak resident-set size of this process in bytes, if the platform exposes
/// it (`VmHWM` in `/proc/self/status`); `None` elsewhere.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Current resident-set size of this process in bytes (`VmRSS`).
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Formats a duration as the paper's tables do: whole seconds for large
/// values, millisecond precision below 10 s.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 10.0 {
        format!("{secs:.0}")
    } else {
        format!("{secs:.3}")
    }
}

/// Formats a byte count in binary megabytes, as the paper's tables do.
pub fn fmt_megabytes(bytes: u64) -> String {
    format!("{:.0}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_measures_nonzero_time() {
        let p = Phase::start("test");
        assert_eq!(p.name(), "test");
        std::thread::sleep(Duration::from_millis(2));
        assert!(p.stop() >= Duration::from_millis(1));
    }

    #[test]
    fn stage_timers_accumulate_across_threads() {
        let timers = StageTimers::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        timers.add("work", Duration::from_micros(10));
                    }
                });
            }
        });
        assert_eq!(timers.get("work"), Duration::from_micros(4 * 50 * 10));
        let r = timers.time("timed", || 7);
        assert_eq!(r, 7);
        assert!(timers.get("timed") > Duration::ZERO);
        let names: Vec<String> = timers.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["work".to_string(), "timed".to_string()]);
    }

    #[test]
    fn rss_available_on_linux() {
        if cfg!(target_os = "linux") {
            let peak = peak_rss_bytes().expect("VmHWM should parse on Linux");
            let cur = current_rss_bytes().expect("VmRSS should parse on Linux");
            assert!(peak >= cur, "high-water mark below current RSS");
            assert!(cur > 0);
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(90)), "90");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn megabyte_formatting() {
        assert_eq!(fmt_megabytes(24 * 1024 * 1024), "24");
    }
}
