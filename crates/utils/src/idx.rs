//! Strongly typed indices and index-keyed vectors.
//!
//! Every entity in the IR and in the analysis (procedure, basic block,
//! control point, variable, abstract location, pack, …) is identified by a
//! newtyped `u32`. The [`new_index!`](crate::new_index) macro generates the newtype and its
//! [`Idx`] implementation; [`IndexVec`] is the arena those indices point
//! into.
//!
//! # Examples
//!
//! ```
//! use sga_utils::{new_index, Idx, IndexVec};
//!
//! new_index!(pub struct WidgetId, "w");
//!
//! let mut widgets: IndexVec<WidgetId, String> = IndexVec::new();
//! let a = widgets.push("alpha".to_string());
//! let b = widgets.push("beta".to_string());
//! assert_eq!(widgets[a], "alpha");
//! assert_eq!(b.index(), 1);
//! assert_eq!(format!("{a:?}"), "w0");
//! ```

use std::fmt;
use std::marker::PhantomData;

/// A typed index: a cheap copyable handle convertible to/from `usize`.
pub trait Idx: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + 'static {
    /// Builds the index from a raw position.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds `u32::MAX`.
    fn new(i: usize) -> Self;
    /// Returns the raw position.
    fn index(self) -> usize;
}

/// Declares a new index type implementing [`Idx`].
///
/// The second argument is a short prefix used by the `Debug` impl, so that
/// `b3` reads as "block 3" in dumps.
#[macro_export]
macro_rules! new_index {
    ($v:vis struct $name:ident, $prefix:literal) => {
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $v struct $name(pub u32);

        impl $crate::idx::Idx for $name {
            #[inline]
            fn new(i: usize) -> Self {
                assert!(i <= u32::MAX as usize, "index overflow");
                $name(i as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

/// A vector addressed by a typed index rather than `usize`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IndexVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IndexVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        IndexVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty vector with capacity for `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        IndexVec {
            raw: Vec::with_capacity(n),
            _marker: PhantomData,
        }
    }

    /// Creates a vector of `n` clones of `elem`.
    pub fn from_elem_n(elem: T, n: usize) -> Self
    where
        T: Clone,
    {
        IndexVec {
            raw: vec![elem; n],
            _marker: PhantomData,
        }
    }

    /// Wraps an existing `Vec`.
    pub fn from_raw(raw: Vec<T>) -> Self {
        IndexVec {
            raw,
            _marker: PhantomData,
        }
    }

    /// Appends an element, returning its index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::new(self.raw.len());
        self.raw.push(value);
        idx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The index the *next* `push` would return.
    pub fn next_index(&self) -> I {
        I::new(self.raw.len())
    }

    /// Borrow by index, `None` if out of range.
    pub fn get(&self, index: I) -> Option<&T> {
        self.raw.get(index.index())
    }

    /// Mutable borrow by index, `None` if out of range.
    pub fn get_mut(&mut self, index: I) -> Option<&mut T> {
        self.raw.get_mut(index.index())
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates mutably over the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates over `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> + '_ {
        self.raw.iter().enumerate().map(|(i, t)| (I::new(i), t))
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::new)
    }

    /// Consumes the arena, returning the underlying `Vec`.
    pub fn into_raw(self) -> Vec<T> {
        self.raw
    }

    /// Borrows the underlying slice.
    pub fn as_raw(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IndexVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter_enumerated()).finish()
    }
}

impl<I: Idx, T> std::ops::Index<I> for IndexVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, index: I) -> &T {
        &self.raw[index.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IndexVec<I, T> {
    #[inline]
    fn index_mut(&mut self, index: I) -> &mut T {
        &mut self.raw[index.index()]
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IndexVec {
            raw: Vec::from_iter(iter),
            _marker: PhantomData,
        }
    }
}

impl<I: Idx, T> Extend<T> for IndexVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

impl<I: Idx, T> IntoIterator for IndexVec<I, T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.into_iter()
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IndexVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    new_index!(struct TestId, "t");

    #[test]
    fn push_and_index() {
        let mut v: IndexVec<TestId, i32> = IndexVec::new();
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        assert_eq!(v.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn debug_uses_prefix() {
        let id = TestId::new(7);
        assert_eq!(format!("{id:?}"), "t7");
        assert_eq!(format!("{id}"), "t7");
    }

    #[test]
    fn iter_enumerated_yields_indices_in_order() {
        let v: IndexVec<TestId, char> = "abc".chars().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, c)| (i.index(), *c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn next_index_tracks_len() {
        let mut v: IndexVec<TestId, ()> = IndexVec::new();
        assert_eq!(v.next_index(), TestId::new(0));
        v.push(());
        assert_eq!(v.next_index(), TestId::new(1));
    }

    #[test]
    fn from_elem_n_clones() {
        let v: IndexVec<TestId, u8> = IndexVec::from_elem_n(9, 4);
        assert_eq!(v.as_raw(), &[9, 9, 9, 9]);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let v: IndexVec<TestId, u8> = IndexVec::new();
        assert!(v.get(TestId::new(0)).is_none());
    }
}
