//! Graph algorithms used by the CFG and call-graph layers.
//!
//! * [`Scc`] — Tarjan's strongly-connected-components algorithm (iterative,
//!   so deep CFGs cannot overflow the stack). The paper's Table 1 reports
//!   `maxSCC` of the call graph, and §5 explains why large call-graph SCCs
//!   dominate analysis cost; we need the same measurement.
//! * [`reverse_postorder`] — the iteration order for dense worklists.
//! * [`WtoItem`]/[`weak_topological_order`] — Bourdoncle's weak topological
//!   order; its component heads are exactly the widening points of both the
//!   dense and sparse fixpoint engines.

use crate::bitset::BitSet;

/// A read-only view of a directed graph with nodes `0..num_nodes`.
pub trait DiGraph {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;
    /// Successors of `node`.
    fn successors(&self, node: usize) -> Vec<usize>;
}

/// An adjacency-list graph, the default [`DiGraph`] implementation.
#[derive(Clone, Debug, Default)]
pub struct AdjGraph {
    succ: Vec<Vec<usize>>,
}

impl AdjGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        AdjGraph {
            succ: vec![Vec::new(); n],
        }
    }

    /// Adds the edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(to < self.succ.len(), "edge target {to} out of range");
        self.succ[from].push(to);
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }
}

impl DiGraph for AdjGraph {
    fn num_nodes(&self) -> usize {
        self.succ.len()
    }
    fn successors(&self, node: usize) -> Vec<usize> {
        self.succ[node].clone()
    }
}

/// The strongly connected components of a graph, in reverse topological
/// order (callees before callers when applied to a call graph).
#[derive(Clone, Debug)]
pub struct Scc {
    /// `component[v]` is the id of `v`'s SCC.
    pub component: Vec<usize>,
    /// Members of each SCC; `components[i]` lists the nodes of SCC `i`.
    pub components: Vec<Vec<usize>>,
}

impl Scc {
    /// Computes SCCs with an iterative Tarjan traversal.
    pub fn compute(graph: &impl DiGraph) -> Scc {
        let n = graph.num_nodes();
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut component = vec![UNSET; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;

        // Explicit DFS frames: (node, successor list, next successor index).
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();

        for root in 0..n {
            if index[root] != UNSET {
                continue;
            }
            index[root] = counter;
            lowlink[root] = counter;
            counter += 1;
            stack.push(root);
            on_stack[root] = true;
            frames.push((root, graph.successors(root), 0));

            while let Some(frame) = frames.last_mut() {
                let v = frame.0;
                if frame.2 < frame.1.len() {
                    let w = frame.1[frame.2];
                    frame.2 += 1;
                    if index[w] == UNSET {
                        index[w] = counter;
                        lowlink[w] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, graph.successors(w), 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let p = parent.0;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let id = components.len();
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component[w] = id;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(members);
                    }
                }
            }
        }
        Scc {
            component,
            components,
        }
    }

    /// Number of SCCs.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the graph was empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Size of the largest component (the paper's `maxSCC` column).
    pub fn max_component_size(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `v` belongs to a nontrivial cycle (an SCC of size > 1, or a
    /// self-loop detected by the caller).
    pub fn in_cycle(&self, v: usize) -> bool {
        self.components[self.component[v]].len() > 1
    }
}

/// Reverse postorder of the nodes reachable from `entry`.
pub fn reverse_postorder(graph: &impl DiGraph, entry: usize) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut visited = BitSet::new(n.max(1));
    let mut post: Vec<usize> = Vec::new();
    // Frame: (node, successors, next index).
    let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    if n == 0 {
        return post;
    }
    visited.insert(entry);
    frames.push((entry, graph.successors(entry), 0));
    while let Some(frame) = frames.last_mut() {
        let v = frame.0;
        if frame.2 < frame.1.len() {
            let w = frame.1[frame.2];
            frame.2 += 1;
            if visited.insert(w) {
                frames.push((w, graph.successors(w), 0));
            }
        } else {
            post.push(v);
            frames.pop();
        }
    }
    post.reverse();
    post
}

/// One element of a weak topological order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WtoItem {
    /// A node outside any cycle.
    Node(usize),
    /// A cycle: the head (widening point) followed by the body in WTO order.
    Component(usize, Vec<WtoItem>),
}

impl WtoItem {
    fn push_heads(&self, out: &mut Vec<usize>) {
        if let WtoItem::Component(h, body) = self {
            out.push(*h);
            for item in body {
                item.push_heads(out);
            }
        }
    }

    fn push_nodes(&self, out: &mut Vec<usize>) {
        match self {
            WtoItem::Node(v) => out.push(*v),
            WtoItem::Component(h, body) => {
                out.push(*h);
                for item in body {
                    item.push_nodes(out);
                }
            }
        }
    }
}

/// A weak topological order (Bourdoncle 1993) of the nodes reachable from an
/// entry node.
#[derive(Clone, Debug, Default)]
pub struct Wto {
    /// Top-level WTO items in order.
    pub items: Vec<WtoItem>,
}

impl Wto {
    /// All component heads — the widening points.
    pub fn heads(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for item in &self.items {
            item.push_heads(&mut out);
        }
        out
    }

    /// All nodes in WTO order (heads before their bodies).
    pub fn linearize(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for item in &self.items {
            item.push_nodes(&mut out);
        }
        out
    }
}

/// Computes a weak topological order using Bourdoncle's recursive-strategy
/// algorithm (hierarchical Tarjan).
///
/// Self-loops make their node a component head, as required for widening.
pub fn weak_topological_order(graph: &impl DiGraph, entry: usize) -> Wto {
    // Bourdoncle's algorithm is most naturally recursive; CFG procedure
    // bodies are modest in depth after block-level construction, but we keep
    // an explicit depth budget by boxing the recursion on the heap via a
    // helper struct.
    struct Ctx<'g, G: DiGraph> {
        graph: &'g G,
        dfn: Vec<usize>,
        num: usize,
        stack: Vec<usize>,
    }
    const UNVISITED: usize = 0;
    const DONE: usize = usize::MAX;

    fn visit<G: DiGraph>(ctx: &mut Ctx<'_, G>, v: usize, partition: &mut Vec<WtoItem>) -> usize {
        ctx.stack.push(v);
        ctx.num += 1;
        ctx.dfn[v] = ctx.num;
        let mut head = ctx.dfn[v];
        let mut loop_found = false;
        for w in ctx.graph.successors(v) {
            let min = if ctx.dfn[w] == UNVISITED {
                visit(ctx, w, partition)
            } else {
                ctx.dfn[w]
            };
            if min != DONE && min <= head {
                head = min;
                loop_found = true;
            }
        }
        if head == ctx.dfn[v] {
            ctx.dfn[v] = DONE;
            let mut element = ctx.stack.pop().expect("wto stack underflow");
            if loop_found {
                while element != v {
                    ctx.dfn[element] = UNVISITED;
                    element = ctx.stack.pop().expect("wto stack underflow");
                }
                partition.insert(0, component(ctx, v));
            } else {
                partition.insert(0, WtoItem::Node(v));
            }
        }
        head
    }

    fn component<G: DiGraph>(ctx: &mut Ctx<'_, G>, v: usize) -> WtoItem {
        let mut partition: Vec<WtoItem> = Vec::new();
        for w in ctx.graph.successors(v) {
            if ctx.dfn[w] == UNVISITED {
                visit(ctx, w, &mut partition);
            }
        }
        WtoItem::Component(v, partition)
    }

    let n = graph.num_nodes();
    let mut ctx = Ctx {
        graph,
        dfn: vec![UNVISITED; n],
        num: 0,
        stack: Vec::new(),
    };
    let mut partition = Vec::new();
    if n > 0 {
        visit(&mut ctx, entry, &mut partition);
    }
    Wto { items: partition }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = AdjGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let scc = Scc::compute(&diamond());
        assert_eq!(scc.len(), 4);
        assert_eq!(scc.max_component_size(), 1);
        assert!(!scc.in_cycle(0));
    }

    #[test]
    fn scc_finds_cycle() {
        // 0 -> 1 -> 2 -> 0, 2 -> 3
        let mut g = AdjGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        let scc = Scc::compute(&g);
        assert_eq!(scc.max_component_size(), 3);
        assert_eq!(scc.component[0], scc.component[1]);
        assert_eq!(scc.component[1], scc.component[2]);
        assert_ne!(scc.component[2], scc.component[3]);
        // Reverse topological: node 3's component comes before the cycle.
        assert!(scc.component[3] < scc.component[0]);
        assert!(scc.in_cycle(0));
        assert!(!scc.in_cycle(3));
    }

    #[test]
    fn rpo_of_diamond_starts_at_entry_ends_at_exit() {
        let rpo = reverse_postorder(&diamond(), 0);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo[3], 3);
    }

    #[test]
    fn rpo_skips_unreachable() {
        let mut g = AdjGraph::new(3);
        g.add_edge(0, 1);
        let rpo = reverse_postorder(&g, 0);
        assert_eq!(rpo, vec![0, 1]);
    }

    #[test]
    fn wto_of_loop_marks_head() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3  (while loop)
        let mut g = AdjGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let wto = weak_topological_order(&g, 0);
        assert_eq!(wto.heads(), vec![1]);
        assert_eq!(wto.linearize(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn wto_nested_loops() {
        // 0 -> 1 -> 2 -> 3 -> 2 (inner), 3 -> 1 (outer), 3 -> 4
        let mut g = AdjGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        g.add_edge(3, 1);
        g.add_edge(3, 4);
        let wto = weak_topological_order(&g, 0);
        let mut heads = wto.heads();
        heads.sort_unstable();
        assert_eq!(heads, vec![1, 2]);
    }

    #[test]
    fn scc_empty_graph() {
        let g = AdjGraph::new(0);
        let scc = Scc::compute(&g);
        assert!(scc.is_empty());
        assert_eq!(scc.max_component_size(), 0);
    }

    #[test]
    fn scc_large_path_does_not_overflow() {
        // A 200k-node path exercises the iterative traversal.
        let n = 200_000;
        let mut g = AdjGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        let scc = Scc::compute(&g);
        assert_eq!(scc.len(), n);
    }
}
