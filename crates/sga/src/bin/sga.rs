//! The `sga` command-line analyzer: a miniature Sparrow.
//!
//! ```text
//! sga <file.c> [--engine vanilla|base|sparse] [--domain interval|octagon]
//!              [--check] [--dump-ir] [--dump-values] [--stats]
//! ```
//!
//! Exit code 0 when no definite alarm is found, 1 otherwise, 2 on usage or
//! frontend errors.

use sga::analysis::interval::{self, Engine};
use sga::analysis::{checker, octagon};
use sga::domains::Lattice;
use std::process::ExitCode;

struct Options {
    file: String,
    engine: Engine,
    domain: Domain,
    check: bool,
    dump_ir: bool,
    dump_values: bool,
    stats: bool,
}

#[derive(PartialEq)]
enum Domain {
    Interval,
    Octagon,
}

const USAGE: &str = "usage: sga <file.c> [--engine vanilla|base|sparse] \
                     [--domain interval|octagon] [--check] [--dump-ir] \
                     [--dump-values] [--stats]";

fn parse_args() -> Result<Options, String> {
    let mut file: Option<String> = None;
    let mut engine = Engine::Sparse;
    let mut domain = Domain::Interval;
    let (mut check, mut dump_ir, mut dump_values, mut stats) = (false, false, false, false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("vanilla") => Engine::Vanilla,
                    Some("base") => Engine::Base,
                    Some("sparse") => Engine::Sparse,
                    other => return Err(format!("bad --engine {other:?}")),
                }
            }
            "--domain" => {
                domain = match args.next().as_deref() {
                    Some("interval") => Domain::Interval,
                    Some("octagon") => Domain::Octagon,
                    other => return Err(format!("bad --domain {other:?}")),
                }
            }
            "--check" => check = true,
            "--dump-ir" => dump_ir = true,
            "--dump-values" => dump_values = true,
            "--stats" => stats = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let file = file.ok_or_else(|| USAGE.to_string())?;
    Ok(Options { file, engine, domain, check, dump_ir, dump_values, stats })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sga: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let program = match sga::frontend::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sga: {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    if opts.dump_ir {
        print!("{}", sga::ir::pretty::program(&program));
    }

    let mut definite = false;
    match opts.domain {
        Domain::Interval => {
            let result = interval::analyze(&program, opts.engine);
            if opts.stats {
                let s = &result.stats;
                eprintln!(
                    "engine {:?}: total {:?} (pre {:?}, dep {:?}, fix {:?}), {} evaluations, {} locations, {} dep edges",
                    opts.engine, s.total_time, s.pre_time, s.dep_time, s.fix_time,
                    s.iterations, s.num_locs, s.dep_edges
                );
            }
            if opts.dump_values {
                for cp in program.all_points() {
                    let st = result.state_at(cp);
                    if st.is_empty() {
                        continue;
                    }
                    println!("{cp}: {}", sga::ir::pretty::cmd(&program, program.cmd(cp)));
                    for (l, v) in st.iter() {
                        if !v.is_bottom() {
                            println!("    {l:?} = {v:?}");
                        }
                    }
                }
            }
            if opts.check {
                let overruns = checker::check_overruns(&program, &result);
                let nulls = checker::check_null_derefs(&program, &result);
                for a in &overruns {
                    println!("{a}");
                }
                for a in &nulls {
                    println!("{a}");
                }
                println!(
                    "{} buffer alarm(s), {} null-dereference alarm(s)",
                    overruns.len(),
                    nulls.len()
                );
                definite = overruns.iter().any(|a| a.definite)
                    || nulls.iter().any(|a| a.definite);
            }
        }
        Domain::Octagon => {
            let result = octagon::analyze(&program, opts.engine);
            if opts.stats {
                let s = &result.stats;
                eprintln!(
                    "engine {:?} (octagon): total {:?} (fix {:?}), {} evaluations, {} packs (avg size {:.1})",
                    opts.engine, s.total_time, s.fix_time, s.iterations,
                    result.packs.len(), result.packs.average_size()
                );
            }
            if opts.dump_values {
                for (v, info) in program.vars.iter_enumerated() {
                    if info.kind != sga::ir::VarKind::Global {
                        continue;
                    }
                    // Show each global's projection at program exit.
                    let main_exit = sga::ir::Cp::new(
                        program.main,
                        program.procs[program.main].exit,
                    );
                    println!("{} ∈ {}", info.name, result.itv_of(main_exit, v));
                }
            }
            if opts.check {
                eprintln!("sga: --check is interval-domain only (octagon is for relations)");
            }
        }
    }
    if definite {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
