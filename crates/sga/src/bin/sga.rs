//! The `sga` command-line analyzer: a miniature Sparrow.
//!
//! ```text
//! sga <file.c> [--engine vanilla|base|sparse] [--domain interval|octagon]
//!              [--widening naive|threshold|delayed] [--dep-backend bdd|csr]
//!              [--triage octagon|path|both] [--max-steps N] [--timeout-ms N]
//!              [--check] [--dump-ir] [--dump-values] [--stats]
//! sga check <file.c> [--sarif FILE] [--engine vanilla|base|sparse]
//!           [--widening naive|threshold|delayed] [--dep-backend bdd|csr]
//!           [--triage octagon|path|both]
//!           [--max-steps N] [--timeout-ms N] [--isolation thread|process]
//!           [--worker-mem-mb N] [--worker-timeout-ms N]
//! sga analyze <dir> | --corpus units=N,kloc=K,seed=S
//!             [--jobs N (0=auto)] [--cache-dir D] [--no-cache] [--canonical]
//!             [--cache-max-entries N]
//!             [--no-bypass] [--widening naive|threshold|delayed]
//!             [--dep-backend bdd|csr] [--triage octagon|path|both]
//!             [--isolation thread|process]
//!             [--worker-mem-mb N] [--worker-timeout-ms N]
//!             [--keep-going | --fail-fast] [--max-steps N] [--timeout-ms N]
//!             [--resume] [--validate] [--journal-dir D]
//!             [--quarantine-keep N] [--faults SPEC] [--out FILE]
//!             [--baseline REPORT]
//! sga serve <dir> [--tcp ADDR] [--unix PATH] [--port-file FILE]
//!           [--poll-ms N] [--jobs N (0=auto)] [--cache-dir D] [--no-cache]
//!           [--cache-max-entries N] [--no-bypass]
//!           [--widening naive|threshold|delayed] [--dep-backend bdd|csr]
//!           [--triage octagon|path|both]
//!           [--max-steps N] [--timeout-ms N] [--isolation thread|process]
//!           [--worker-mem-mb N] [--worker-timeout-ms N]
//!           [--resume] [--journal-dir D] [--queue-cap N] [--sub-queue-cap N]
//!           [--write-deadline-ms N] [--sub-sndbuf BYTES] [--max-line BYTES]
//!           [--faults SPEC]
//! sga watch <addr> [--once | --max-events N | --report | --status
//!           | --edit UNIT FILE | --shutdown]
//!           [--timeout-ms N (0=none)] [--retries N]
//! sga cache gc <dir> [--keep N] [--max-entries N] [--serve-journal-max N]
//! ```
//!
//! `sga check` runs all four checkers (buffer overrun, null dereference,
//! division by zero, uninitialized read) over one file, re-examines every
//! possible interval alarm against the packed octagon analysis (demoting
//! relationally-refuted ones to *discharged*), prints the structured
//! diagnostics, and with `--sarif` writes a SARIF 2.1.0 log (validated
//! against the vendored schema before it is written).
//!
//! `--triage octagon|path|both` (default `both`) selects the discharge
//! layers: `octagon` re-runs possible alarms against the packed octagon
//! relations only; `path` walks the dominator tree from each alarm to its
//! procedure entry and discharges alarms whose dominating `assume` guard
//! chain is infeasible under the interval bindings (a dead guard, or a
//! contradictory conjunction of stable guards); `both` layers the path
//! pass after the octagon pass, so its discharged set is a superset by
//! construction. Every path discharge carries a `path_infeasible` proving
//! pack naming the guard chain with branch polarities and the refuting
//! domain fact. Definite alarms are never triaged, and a budget-degraded
//! unit skips the path layer. The mode is part of the unit cache key —
//! switching `--triage` between runs (or daemon restarts) never replays
//! another mode's cached or journaled diagnostics.
//!
//! `sga analyze` runs the batch pipeline over every `*.c` file in a
//! directory (or over a generated corpus) and prints a JSON run report.
//! `--baseline old-report.json` diffs the run's open diagnostics against a
//! previous report by content fingerprint — each is classified
//! `new`/`unchanged`, disappeared ones are `fixed` — and a *new definite*
//! alarm fails the run with exit code 6.
//! Under `--keep-going` (the default) a crashing or unparsable unit is
//! recorded in the report while the rest of the batch completes;
//! `--fail-fast` aborts the run on the first failure. `--max-steps` /
//! `--timeout-ms` bound each unit's fixpoint — over-budget units degrade
//! soundly and are marked `degraded`. `--faults` injects deterministic
//! faults for testing (see `pipeline::fault`). `--dep-backend` selects the
//! dependency representation the sparse solver iterates — `csr` (default,
//! compact adjacency + flat worklist) or `bdd` (the faithful §5 store) —
//! with byte-identical canonical reports either way; the choice is part of
//! the unit cache key, so the two backends never share cache entries.
//!
//! `--isolation process` re-executes the binary as one supervised worker
//! process per unit (`thread`, the default, runs units on in-process
//! worker threads): a unit that aborts, overflows its stack, exhausts
//! memory, or spins forever kills only its worker — retried once, then
//! recorded `crashed` — instead of the whole run or daemon.
//! `--worker-mem-mb` caps each worker's address space (`RLIMIT_AS`);
//! `--worker-timeout-ms` arms a wall-clock supervisor that SIGKILLs a
//! stalled worker (with an `RLIMIT_CPU` backstop). The cooperative
//! `--timeout-ms` budget still degrades soundly *inside* the worker —
//! budget exhaustion is `degraded`, a worker kill is `crashed`. Canonical
//! reports are byte-identical across isolation modes, and both modes share
//! cache entries.
//!
//! `--faults` keys directives by **unit index** in the batch driver
//! (`abort@2` = unit 2) but by **1-based round attempt** in `sga serve`
//! (`panic@2` = second edit round); serve accepts only `panic` and `stall`
//! and rejects plans carrying anything else, rather than silently ignoring
//! them.
//!
//! Batch runs are durable and checkable: every finished unit is committed
//! to a write-ahead journal before its cache store, `--resume` replays
//! that journal after a crash or interruption (producing a report
//! byte-identical to an uninterrupted run's), SIGINT/SIGTERM drain
//! in-flight workers and flush a partial report marked `interrupted`, and
//! `--validate` re-checks every unit against the paper's correctness
//! contracts (post-fixpoint, Lemma 1, the Def. 5 side condition) plus the
//! cache. `sga cache gc` prunes quarantined entries and stranded temp
//! files, and with `--max-entries` evicts cache entries beyond the cap,
//! least-recently-accessed first. `--jobs 0` auto-detects the machine's
//! parallelism.
//!
//! `sga serve` keeps a corpus loaded and re-analyzes on edit: clients send
//! line-delimited JSON commands over TCP (`--tcp`, default `127.0.0.1:0`;
//! the bound address goes to `--port-file`) or a Unix socket (`--unix`),
//! and subscribers receive one alarm-diff event per edit round. Only units
//! whose imported symbols changed interface are re-analyzed (see
//! `serve::engine`). `--poll-ms` additionally watches the corpus directory
//! for out-of-band file edits. The daemon is built for hostile traffic:
//! the request queue is bounded (`--queue-cap`) and overload edits are
//! shed with `{"ok":false,"shed":true}`; each subscriber gets its own
//! writer thread with a bounded queue and write deadline
//! (`--sub-queue-cap`, `--write-deadline-ms`), so a stalled consumer is
//! evicted instead of blocking rounds; a panicking round is supervised —
//! the daemon broadcasts `round_degraded`, rebuilds the engine from its
//! journal, and broadcasts `engine_restarted`; every round's unit results
//! are journaled (`--journal-dir`, default `serve-journal/` under the
//! cache), and `--resume` warm-restarts from that journal after a crash
//! with a byte-identical report. `--faults panic@ROUND,stall@ROUND=MS`
//! injects deterministic round-keyed faults for testing. `sga watch
//! <addr>` is the matching client: by default it streams diff events;
//! `--once` exits after the first one,
//! `--edit`/`--report`/`--status`/`--shutdown` issue one command each,
//! under a connect/read deadline (`--timeout-ms`) with shed-edit retry
//! (`--retries`).
//!
//! Exit codes, consolidated:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (single-file / `check`: no open definite alarm) |
//! | 1    | single-file mode or `sga check` found an open definite alarm |
//! | 2    | usage, frontend, or IO error |
//! | 3    | batch completed, but some units crashed (partial failure) |
//! | 4    | batch completed, but the validation oracle found violations |
//! | 5    | batch interrupted (SIGINT/SIGTERM); partial report flushed |
//! | 6    | batch completed, but `--baseline` found new definite alarms |
//!
//! When several apply, the most urgent wins: 5 over 4 over 3 over 6
//! (a partial or invalid run's baseline diff is itself suspect).

use sga::analysis::budget::Budget;
use sga::analysis::depstore::DepBackend;
use sga::analysis::interval::{self, AnalyzeOptions, Engine};
use sga::analysis::triage::{self, TriageMode, TriageOptions};
use sga::analysis::widening::{WideningConfig, WideningStrategy};
use sga::analysis::{checker, octagon, preanalysis};
use sga::diag::Diagnostic;
use sga::domains::Lattice;
use sga::pipeline::{self, FaultPlan, IsolationMode, PipelineOptions, Project};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    file: String,
    engine: Engine,
    domain: Domain,
    widening: WideningConfig,
    dep_backend: DepBackend,
    triage: TriageMode,
    budget: Budget,
    check: bool,
    dump_ir: bool,
    dump_values: bool,
    stats: bool,
}

#[derive(PartialEq)]
enum Domain {
    Interval,
    Octagon,
}

const USAGE: &str = "usage: sga <file.c> [--engine vanilla|base|sparse] \
                     [--domain interval|octagon] \
                     [--widening naive|threshold|delayed] \
                     [--dep-backend bdd|csr] [--triage octagon|path|both] \
                     [--max-steps N] [--timeout-ms N] [--check] [--dump-ir] \
                     [--dump-values] [--stats]";

/// Parses a positive-integer flag value.
fn num_flag(flag: &str, value: Option<String>) -> Result<u64, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("bad {flag} {v:?}"))
}

fn parse_args() -> Result<Options, String> {
    let mut file: Option<String> = None;
    let mut engine = Engine::Sparse;
    let mut domain = Domain::Interval;
    let mut widening = WideningConfig::default();
    let mut dep_backend = DepBackend::default();
    let mut triage_mode = TriageMode::default();
    let mut budget = Budget::unbounded();
    let (mut check, mut dump_ir, mut dump_values, mut stats) = (false, false, false, false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("vanilla") => Engine::Vanilla,
                    Some("base") => Engine::Base,
                    Some("sparse") => Engine::Sparse,
                    other => return Err(format!("bad --engine {other:?}")),
                }
            }
            "--domain" => {
                domain = match args.next().as_deref() {
                    Some("interval") => Domain::Interval,
                    Some("octagon") => Domain::Octagon,
                    other => return Err(format!("bad --domain {other:?}")),
                }
            }
            "--widening" => {
                widening = match args.next().as_deref().and_then(WideningStrategy::parse) {
                    Some(s) => WideningConfig::of(s),
                    None => return Err("bad --widening (naive|threshold|delayed)".to_string()),
                }
            }
            "--dep-backend" => {
                dep_backend = match args.next().as_deref().and_then(DepBackend::parse) {
                    Some(b) => b,
                    None => return Err("bad --dep-backend (bdd|csr)".to_string()),
                }
            }
            "--triage" => {
                triage_mode = match args.next().as_deref().and_then(TriageMode::parse) {
                    Some(m) => m,
                    None => return Err("bad --triage (octagon|path|both)".to_string()),
                }
            }
            "--max-steps" => budget.max_steps = Some(num_flag("--max-steps", args.next())?),
            "--timeout-ms" => budget.timeout_ms = Some(num_flag("--timeout-ms", args.next())?),
            "--check" => check = true,
            "--dump-ir" => dump_ir = true,
            "--dump-values" => dump_values = true,
            "--stats" => stats = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let file = file.ok_or_else(|| USAGE.to_string())?;
    Ok(Options {
        file,
        engine,
        domain,
        widening,
        dep_backend,
        triage: triage_mode,
        budget,
        check,
        dump_ir,
        dump_values,
        stats,
    })
}

const ANALYZE_USAGE: &str = "usage: sga analyze <dir> | --corpus units=N,kloc=K,seed=S \
                             [--jobs N (0=auto)] [--cache-dir D] [--no-cache] [--canonical] \
                             [--cache-max-entries N] \
                             [--no-bypass] [--widening naive|threshold|delayed] \
                             [--dep-backend bdd|csr] [--triage octagon|path|both] \
                             [--isolation thread|process] [--worker-mem-mb N] \
                             [--worker-timeout-ms N] \
                             [--keep-going | --fail-fast] \
                             [--max-steps N] [--timeout-ms N] \
                             [--resume] [--validate] [--journal-dir D] \
                             [--quarantine-keep N] \
                             [--faults SPEC (unit-indexed, e.g. abort@2; \
                             serve keys the same spec by round attempt)] \
                             [--out FILE] [--baseline REPORT]";

fn parse_analyze_args(
    args: impl Iterator<Item = String>,
) -> Result<(Project, PipelineOptions, Option<PathBuf>, bool), String> {
    let mut project: Option<Project> = None;
    let mut opts = PipelineOptions::default();
    let mut out: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                // 0 = auto-detect (resolved by the pipeline).
                let n = args.next().ok_or("--jobs needs a value")?;
                opts.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs {n:?}"))?;
            }
            "--cache-max-entries" => {
                opts.cache_max_entries =
                    Some(num_flag("--cache-max-entries", args.next())? as usize);
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a value")?,
                ));
            }
            "--no-cache" => no_cache = true,
            "--canonical" => opts.canonical = true,
            "--no-bypass" => opts.depgen.bypass = false,
            "--isolation" => {
                opts.isolation = match args.next().as_deref().and_then(IsolationMode::parse) {
                    Some(m) => m,
                    None => return Err("bad --isolation (thread|process)".to_string()),
                }
            }
            "--worker-mem-mb" => {
                opts.worker_limits.mem_mb = Some(num_flag("--worker-mem-mb", args.next())?);
            }
            "--worker-timeout-ms" => {
                opts.worker_limits.timeout_ms = Some(num_flag("--worker-timeout-ms", args.next())?);
            }
            "--keep-going" => opts.keep_going = true,
            "--fail-fast" => opts.keep_going = false,
            "--max-steps" => {
                opts.budget.max_steps = Some(num_flag("--max-steps", args.next())?);
            }
            "--timeout-ms" => {
                opts.budget.timeout_ms = Some(num_flag("--timeout-ms", args.next())?);
            }
            "--resume" => opts.resume = true,
            "--validate" => opts.validate = true,
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a report file")?,
                ));
            }
            "--journal-dir" => {
                opts.journal_dir = Some(PathBuf::from(
                    args.next().ok_or("--journal-dir needs a value")?,
                ));
            }
            "--quarantine-keep" => {
                opts.quarantine_keep = num_flag("--quarantine-keep", args.next())? as usize;
            }
            "--faults" => {
                let spec = args.next().ok_or("--faults needs a spec")?;
                opts.faults = FaultPlan::parse(&spec)?;
            }
            "--widening" => {
                opts.widening = match args.next().as_deref().and_then(WideningStrategy::parse) {
                    Some(s) => WideningConfig::of(s),
                    None => return Err("bad --widening (naive|threshold|delayed)".to_string()),
                }
            }
            "--dep-backend" => {
                opts.dep_backend = match args.next().as_deref().and_then(DepBackend::parse) {
                    Some(b) => b,
                    None => return Err("bad --dep-backend (bdd|csr)".to_string()),
                }
            }
            "--triage" => {
                opts.triage = match args.next().as_deref().and_then(TriageMode::parse) {
                    Some(m) => m,
                    None => return Err("bad --triage (octagon|path|both)".to_string()),
                }
            }
            "--out" => out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--corpus" => {
                let spec = args.next().ok_or("--corpus needs units=N,kloc=K,seed=S")?;
                let (mut units, mut kloc, mut seed) = (4usize, 1usize, 0u64);
                for part in spec.split(',') {
                    match part.split_once('=') {
                        Some(("units", v)) => {
                            units = v.parse().map_err(|_| format!("bad units={v}"))?
                        }
                        Some(("kloc", v)) => {
                            kloc = v.parse().map_err(|_| format!("bad kloc={v}"))?
                        }
                        Some(("seed", v)) => {
                            seed = v.parse().map_err(|_| format!("bad seed={v}"))?
                        }
                        _ => return Err(format!("bad --corpus field {part:?}")),
                    }
                }
                project = Some(Project::Corpus { units, kloc, seed });
            }
            "--help" | "-h" => return Err(ANALYZE_USAGE.to_string()),
            other if !other.starts_with('-') && project.is_none() => {
                project = Some(Project::Dir(PathBuf::from(other)));
            }
            other => return Err(format!("unexpected argument `{other}`\n{ANALYZE_USAGE}")),
        }
    }
    let project = project.ok_or_else(|| ANALYZE_USAGE.to_string())?;
    // Default cache: `.sga-cache` inside the analyzed directory. Corpus
    // runs are generated on the fly, so they only cache when asked to.
    opts.cache_dir = if no_cache {
        None
    } else {
        cache_dir.or_else(|| match &project {
            Project::Dir(d) => Some(d.join(".sga-cache")),
            Project::Corpus { .. } => None,
        })
    };
    Ok((project, opts, out, no_cache))
}

fn run_analyze(args: impl Iterator<Item = String>) -> ExitCode {
    let (project, opts, out, _) = match parse_analyze_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // SIGINT/SIGTERM drain the batch instead of killing it: in-flight units
    // finish and are journaled, and a partial report is still flushed.
    pipeline::interrupt::install();
    match pipeline::run(&project, &opts) {
        Ok(report) => {
            let total = |field: &str| {
                report
                    .get("totals")
                    .and_then(|t| t.get(field))
                    .and_then(|c| c.as_u64())
                    .unwrap_or(0)
            };
            let (crashed, invalid) = (total("crashed"), total("invalid"));
            let interrupted = report
                .get("interrupted")
                .and_then(|i| i.as_bool())
                .unwrap_or(false);
            let new_definite = report
                .get("baseline")
                .and_then(|b| b.get("new_definite"))
                .and_then(|n| n.as_u64())
                .unwrap_or(0);
            let text = report.to_pretty();
            match out {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, text + "\n") {
                        eprintln!("sga: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                None => println!("{text}"),
            }
            // Most urgent condition wins: an interrupted run is incomplete
            // (rerun with --resume), an invalid run is *wrong*, a crashed
            // run is merely partial.
            if interrupted {
                eprintln!("sga: run interrupted; partial report flushed (rerun with --resume)");
                ExitCode::from(5)
            } else if invalid > 0 {
                eprintln!("sga: {invalid} unit(s) failed validation; see the report");
                ExitCode::from(4)
            } else if crashed > 0 {
                // Partial failure: the batch completed but some units did
                // not; distinct from both success and a usage/IO error.
                eprintln!("sga: {crashed} unit(s) crashed; see the report");
                ExitCode::from(3)
            } else if new_definite > 0 {
                eprintln!(
                    "sga: {new_definite} new definite alarm(s) versus the baseline; see the report"
                );
                ExitCode::from(6)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("sga: {e}");
            ExitCode::from(2)
        }
    }
}

/// Runs all four checkers over an analyzed program and triages the
/// possible interval alarms against the octagon analysis. Shared by
/// `sga check` and single-file `--check`.
#[allow(clippy::too_many_arguments)]
fn diagnose(
    program: &sga::ir::Program,
    result: &interval::IntervalResult,
    engine: Engine,
    widening: WideningConfig,
    dep_backend: DepBackend,
    triage_mode: TriageMode,
    budget: &Budget,
) -> (Vec<Diagnostic>, triage::TriageStats) {
    let pre = preanalysis::run(program);
    let mut diags = checker::check_all(program, result, &pre);
    let stats = triage::discharge(
        program,
        &pre,
        result,
        &mut diags,
        &TriageOptions {
            engine,
            widening,
            dep_backend,
            budget: triage::derived_budget(result.stats.iterations, budget),
            mode: triage_mode,
            ..TriageOptions::default()
        },
    );
    (diags, stats)
}

/// Prints diagnostics plus the summary line; returns whether any open
/// definite alarm remains.
fn print_diagnostics(diags: &[Diagnostic], stats: &triage::TriageStats) -> bool {
    for d in diags {
        println!("{d}");
    }
    let open = diags.iter().filter(|d| d.is_open()).count();
    let definite = diags.iter().filter(|d| d.is_open() && d.definite).count();
    println!(
        "{open} open alarm(s) ({definite} definite), {} discharged by triage \
         ({} octagon, {} path-infeasible)",
        stats.discharged,
        stats.discharged - stats.discharged_path,
        stats.discharged_path,
    );
    definite > 0
}

const CHECK_USAGE: &str = "usage: sga check <file.c> [--sarif FILE] \
                           [--engine vanilla|base|sparse] \
                           [--widening naive|threshold|delayed] \
                           [--dep-backend bdd|csr] [--triage octagon|path|both] \
                           [--max-steps N] [--timeout-ms N] \
                           [--isolation thread|process] [--worker-mem-mb N] \
                           [--worker-timeout-ms N]";

/// `sga check <file.c> --isolation process`: the file is analyzed in one
/// supervised worker process (the sparse batch path), so a file that
/// aborts or exhausts memory yields a diagnosable exit instead of killing
/// the CLI.
#[allow(clippy::too_many_arguments)]
fn run_check_isolated(
    file: &str,
    source: String,
    widening: WideningConfig,
    dep_backend: DepBackend,
    triage_mode: TriageMode,
    budget: Budget,
    limits: sga::analysis::budget::WorkerLimits,
    sarif_out: Option<PathBuf>,
) -> ExitCode {
    let err = |msg: String| {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    let opts = PipelineOptions {
        isolation: IsolationMode::Process,
        worker_limits: limits,
        widening,
        dep_backend,
        triage: triage_mode,
        budget,
        ..PipelineOptions::default()
    };
    let unit = pipeline::UnitInput {
        name: file.to_string(),
        source,
    };
    let mut outcomes = pipeline::analyze_units(&[unit], &opts, None);
    let outcome = outcomes.remove(0);
    if let Some(message) = outcome.failure {
        return err(format!("sga: {file}: {message}"));
    }
    let Some(analysis) = outcome.analysis else {
        return err(format!("sga: {file}: isolated worker returned no result"));
    };
    if analysis.degraded {
        eprintln!("sga: analysis budget exhausted; result degraded soundly");
    }
    let diags = analysis.diags;
    let discharged = diags.iter().filter(|d| !d.is_open()).count();
    let discharged_path = diags
        .iter()
        .filter(|d| {
            matches!(
                &d.status,
                sga::diag::Status::Discharged {
                    method: sga::diag::DischargeMethod::PathInfeasible,
                    ..
                }
            )
        })
        .count();
    let stats = triage::TriageStats {
        candidates: diags.iter().filter(|d| d.is_open() && !d.definite).count() + discharged,
        discharged,
        discharged_path,
        octagon_ran: discharged > discharged_path,
        degraded: analysis.triage_degraded,
    };
    let definite = print_diagnostics(&diags, &stats);
    if let Some(path) = sarif_out {
        if let Some(code) = write_sarif(file, &diags, &path) {
            return code;
        }
    }
    if definite {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates and writes a SARIF log; `Some(code)` on failure.
fn write_sarif(file: &str, diags: &[Diagnostic], path: &PathBuf) -> Option<ExitCode> {
    let log = sga::diag::sarif::to_sarif(file, diags);
    let violations = sga::diag::schema::validate(&log, &sga::diag::schema::vendored_sarif_schema());
    if !violations.is_empty() {
        // Never expected: the emitter and the vendored schema ship
        // together. Refuse to write an invalid log.
        for v in &violations {
            eprintln!("sga: SARIF schema violation: {v}");
        }
        return Some(ExitCode::from(2));
    }
    if let Err(e) = std::fs::write(path, log.to_pretty() + "\n") {
        eprintln!("sga: cannot write {}: {e}", path.display());
        return Some(ExitCode::from(2));
    }
    None
}

/// `sga check <file.c> [--sarif FILE]`: structured diagnostics with octagon
/// triage, optionally exported as a SARIF 2.1.0 log.
fn run_check(args: impl Iterator<Item = String>) -> ExitCode {
    let mut file: Option<String> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut engine = Engine::Sparse;
    let mut engine_set = false;
    let mut widening = WideningConfig::default();
    let mut dep_backend = DepBackend::default();
    let mut triage_mode = TriageMode::default();
    let mut budget = Budget::unbounded();
    let mut isolation = IsolationMode::Thread;
    let mut limits = sga::analysis::budget::WorkerLimits::unbounded();
    let mut args = args.peekable();
    let err = |msg: String| {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sarif" => match args.next() {
                Some(path) => sarif_out = Some(PathBuf::from(path)),
                None => return err("--sarif needs a file".into()),
            },
            "--engine" => {
                engine_set = true;
                engine = match args.next().as_deref() {
                    Some("vanilla") => Engine::Vanilla,
                    Some("base") => Engine::Base,
                    Some("sparse") => Engine::Sparse,
                    other => return err(format!("bad --engine {other:?}")),
                }
            }
            "--widening" => {
                widening = match args.next().as_deref().and_then(WideningStrategy::parse) {
                    Some(s) => WideningConfig::of(s),
                    None => return err("bad --widening (naive|threshold|delayed)".into()),
                }
            }
            "--dep-backend" => {
                dep_backend = match args.next().as_deref().and_then(DepBackend::parse) {
                    Some(b) => b,
                    None => return err("bad --dep-backend (bdd|csr)".into()),
                }
            }
            "--triage" => {
                triage_mode = match args.next().as_deref().and_then(TriageMode::parse) {
                    Some(m) => m,
                    None => return err("bad --triage (octagon|path|both)".into()),
                }
            }
            "--max-steps" => match num_flag("--max-steps", args.next()) {
                Ok(n) => budget.max_steps = Some(n),
                Err(msg) => return err(msg),
            },
            "--timeout-ms" => match num_flag("--timeout-ms", args.next()) {
                Ok(n) => budget.timeout_ms = Some(n),
                Err(msg) => return err(msg),
            },
            "--isolation" => {
                isolation = match args.next().as_deref().and_then(IsolationMode::parse) {
                    Some(m) => m,
                    None => return err("bad --isolation (thread|process)".into()),
                }
            }
            "--worker-mem-mb" => match num_flag("--worker-mem-mb", args.next()) {
                Ok(n) => limits.mem_mb = Some(n),
                Err(msg) => return err(msg),
            },
            "--worker-timeout-ms" => match num_flag("--worker-timeout-ms", args.next()) {
                Ok(n) => limits.timeout_ms = Some(n),
                Err(msg) => return err(msg),
            },
            "--help" | "-h" => return err(CHECK_USAGE.into()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return err(format!("unexpected argument `{other}`\n{CHECK_USAGE}")),
        }
    }
    let Some(file) = file else {
        return err(CHECK_USAGE.into());
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => return err(format!("sga: cannot read {file}: {e}")),
    };
    if isolation == IsolationMode::Process {
        // The isolated worker runs the sparse batch path; an explicit
        // non-sparse engine choice cannot be honored there.
        if engine_set && engine != Engine::Sparse {
            return err("--isolation process runs the sparse engine only".into());
        }
        return run_check_isolated(
            &file,
            src,
            widening,
            dep_backend,
            triage_mode,
            budget,
            limits,
            sarif_out,
        );
    }
    let program = match sga::frontend::parse(&src) {
        Ok(p) => p,
        Err(e) => return err(format!("sga: {file}: {e}")),
    };
    let result = interval::analyze_with(
        &program,
        engine,
        AnalyzeOptions {
            widening,
            dep_backend,
            budget,
            ..AnalyzeOptions::default()
        },
    );
    if result.stats.degraded {
        eprintln!("sga: analysis budget exhausted; result degraded soundly");
    }
    let (diags, stats) = diagnose(
        &program,
        &result,
        engine,
        widening,
        dep_backend,
        triage_mode,
        &budget,
    );
    let definite = print_diagnostics(&diags, &stats);
    if let Some(path) = sarif_out {
        if let Some(code) = write_sarif(&file, &diags, &path) {
            return code;
        }
    }
    if definite {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

const CACHE_USAGE: &str = "usage: sga cache gc <dir> [--keep N] [--max-entries N] \
                           [--serve-journal-max N]";

/// `sga cache gc <dir> [--keep N] [--max-entries N] [--serve-journal-max N]`:
/// offline cache maintenance. The daemon's write-ahead journal under
/// `serve-journal/` is spared by default; `--serve-journal-max` prunes it
/// to the N newest records.
fn run_cache(mut args: impl Iterator<Item = String>) -> ExitCode {
    match args.next().as_deref() {
        Some("gc") => {}
        _ => {
            eprintln!("{CACHE_USAGE}");
            return ExitCode::from(2);
        }
    }
    let mut dir: Option<PathBuf> = None;
    let mut keep = pipeline::cache::DEFAULT_QUARANTINE_KEEP;
    let mut max_entries: Option<usize> = None;
    let mut serve_journal_max: Option<usize> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--keep" => match num_flag("--keep", args.next()) {
                Ok(n) => keep = n as usize,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            },
            "--max-entries" => match num_flag("--max-entries", args.next()) {
                Ok(n) => max_entries = Some(n as usize),
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            },
            "--serve-journal-max" => match num_flag("--serve-journal-max", args.next()) {
                Ok(n) => serve_journal_max = Some(n as usize),
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{CACHE_USAGE}");
                return ExitCode::from(2);
            }
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unexpected argument `{other}`\n{CACHE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{CACHE_USAGE}");
        return ExitCode::from(2);
    };
    match pipeline::cache::gc(&dir, keep, max_entries, serve_journal_max) {
        Ok(stats) => {
            println!(
                "sga: cache gc: removed {} quarantined entr{}, {} temp file(s), \
                 evicted {} over the LRU cap, pruned {} serve-journal record(s)",
                stats.quarantine_removed,
                if stats.quarantine_removed == 1 {
                    "y"
                } else {
                    "ies"
                },
                stats.tmp_removed,
                stats.evicted,
                stats.serve_journal_removed,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sga: cache gc {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

const SERVE_USAGE: &str = "usage: sga serve <dir> [--tcp ADDR] [--unix PATH] \
                           [--port-file FILE] [--poll-ms N] [--jobs N (0=auto)] \
                           [--cache-dir D] [--no-cache] [--cache-max-entries N] \
                           [--no-bypass] [--widening naive|threshold|delayed] \
                           [--dep-backend bdd|csr] [--triage octagon|path|both] \
                           [--max-steps N] [--timeout-ms N] \
                           [--resume] [--journal-dir D] [--queue-cap N] \
                           [--sub-queue-cap N] [--write-deadline-ms N] \
                           [--sub-sndbuf BYTES] [--max-line BYTES] \
                           [--isolation thread|process] [--worker-mem-mb N] \
                           [--worker-timeout-ms N] \
                           [--faults SPEC (panic@ROUND|stall@ROUND=MS)]";

/// `sga serve <dir>`: incremental analysis daemon over a corpus directory.
fn run_serve(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut config = sga::serve::ServerConfig::default();
    let mut opts = PipelineOptions::default();
    let mut no_cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut resume = false;
    let err = |msg: String| {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => match args.next() {
                Some(addr) => config.tcp = Some(addr),
                None => return err("--tcp needs an address".into()),
            },
            "--unix" => match args.next() {
                Some(path) => config.unix = Some(PathBuf::from(path)),
                None => return err("--unix needs a path".into()),
            },
            "--port-file" => match args.next() {
                Some(path) => config.port_file = Some(PathBuf::from(path)),
                None => return err("--port-file needs a file".into()),
            },
            "--poll-ms" => match num_flag("--poll-ms", args.next()) {
                Ok(n) => config.poll_ms = Some(n),
                Err(msg) => return err(msg),
            },
            "--jobs" => match args.next() {
                // 0 = auto-detect, as for `sga analyze`.
                Some(n) => match n.parse::<usize>() {
                    Ok(jobs) => opts.jobs = jobs,
                    Err(_) => return err(format!("bad --jobs {n:?}")),
                },
                None => return err("--jobs needs a value".into()),
            },
            "--cache-dir" => match args.next() {
                Some(d) => cache_dir = Some(PathBuf::from(d)),
                None => return err("--cache-dir needs a value".into()),
            },
            "--no-cache" => no_cache = true,
            "--cache-max-entries" => match num_flag("--cache-max-entries", args.next()) {
                Ok(n) => opts.cache_max_entries = Some(n as usize),
                Err(msg) => return err(msg),
            },
            "--no-bypass" => opts.depgen.bypass = false,
            "--widening" => {
                opts.widening = match args.next().as_deref().and_then(WideningStrategy::parse) {
                    Some(s) => WideningConfig::of(s),
                    None => return err("bad --widening (naive|threshold|delayed)".into()),
                }
            }
            "--dep-backend" => {
                opts.dep_backend = match args.next().as_deref().and_then(DepBackend::parse) {
                    Some(b) => b,
                    None => return err("bad --dep-backend (bdd|csr)".into()),
                }
            }
            "--triage" => {
                opts.triage = match args.next().as_deref().and_then(TriageMode::parse) {
                    Some(m) => m,
                    None => return err("bad --triage (octagon|path|both)".into()),
                }
            }
            "--max-steps" => match num_flag("--max-steps", args.next()) {
                Ok(n) => opts.budget.max_steps = Some(n),
                Err(msg) => return err(msg),
            },
            "--timeout-ms" => match num_flag("--timeout-ms", args.next()) {
                Ok(n) => opts.budget.timeout_ms = Some(n),
                Err(msg) => return err(msg),
            },
            "--resume" => resume = true,
            "--journal-dir" => match args.next() {
                Some(d) => opts.journal_dir = Some(PathBuf::from(d)),
                None => return err("--journal-dir needs a value".into()),
            },
            "--queue-cap" => match num_flag("--queue-cap", args.next()) {
                Ok(n) => config.queue_cap = (n as usize).max(1),
                Err(msg) => return err(msg),
            },
            "--sub-queue-cap" => match num_flag("--sub-queue-cap", args.next()) {
                Ok(n) => config.sub_queue_cap = (n as usize).max(1),
                Err(msg) => return err(msg),
            },
            "--write-deadline-ms" => match num_flag("--write-deadline-ms", args.next()) {
                Ok(n) => config.write_deadline_ms = n.max(1),
                Err(msg) => return err(msg),
            },
            "--sub-sndbuf" => match num_flag("--sub-sndbuf", args.next()) {
                Ok(n) => config.sub_sndbuf = Some(n as usize),
                Err(msg) => return err(msg),
            },
            "--max-line" => match num_flag("--max-line", args.next()) {
                Ok(n) => config.max_request_line = (n as usize).max(1),
                Err(msg) => return err(msg),
            },
            "--isolation" => {
                opts.isolation = match args.next().as_deref().and_then(IsolationMode::parse) {
                    Some(m) => m,
                    None => return err("bad --isolation (thread|process)".into()),
                }
            }
            "--worker-mem-mb" => match num_flag("--worker-mem-mb", args.next()) {
                Ok(n) => opts.worker_limits.mem_mb = Some(n),
                Err(msg) => return err(msg),
            },
            "--worker-timeout-ms" => match num_flag("--worker-timeout-ms", args.next()) {
                Ok(n) => opts.worker_limits.timeout_ms = Some(n),
                Err(msg) => return err(msg),
            },
            "--faults" => match args.next().as_deref().map(FaultPlan::parse) {
                Some(Ok(plan)) => {
                    // The daemon keys fault directives by 1-based round
                    // attempt and only interprets panic@ and stall@; the
                    // fatal batch directives would kill or hang the whole
                    // daemon, so refuse them up front.
                    let unsupported = plan.serve_unsupported();
                    if !unsupported.is_empty() {
                        return err(format!(
                            "--faults: serve cannot interpret {}: only panic@ROUND and \
                             stall@ROUND=MS apply to the daemon",
                            unsupported.join(", ")
                        ));
                    }
                    config.faults = plan;
                }
                Some(Err(e)) => return err(format!("bad --faults: {e}")),
                None => return err("--faults needs a spec".into()),
            },
            "--help" | "-h" => return err(SERVE_USAGE.into()),
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => return err(format!("unexpected argument `{other}`\n{SERVE_USAGE}")),
        }
    }
    let Some(dir) = dir else {
        return err(SERVE_USAGE.into());
    };
    // A daemon without listeners is unreachable; default to an ephemeral
    // TCP port so `sga serve <dir>` alone is useful.
    if config.tcp.is_none() && config.unix.is_none() {
        config.tcp = Some("127.0.0.1:0".to_string());
    }
    opts.cache_dir = if no_cache {
        None
    } else {
        Some(cache_dir.unwrap_or_else(|| dir.join(".sga-cache")))
    };
    let engine = match sga::serve::Engine::open(&dir, &opts, resume) {
        Ok(e) => e,
        Err(e) => return err(format!("sga: serve {}: {e}", dir.display())),
    };
    let (units, alarms) = (engine.unit_names().len(), engine.alarms());
    let resumed = engine.resumed_units();
    let handle = match sga::serve::serve(engine, &config) {
        Ok(h) => h,
        Err(e) => return err(format!("sga: serve: {e}")),
    };
    let mut endpoints = Vec::new();
    if let Some(addr) = handle.tcp_addr {
        endpoints.push(addr.to_string());
    }
    if let Some(path) = &config.unix {
        endpoints.push(path.display().to_string());
    }
    println!(
        "sga: serving {} on {} ({units} unit(s), {alarms} alarm(s){})",
        dir.display(),
        endpoints.join(" and "),
        if resume {
            format!(", {resumed} resumed from journal")
        } else {
            String::new()
        },
    );
    handle.wait();
    println!("sga: serve: stopped");
    ExitCode::SUCCESS
}

const WATCH_USAGE: &str = "usage: sga watch <addr> [--once | --max-events N | \
                           --report | --status | --edit UNIT FILE | --shutdown] \
                           [--timeout-ms N (0=none, default 10000)] [--retries N]";

/// `sga watch <addr>`: client for a running `sga serve` daemon. `addr` is
/// `host:port` or a Unix socket path. By default streams diff events.
/// Every command runs under a connect/read deadline (`--timeout-ms`,
/// default 10s; 0 disables) so a wedged daemon means a nonzero exit, not a
/// hang; `--edit` retries shed replies with backoff (`--retries`, default
/// 5) so a flooded daemon loses no edit.
fn run_watch(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut max_events: Option<usize> = None;
    let mut timeout_ms: u64 = 10_000;
    let mut retries: u32 = 5;
    // One-shot command, if any: (label, closure producing the reply).
    enum Cmd {
        Stream,
        Report,
        Status,
        Shutdown,
        Edit(String, PathBuf),
    }
    let mut cmd = Cmd::Stream;
    let err = |msg: String| {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => max_events = Some(1),
            "--max-events" => match num_flag("--max-events", args.next()) {
                Ok(n) => max_events = Some(n as usize),
                Err(msg) => return err(msg),
            },
            "--report" => cmd = Cmd::Report,
            "--status" => cmd = Cmd::Status,
            "--shutdown" => cmd = Cmd::Shutdown,
            "--edit" => match (args.next(), args.next()) {
                (Some(unit), Some(file)) => cmd = Cmd::Edit(unit, PathBuf::from(file)),
                _ => return err("--edit needs UNIT and FILE".into()),
            },
            "--timeout-ms" => match num_flag("--timeout-ms", args.next()) {
                Ok(n) => timeout_ms = n,
                Err(msg) => return err(msg),
            },
            "--retries" => match num_flag("--retries", args.next()) {
                Ok(n) => retries = n as u32,
                Err(msg) => return err(msg),
            },
            "--help" | "-h" => return err(WATCH_USAGE.into()),
            other if !other.starts_with('-') && addr.is_none() => {
                addr = Some(other.to_string());
            }
            other => return err(format!("unexpected argument `{other}`\n{WATCH_USAGE}")),
        }
    }
    let Some(addr) = addr else {
        return err(WATCH_USAGE.into());
    };
    let timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let reply = match cmd {
        Cmd::Stream => {
            // The ack line is printed (and flushed) before any event, so a
            // script can wait for `"subscribed"` in the output instead of
            // sleeping and hoping the subscriber registered in time. The
            // deadline covers connect + ack only — a quiet event stream is
            // not a wedged daemon.
            return match sga::serve::client::watch_ready_t(
                &addr,
                max_events,
                timeout,
                |ack| {
                    println!("{ack}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                },
                |event| {
                    println!("{event}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                },
            ) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => err(format!("sga: watch {addr}: {e}")),
            };
        }
        Cmd::Report => sga::serve::client::report_t(&addr, timeout),
        Cmd::Status => sga::serve::client::status_t(&addr, timeout),
        Cmd::Shutdown => sga::serve::client::shutdown_t(&addr, timeout),
        Cmd::Edit(unit, file) => match std::fs::read_to_string(&file) {
            Ok(source) => {
                sga::serve::client::edit_with_retry(&addr, &unit, &source, timeout, retries)
                    .map(|(reply, _sheds)| reply)
            }
            Err(e) => return err(format!("sga: cannot read {}: {e}", file.display())),
        },
    };
    match reply {
        Ok(line) => {
            // A final still-shed reply means the daemon's overload outlasted
            // the retry budget — that is a failure, not a success.
            if sga::serve::client::is_shed(&line) {
                eprintln!("sga: watch {addr}: edit shed after {retries} retries: {line}");
                return ExitCode::from(2);
            }
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => err(format!("sga: watch {addr}: {e}")),
    }
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    // The hidden worker dispatch comes before everything else: a re-exec'd
    // `--isolation process` worker must never fall into normal argument
    // parsing, whatever flags the parent was started with.
    if raw.peek().map(String::as_str) == Some(pipeline::worker::WORKER_ARG) {
        return ExitCode::from(pipeline::worker::worker_main() as u8);
    }
    if raw.peek().map(String::as_str) == Some("analyze") {
        raw.next();
        return run_analyze(raw);
    }
    if raw.peek().map(String::as_str) == Some("check") {
        raw.next();
        return run_check(raw);
    }
    if raw.peek().map(String::as_str) == Some("cache") {
        raw.next();
        return run_cache(raw);
    }
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return run_serve(raw);
    }
    if raw.peek().map(String::as_str) == Some("watch") {
        raw.next();
        return run_watch(raw);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sga: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let program = match sga::frontend::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sga: {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    if opts.dump_ir {
        print!("{}", sga::ir::pretty::program(&program));
    }

    let mut definite = false;
    match opts.domain {
        Domain::Interval => {
            let result = interval::analyze_with(
                &program,
                opts.engine,
                AnalyzeOptions {
                    widening: opts.widening,
                    dep_backend: opts.dep_backend,
                    budget: opts.budget,
                    ..AnalyzeOptions::default()
                },
            );
            if result.stats.degraded {
                eprintln!("sga: analysis budget exhausted; result degraded soundly");
            }
            if opts.stats {
                let s = &result.stats;
                eprintln!(
                    "engine {:?}: total {:?} (pre {:?}, dep {:?}, fix {:?}), {} evaluations, {} locations, {} dep edges, widening {}{}",
                    opts.engine, s.total_time, s.pre_time, s.dep_time, s.fix_time,
                    s.iterations, s.num_locs, s.dep_edges, s.widening,
                    if s.degraded { ", degraded" } else { "" }
                );
            }
            if opts.dump_values {
                for cp in program.all_points() {
                    let st = result.state_at(cp);
                    if st.is_empty() {
                        continue;
                    }
                    println!("{cp}: {}", sga::ir::pretty::cmd(&program, program.cmd(cp)));
                    for (l, v) in st.iter() {
                        if !v.is_bottom() {
                            println!("    {l:?} = {v:?}");
                        }
                    }
                }
            }
            if opts.check {
                let (diags, tstats) = diagnose(
                    &program,
                    &result,
                    opts.engine,
                    opts.widening,
                    opts.dep_backend,
                    opts.triage,
                    &opts.budget,
                );
                definite = print_diagnostics(&diags, &tstats);
            }
        }
        Domain::Octagon => {
            let result = octagon::analyze_with(
                &program,
                opts.engine,
                AnalyzeOptions {
                    widening: opts.widening,
                    dep_backend: opts.dep_backend,
                    budget: opts.budget,
                    ..AnalyzeOptions::default()
                },
            );
            if result.stats.degraded {
                eprintln!("sga: analysis budget exhausted; result degraded soundly");
            }
            if opts.stats {
                let s = &result.stats;
                eprintln!(
                    "engine {:?} (octagon): total {:?} (fix {:?}), {} evaluations, {} packs (avg size {:.1}), widening {}{}",
                    opts.engine, s.total_time, s.fix_time, s.iterations,
                    result.packs.len(), result.packs.average_size(), s.widening,
                    if s.degraded { ", degraded" } else { "" }
                );
            }
            if opts.dump_values {
                for (v, info) in program.vars.iter_enumerated() {
                    if info.kind != sga::ir::VarKind::Global {
                        continue;
                    }
                    // Show each global's projection at program exit.
                    let main_exit =
                        sga::ir::Cp::new(program.main, program.procs[program.main].exit);
                    println!("{} ∈ {}", info.name, result.itv_of(main_exit, v));
                }
            }
            if opts.check {
                eprintln!("sga: --check is interval-domain only (octagon is for relations)");
            }
        }
    }
    if definite {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
