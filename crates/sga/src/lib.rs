//! **SGA** — sparse global analyses for C-like languages.
//!
//! A from-scratch Rust implementation of the framework of Oh, Heo, Lee,
//! Lee & Yi, *Design and Implementation of Sparse Global Analyses for
//! C-like Languages* (PLDI 2012): precision-preserving sparse abstract
//! interpretation, with interval and packed-octagon instances, a C-subset
//! frontend, and the supporting substrates (persistent maps, BDDs, a
//! synthetic benchmark generator).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`frontend`] (`sga-cfront`) — parse C source to the IR;
//! * [`ir`] (`sga-ir`) — the control-flow-graph program representation;
//! * [`domains`] (`sga-domains`) — intervals, points-to sets, octagons;
//! * [`analysis`] (`sga-core`) — the three interval analyzers
//!   (`vanilla`/`base`/`sparse`), the octagon analyzers, and the
//!   buffer-overrun checker;
//! * [`diag`] (`sga-diag`) — structured diagnostics, SARIF 2.1.0 emission,
//!   and run-over-run baseline diffing;
//! * [`bdd`] (`sga-bdd`) — the BDD package and dependency-relation stores;
//! * [`cgen`] (`sga-cgen`) — the deterministic benchmark-program generator;
//! * [`pipeline`] (`sga-pipeline`) — the parallel, cache-aware batch
//!   analysis driver behind `sga analyze`;
//! * [`serve`] (`sga-serve`) — the incremental analysis daemon behind
//!   `sga serve` / `sga watch`;
//! * [`utils`] (`sga-utils`) — support data structures.
//!
//! # Quickstart
//!
//! ```
//! use sga::analysis::interval::{analyze, Engine};
//!
//! let program = sga::frontend::parse(
//!     "int main() { int x = 0; while (x < 10) x = x + 1; return x; }",
//! )?;
//! let result = analyze(&program, Engine::Sparse);
//! let alarms = sga::analysis::checker::check_overruns(&program, &result);
//! assert!(alarms.is_empty());
//! # Ok::<(), sga::frontend::FrontError>(())
//! ```

pub use sga_bdd as bdd;
pub use sga_cfront as frontend;
pub use sga_cgen as cgen;
pub use sga_core as analysis;
pub use sga_diag as diag;
pub use sga_domains as domains;
pub use sga_ir as ir;
pub use sga_pipeline as pipeline;
pub use sga_serve as serve;
pub use sga_utils as utils;
