//! The wire protocol, in process: a daemon on an ephemeral loopback port
//! (and a Unix socket), scripted clients, and subscribers asserting on the
//! streamed diff events.

use sga_pipeline::PipelineOptions;
use sga_serve::{client, cold_report, serve, Engine, ServerConfig};
use sga_utils::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// Raises one definite overrun (`buf[9]` into a 4-byte block).
const LIB_ALARMED: &str = "int main() { int *buf = malloc(4); buf[9] = 1; return 0; }\n";
/// The overrun is fixed, but a fresh one appears in a second function —
/// so one edit produces both `fixed` and `new` fingerprints.
const LIB_SWAPPED: &str = "int main() { int *buf = malloc(4); buf[0] = 1; return 0; }\n\
                           int other() { int *b = malloc(4); b[6] = 1; return 0; }\n";
const APP_CLEAN: &str = "int main() { return 3; }\n";

fn corpus(tag: &str, units: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, source) in units {
        std::fs::write(dir.join(name), source).expect("write unit");
    }
    dir
}

/// A raw subscriber: connects, subscribes, reads the ack, and hands back a
/// buffered reader positioned at the event stream.
fn subscribe_raw(addr: &str) -> BufReader<TcpStream> {
    let mut stream = TcpStream::connect(addr).expect("connect subscriber");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    stream
        .write_all(b"{\"cmd\":\"subscribe\"}\n")
        .expect("send subscribe");
    let mut reader = BufReader::new(stream);
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read ack");
    let ack = Json::parse(&ack).expect("ack is JSON");
    assert_eq!(ack.get("subscribed").and_then(Json::as_bool), Some(true));
    reader
}

fn next_event(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read event");
    Json::parse(&line).expect("event is JSON")
}

fn strings(j: Option<&Json>) -> Vec<String> {
    j.and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|s| s.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn tcp_protocol_end_to_end() {
    let dir = corpus("proto", &[("app.c", APP_CLEAN), ("lib.c", LIB_ALARMED)]);
    let opts = PipelineOptions::default();
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();

    // Status before any round.
    let status = Json::parse(&client::status(&addr).expect("status")).expect("status JSON");
    assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(status.get("units").and_then(Json::as_u64), Some(2));
    assert_eq!(status.get("rounds").and_then(Json::as_u64), Some(0));

    // Malformed input gets an error reply, not a dropped connection.
    let bad = Json::parse(&client::request(&addr, "not json").expect("reply")).expect("JSON");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    let unknown =
        Json::parse(&client::request(&addr, "{\"cmd\":\"nope\"}").expect("reply")).expect("JSON");
    assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));

    // Two independent subscribers; both must see every event.
    let mut sub_a = subscribe_raw(&addr);
    let mut sub_b = subscribe_raw(&addr);

    // One edit that both fixes the old alarm and introduces a new one.
    let ack = Json::parse(&client::edit(&addr, "lib.c", LIB_SWAPPED).expect("edit")).expect("JSON");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("queued").and_then(Json::as_str), Some("lib.c"));

    for sub in [&mut sub_a, &mut sub_b] {
        let event = next_event(sub);
        assert_eq!(event.get("event").and_then(Json::as_str), Some("diff"));
        assert_eq!(event.get("round").and_then(Json::as_u64), Some(1));
        assert_eq!(strings(event.get("edited")), ["lib.c"]);
        assert!(strings(event.get("invalidated")).contains(&"lib.c".to_string()));
        let diff = event.get("diff").expect("diff block");
        assert_eq!(
            strings(diff.get("new")).len(),
            1,
            "the swapped overrun must stream as one new fingerprint"
        );
        assert_eq!(
            strings(diff.get("fixed")).len(),
            1,
            "the fixed overrun must stream as one fixed fingerprint"
        );
    }

    // The streamed report equals a cold batch run of the current state.
    let report = client::report(&addr).expect("report");
    assert_eq!(
        report,
        cold_report(&dir, &opts).expect("cold run").to_compact(),
        "daemon report must match the cold batch run byte for byte"
    );

    // `client::watch_ready` — the `sga watch` code path — sees later
    // rounds. The ack is sent before the subscriber is registered, so once
    // it arrives a single edit is guaranteed to stream back: no probing,
    // no sleeps.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<String>();
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let watch_addr = addr.clone();
    let watcher = std::thread::spawn(move || {
        client::watch_ready(
            &watch_addr,
            Some(1),
            |ack| {
                let _ = ready_tx.send(ack.to_string());
            },
            |event| {
                let _ = tx.send(event.to_string());
            },
        )
    });
    let ack = ready_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("subscribe ack");
    assert_eq!(
        Json::parse(&ack)
            .expect("ack is JSON")
            .get("subscribed")
            .and_then(Json::as_bool),
        Some(true),
        "watch_ready must surface the subscription ack"
    );
    let source = format!("{APP_CLEAN}int probe() {{ return 7; }}\n");
    client::edit(&addr, "app.c", &source).expect("watched edit");
    let watched = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("client::watch never received an event");
    let event = Json::parse(&watched).expect("watched event is JSON");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("diff"));
    assert_eq!(strings(event.get("edited")), ["app.c"]);
    watcher
        .join()
        .expect("watch thread")
        .expect("watch stream ended cleanly");

    // Shutdown: acked, then the event streams close.
    let bye = Json::parse(&client::shutdown(&addr).expect("shutdown")).expect("JSON");
    assert_eq!(bye.get("stopping").and_then(Json::as_bool), Some(true));
    handle.wait();
    let mut tail = String::new();
    for sub in [&mut sub_a, &mut sub_b] {
        // Drain the probe-round events; the stream must then hit EOF.
        loop {
            tail.clear();
            if sub.read_line(&mut tail).expect("read after shutdown") == 0 {
                break;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unix_socket_roundtrip() {
    let dir = corpus("proto-unix", &[("one.c", APP_CLEAN)]);
    let sock = std::env::temp_dir().join(format!("sga-serve-{}.sock", std::process::id()));
    let opts = PipelineOptions::default();
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            unix: Some(sock.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    assert!(handle.tcp_addr.is_none());

    let addr = sock.display().to_string();
    let status = Json::parse(&client::status(&addr).expect("status")).expect("JSON");
    assert_eq!(status.get("units").and_then(Json::as_u64), Some(1));
    let report = client::report(&addr).expect("report");
    assert_eq!(report, cold_report(&dir, &opts).expect("cold").to_compact());

    client::shutdown(&addr).expect("shutdown");
    handle.wait();
    assert!(!sock.exists(), "wait() must remove the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fs_poller_picks_up_out_of_band_edits() {
    let dir = corpus("proto-poll", &[("one.c", LIB_ALARMED)]);
    let opts = PipelineOptions::default();
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            poll_ms: Some(20),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();
    let mut sub = subscribe_raw(&addr);

    // Out-of-band write, no socket edit: only the poller can see it.
    std::fs::write(dir.join("one.c"), LIB_SWAPPED).expect("out-of-band write");
    let event = next_event(&mut sub);
    assert_eq!(event.get("event").and_then(Json::as_str), Some("diff"));
    assert_eq!(strings(event.get("edited")), ["one.c"]);

    client::shutdown(&addr).expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
