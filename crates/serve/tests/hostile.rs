//! The daemon under hostile conditions: malformed protocol traffic,
//! overload floods, stalled subscribers, panicking rounds, and warm
//! restart — every scenario ends by re-asserting the convergence
//! invariant (daemon report == cold batch run of the corpus directory).

use sga_pipeline::{FaultPlan, PipelineOptions};
use sga_serve::{client, cold_report, serve, Engine, ServerConfig};
use sga_utils::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

const LIB: &str = "int main() { int *buf = malloc(4); buf[9] = 1; return 0; }\n";
const APP: &str = "int main() { return 3; }\n";
const APP2: &str = "int main() { return 4; }\n";

const T: Option<Duration> = Some(Duration::from_secs(60));

fn corpus(tag: &str, units: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-hostile-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, source) in units {
        std::fs::write(dir.join(name), source).expect("write unit");
    }
    dir
}

/// Sends raw bytes on an open connection and reads one reply line.
fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, bytes: &[u8]) -> Json {
    stream.write_all(bytes).expect("send raw");
    stream.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    Json::parse(&reply).expect("reply is JSON")
}

/// A daemon fed every kind of protocol garbage answers each line with a
/// structured error, keeps the connection alive, keeps serving, and the
/// next edit round still converges.
#[test]
fn malformed_protocol_corpus_cannot_kill_the_daemon() {
    let dir = corpus("garbage", &[("lib.c", LIB), ("app.c", APP)]);
    let opts = PipelineOptions::default();
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            max_request_line: 1024, // small bound so the huge-line case is cheap
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Garbage text, truncated JSON, binary blob with NULs (valid UTF-8,
    // invalid JSON), invalid UTF-8, and an unknown command — one reply
    // each, all structured errors, same connection throughout.
    for bad in [
        b"complete garbage\n".as_slice(),
        b"{\"cmd\":\"edit\",\"unit\":\"lib.c\"\n",
        b"\x00\x01\x02\x03\n",
        b"\xff\xfe{\"cmd\":\"status\"}\n",
        b"{\"cmd\":\"explode\"}\n",
    ] {
        let reply = send_raw(&mut stream, &mut reader, bad);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "garbage must get a structured error: {}",
            reply.to_compact()
        );
    }

    // A line over the bound is drained, not buffered; the error says so
    // and the connection still works.
    let mut huge = vec![b'x'; 8 * 1024];
    huge.push(b'\n');
    let reply = send_raw(&mut stream, &mut reader, &huge);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        reply
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("exceeds")),
        "oversized line must name the bound: {}",
        reply.to_compact()
    );

    // The same connection still speaks the real protocol.
    let reply = send_raw(&mut stream, &mut reader, b"{\"cmd\":\"status\"}\n");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("units").and_then(Json::as_u64), Some(2));

    // A client that disconnects mid-line leaves no mark.
    {
        let mut rude = TcpStream::connect(&addr).expect("connect rude");
        rude.write_all(b"{\"cmd\":\"rep").expect("partial write");
        // dropped here, mid-line
    }

    // The daemon still processes a real round and still converges.
    let ack = client::edit_t(&addr, "app.c", APP2, T).expect("edit");
    assert!(ack.contains("\"ok\":true"), "edit after garbage: {ack}");
    let report = client::report_t(&addr, T).expect("report");
    let cold = cold_report(&dir, &opts).expect("cold run");
    assert_eq!(report, cold.to_compact(), "convergence after garbage");

    client::shutdown_t(&addr, T).expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tiny request queue plus a stalled round forces shedding; the
/// retrying client gets every edit through anyway, the shed count is
/// visible in `status`, and the final state converges.
#[test]
fn overload_sheds_and_retry_recovers_every_edit() {
    let dir = corpus("shed", &[("lib.c", LIB), ("app.c", APP)]);
    let opts = PipelineOptions::default();
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            queue_cap: 1,
            faults: FaultPlan::parse("stall@1=400").expect("spec"),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();
    let stats = handle.stats();

    // Concurrent writers into a 1-slot queue while round 1 stalls 400ms:
    // someone must be refused, nobody may be lost.
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let unit = format!("burst{t}.c");
                let source = format!("int main() {{ return {t}; }}\n");
                let (reply, sheds) =
                    client::edit_with_retry(&addr, &unit, &source, T, 20).expect("edit");
                assert!(!client::is_shed(&reply), "edit lost to shedding: {reply}");
                sheds
            })
        })
        .collect();
    let client_sheds: u32 = threads.into_iter().map(|t| t.join().expect("thread")).sum();

    let status = client::status_t(&addr, T).expect("status");
    let status = Json::parse(&status).expect("status json");
    let shed_stat = status
        .get("shed")
        .and_then(Json::as_u64)
        .expect("shed stat");
    assert!(
        shed_stat >= 1 && client_sheds >= 1,
        "queue_cap=1 under a stalled round must shed (daemon saw {shed_stat}, clients saw {client_sheds})"
    );
    assert_eq!(shed_stat, stats.shed() as u64);

    let report = client::report_t(&addr, T).expect("report");
    let cold = cold_report(&dir, &opts).expect("cold run");
    assert_eq!(report, cold.to_compact(), "convergence after shedding");

    client::shutdown_t(&addr, T).expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A subscriber that never reads past its ack is evicted (queue + shrunken
/// send buffer + write deadline) while a healthy subscriber keeps
/// receiving every event and rounds keep completing.
#[test]
fn stalled_subscriber_is_evicted_not_obeyed() {
    let dir = corpus("evict", &[("lib.c", LIB), ("app.c", APP)]);
    let sock = std::env::temp_dir().join(format!("sga-hostile-evict-{}.sock", std::process::id()));
    let opts = PipelineOptions::default();
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            unix: Some(sock.clone()),
            sub_queue_cap: 4,
            write_deadline_ms: 200,
            sub_sndbuf: Some(2048),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();
    let stats = handle.stats();

    // The stalled subscriber: Unix socket, so in-flight bytes are charged
    // to the daemon's shrunken send buffer (TCP would hide them in the
    // peer's receive buffer).
    let stalled = UnixStream::connect(&sock).expect("stalled connect");
    {
        let mut w = stalled.try_clone().expect("clone");
        w.write_all(b"{\"cmd\":\"subscribe\"}\n")
            .expect("subscribe");
        let mut ack = String::new();
        BufReader::new(stalled.try_clone().expect("clone"))
            .read_line(&mut ack)
            .expect("ack");
        assert!(ack.contains("subscribed"));
    }

    // A healthy subscriber on TCP, read in a thread; the ready channel
    // guarantees it is in the broadcast set before the first edit (the
    // daemon acks under the broadcast lock), so it must see every round.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let healthy = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut events = 0usize;
            let _ = client::watch_ready(
                &addr,
                None,
                |_| ready_tx.send(()).expect("signal ready"),
                |_| events += 1,
            );
            events
        }
    });
    ready_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("healthy subscriber never acked");

    // Sequential acked edits may still coalesce into fewer rounds (an ack
    // means queued, not processed), so count edits and read the daemon's
    // own round counter afterwards.
    let mut source = String::from("int main() { return 9; }\n");
    let mut edits = 0usize;
    while stats.evicted_slow() == 0 && edits < 300 {
        edits += 1;
        source.push_str(&format!("int f{edits}(int a) {{ return a + {edits}; }}\n"));
        let (reply, _) = client::edit_with_retry(&addr, "hot.c", &source, T, 10).expect("edit");
        assert!(!client::is_shed(&reply));
    }
    assert!(
        stats.evicted_slow() >= 1,
        "stalled subscriber never evicted after {edits} edits"
    );

    // Rounds kept completing and the engine still answers.
    let status = client::status_t(&addr, T).expect("status");
    let status = Json::parse(&status).expect("status json");
    let status_rounds = status.get("rounds").and_then(Json::as_u64).expect("rounds");
    assert!(status_rounds >= 1, "no round completed");
    assert_eq!(
        status.get("evicted_slow").and_then(Json::as_u64),
        Some(stats.evicted_slow() as u64)
    );

    let report = client::report_t(&addr, T).expect("report");
    let cold = cold_report(&dir, &opts).expect("cold run");
    assert_eq!(report, cold.to_compact(), "convergence after eviction");

    client::shutdown_t(&addr, T).expect("shutdown");
    handle.wait();
    // Shutdown drops the broadcast senders; each writer drains its queue
    // before closing, so the healthy watcher saw one event per round.
    let healthy_events = healthy.join().expect("healthy watcher");
    assert!(
        healthy_events as u64 >= status_rounds,
        "healthy subscriber missed events: saw {healthy_events}, rounds {status_rounds}"
    );
    drop(stalled);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A round that panics is supervised: subscribers see `round_degraded`
/// then `engine_restarted`, the acked edit survives (sources persist
/// before the fault window), later rounds work, and the report converges.
#[test]
fn panicking_round_is_supervised_and_recovered() {
    let dir = corpus("panic", &[("lib.c", LIB), ("app.c", APP)]);
    let cache =
        std::env::temp_dir().join(format!("sga-hostile-panic-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let opts = PipelineOptions {
        cache_dir: Some(cache.clone()),
        ..PipelineOptions::default()
    };
    let engine = Engine::new(&dir, &opts).expect("engine");
    let handle = serve(
        engine,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            faults: FaultPlan::parse("panic@2").expect("spec"),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();
    let stats = handle.stats();

    // Subscribe first so every event is observed.
    let mut sub = TcpStream::connect(&addr).expect("subscriber");
    sub.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    sub.write_all(b"{\"cmd\":\"subscribe\"}\n")
        .expect("subscribe");
    let mut sub = BufReader::new(sub);
    let mut line = String::new();
    sub.read_line(&mut line).expect("ack");
    assert!(line.contains("subscribed"));

    let next = |sub: &mut BufReader<TcpStream>| -> Json {
        let mut line = String::new();
        sub.read_line(&mut line).expect("event");
        Json::parse(&line).expect("event json")
    };

    // Round 1: normal.
    client::edit_t(&addr, "app.c", APP2, T).expect("edit 1");
    let e1 = next(&mut sub);
    assert_eq!(e1.get("event").and_then(Json::as_str), Some("diff"));

    // Round attempt 2: the injected panic. The edit is acked, its source
    // is persisted before the fault fires, and recovery re-reads the dir
    // — so this edit must NOT be lost.
    let survived = "int main() { return 77; }\n";
    client::edit_t(&addr, "app.c", survived, T).expect("edit 2");
    let e2 = next(&mut sub);
    assert_eq!(
        e2.get("event").and_then(Json::as_str),
        Some("round_degraded"),
        "expected degraded round, got {}",
        e2.to_compact()
    );
    assert!(e2
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|m| m.contains("injected fault")));
    let e3 = next(&mut sub);
    assert_eq!(
        e3.get("event").and_then(Json::as_str),
        Some("engine_restarted"),
        "expected restart after degraded round, got {}",
        e3.to_compact()
    );
    // Recovery replayed the journal: only the mid-round unit recomputes.
    assert!(
        e3.get("resumed_units").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "restart should warm-resume from the round journal: {}",
        e3.to_compact()
    );

    // Round 3: back to normal service.
    client::edit_t(&addr, "lib.c", APP, T).expect("edit 3");
    let e4 = next(&mut sub);
    assert_eq!(e4.get("event").and_then(Json::as_str), Some("diff"));

    assert_eq!(stats.degraded_rounds(), 1);
    assert_eq!(stats.engine_restarts(), 1);

    // The panicked round's edit survived into the corpus and the report.
    assert_eq!(
        std::fs::read_to_string(dir.join("app.c")).expect("read app.c"),
        survived
    );
    let report = client::report_t(&addr, T).expect("report");
    let cold = cold_report(&dir, &opts).expect("cold run");
    assert_eq!(report, cold.to_compact(), "convergence across a panic");

    let status = client::status_t(&addr, T).expect("status");
    let status = Json::parse(&status).expect("status json");
    assert_eq!(
        status.get("degraded_rounds").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        status.get("engine_restarts").and_then(Json::as_u64),
        Some(1)
    );

    client::shutdown_t(&addr, T).expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
}

/// In-process warm restart: an engine's journal survives drop; reopening
/// with `resume` restores every unit without analysis and reproduces the
/// report byte for byte — including after a simulated mid-round kill
/// (source persisted, journal record stale).
#[test]
fn warm_restart_replays_the_round_journal() {
    let dir = corpus("resume", &[("lib.c", LIB), ("app.c", APP)]);
    let cache =
        std::env::temp_dir().join(format!("sga-hostile-resume-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let opts = PipelineOptions {
        cache_dir: Some(cache.clone()),
        ..PipelineOptions::default()
    };

    let mut engine = Engine::new(&dir, &opts).expect("engine");
    engine
        .apply_edits(vec![("app.c".into(), APP2.into())])
        .expect("edit round");
    let before = engine.report().expect("report").to_pretty();
    drop(engine);

    // Clean warm restart: everything resumes, reports match bytewise.
    let resumed = Engine::open(&dir, &opts, true).expect("resume");
    assert_eq!(resumed.resumed_units(), 2, "both units should warm-resume");
    assert_eq!(resumed.report().expect("report").to_pretty(), before);
    drop(resumed);

    // Simulated mid-round kill: a round persisted `lib.c`'s new source to
    // the corpus dir but died before journaling. Resume must recompute
    // exactly that unit and still match a cold run of the dir.
    std::fs::write(dir.join("lib.c"), APP).expect("tamper source");
    let resumed = Engine::open(&dir, &opts, true).expect("resume after kill");
    assert_eq!(
        resumed.resumed_units(),
        1,
        "only the untouched unit should resume"
    );
    let report = resumed.report().expect("report").to_pretty();
    let cold = cold_report(&dir, &opts).expect("cold run").to_pretty();
    assert_eq!(report, cold, "post-kill resume must converge");

    // Without `resume`, a fresh start clears the journal (nothing stale
    // survives) and still converges.
    let fresh = Engine::open(&dir, &opts, false).expect("fresh open");
    assert_eq!(fresh.resumed_units(), 0);
    assert_eq!(fresh.report().expect("report").to_pretty(), cold);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
}

/// Switching `--triage` between daemon restarts must not replay the other
/// mode's journal: a record written under `octagon` carries that mode in
/// its unit cache key, so a `both` resume recomputes every unit (and vice
/// versa), while a same-mode resume still warm-restores everything. A
/// stale replay here would resurrect diagnostics the new mode would have
/// discharged (or vice versa) — the report must instead match a cold run
/// under the *new* mode.
#[test]
fn triage_mode_switch_invalidates_the_round_journal() {
    use sga_core::triage::TriageMode;
    let dir = corpus("triage-switch", &[("lib.c", LIB), ("app.c", APP)]);
    let cache =
        std::env::temp_dir().join(format!("sga-hostile-triage-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let with_mode = |mode| PipelineOptions {
        cache_dir: Some(cache.clone()),
        triage: mode,
        ..PipelineOptions::default()
    };

    let engine = Engine::new(&dir, &with_mode(TriageMode::Octagon)).expect("engine");
    drop(engine);

    // Same mode: both units warm-resume from the journal.
    let same = Engine::open(&dir, &with_mode(TriageMode::Octagon), true).expect("same-mode resume");
    assert_eq!(same.resumed_units(), 2, "same mode should warm-resume");
    drop(same);

    // Mode switch: every journal record's key misses, so nothing resumes,
    // and the rebuilt report matches a cold run under the new mode.
    let switched = Engine::open(&dir, &with_mode(TriageMode::Both), true).expect("switched resume");
    assert_eq!(
        switched.resumed_units(),
        0,
        "journal records from --triage octagon must not replay under both"
    );
    let report = switched.report().expect("report").to_pretty();
    let cold = cold_report(&dir, &with_mode(TriageMode::Both))
        .expect("cold run")
        .to_pretty();
    assert_eq!(
        report, cold,
        "post-switch resume must converge on the new mode"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
}

/// Client deadlines: a `status` against a listener that accepts and then
/// never replies errors out within the timeout instead of hanging.
#[test]
fn client_timeout_turns_a_wedged_daemon_into_an_error() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // Accept and hold connections open without ever replying.
    let wedge = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
            if held.len() >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_secs(5));
    });

    let start = std::time::Instant::now();
    let err = client::status_t(&addr, Some(Duration::from_millis(300)))
        .expect_err("wedged daemon must time out");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "unexpected error kind: {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "timeout took too long: {:?}",
        start.elapsed()
    );

    // The watch path bounds its ack read the same way.
    let err = client::watch_ready_t(
        &addr,
        Some(1),
        Some(Duration::from_millis(300)),
        |_| {},
        |_| {},
    )
    .expect_err("wedged subscribe must time out");
    assert!(matches!(
        err.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ));
    drop(wedge);
}
