//! Randomized edit-sequence convergence: after any batch-edit sequence,
//! the daemon's accumulated report is byte-identical to a fresh cold batch
//! run of the corpus' final state — at `jobs = 1` and `jobs = 4`, which
//! must also agree with each other.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sga_pipeline::PipelineOptions;
use sga_serve::{cold_report, Engine};
use std::path::PathBuf;

const UNITS: usize = 5;
const ROUNDS: usize = 6;

/// One randomized translation unit. The shape varies along every axis the
/// invalidation machinery cares about: `f{idx}`'s arity and access summary
/// (interface-changing), its constants (interface-preserving), which
/// sibling unit it imports, and whether it raises an overrun alarm.
fn gen_unit(rng: &mut StdRng, idx: usize) -> String {
    let c = rng.gen_range(0..50i64);
    let mut src = format!("int g{idx};\nint h{idx};\n");
    let effect = if rng.gen_bool(0.5) {
        format!("h{idx} = x; ")
    } else {
        String::new()
    };
    let two_params = rng.gen_bool(0.5);
    if two_params {
        src.push_str(&format!(
            "int f{idx}(int x, int y) {{ g{idx} = x + {c}; {effect}return x + y; }}\n"
        ));
    } else {
        src.push_str(&format!(
            "int f{idx}(int x) {{ g{idx} = x + {c}; {effect}return x + {c}; }}\n"
        ));
    }
    let callee = rng.gen_range(0..UNITS as i64) as usize;
    if callee != idx {
        src.push_str(&format!(
            "int call{idx}(int x) {{ return f{callee}(x + {c}); }}\n"
        ));
    }
    if rng.gen_bool(0.4) {
        let at = rng.gen_range(0..4i64) * 3; // 0 in bounds; 3, 6, 9 overrun
        src.push_str(&format!(
            "int m{idx}() {{ int *b = malloc(4); b[{at}] = 1; return 0; }}\n"
        ));
    }
    // The frontend requires a `main` per unit; route it through `f{idx}`
    // so every interface change is locally observable.
    let args = if two_params { "x, 1" } else { "x" };
    src.push_str(&format!("int main(int x) {{ return f{idx}({args}); }}\n"));
    src
}

fn unit_name(idx: usize) -> String {
    format!("u{idx}.c")
}

type Edits = Vec<(String, String)>;

/// The full scripted session: initial sources plus per-round edit batches,
/// all drawn from one seeded stream so every engine replays the same tape.
fn script(seed: u64) -> (Edits, Vec<Edits>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = (0..UNITS)
        .map(|i| (unit_name(i), gen_unit(&mut rng, i)))
        .collect();
    let rounds = (0..ROUNDS)
        .map(|_| {
            let k = rng.gen_range(1..4i64);
            (0..k)
                .map(|_| {
                    let idx = rng.gen_range(0..UNITS as i64) as usize;
                    (unit_name(idx), gen_unit(&mut rng, idx))
                })
                .collect()
        })
        .collect();
    (initial, rounds)
}

/// Replays the scripted session at the given job count; returns the final
/// report, checking convergence mid-sequence and at the end.
fn replay(seed: u64, jobs: usize) -> String {
    let (initial, rounds) = script(seed);
    let dir = std::env::temp_dir().join(format!(
        "sga-serve-conv-{seed}-j{jobs}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, source) in &initial {
        std::fs::write(dir.join(name), source).expect("write unit");
    }
    let opts = PipelineOptions {
        jobs,
        ..PipelineOptions::default()
    };
    let mut engine = Engine::new(&dir, &opts).expect("engine");
    for (i, batch) in rounds.into_iter().enumerate() {
        engine.apply_edits(batch).expect("edit round");
        // One mid-sequence probe: divergence should be caught where it
        // arises, not only after the final round.
        if i == ROUNDS / 2 {
            assert_eq!(
                engine.report().expect("report").to_pretty(),
                cold_report(&dir, &opts).expect("cold run").to_pretty(),
                "diverged mid-sequence (seed {seed}, jobs {jobs}, round {i})"
            );
        }
    }
    let live = engine.report().expect("report").to_pretty();
    let cold = cold_report(&dir, &opts).expect("cold run").to_pretty();
    assert_eq!(live, cold, "diverged (seed {seed}, jobs {jobs})");
    let _ = std::fs::remove_dir_all(&dir);
    live
}

#[test]
fn randomized_edit_sequences_converge_at_any_job_count() {
    for seed in [11u64, 3257] {
        let sequential = replay(seed, 1);
        let parallel = replay(seed, 4);
        assert_eq!(
            sequential, parallel,
            "jobs=1 and jobs=4 reports differ (seed {seed})"
        );
    }
}

/// Editing the same unit repeatedly within one batch is last-write-wins.
#[test]
fn batched_edits_are_last_write_wins() {
    let dir: PathBuf = std::env::temp_dir().join(format!("sga-serve-lww-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    std::fs::write(dir.join("u.c"), "int main() { return 1; }\n").expect("write unit");
    let opts = PipelineOptions::default();
    let mut engine = Engine::new(&dir, &opts).expect("engine");
    let outcome = engine
        .apply_edits(vec![
            ("u.c".into(), "int main() { return 2; }\n".into()),
            ("u.c".into(), "int main(int x) { return x; }\n".into()),
        ])
        .expect("batch");
    assert_eq!(outcome.edited, ["u.c"]);
    assert_eq!(
        engine.source_of("u.c"),
        Some("int main(int x) { return x; }\n")
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("u.c")).expect("read back"),
        "int main(int x) { return x; }\n",
        "the corpus directory must mirror the applied edit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
