//! Dependency-cone invalidation: a body edit re-analyzes exactly the
//! edited unit, an interface edit (summary or signature) additionally
//! re-analyzes its importers — and never an unrelated unit.

use sga_pipeline::PipelineOptions;
use sga_serve::{cold_report, Engine};
use std::path::PathBuf;

/// `lib.c` exports `helper`; `app.c` imports it; `standalone.c` touches
/// neither. (The frontend requires every unit to define `main`.)
const LIB: &str = "int g;\n\
                   int helper(int x) { g = x; return x + 1; }\n\
                   int main() { return helper(1); }\n";
const APP: &str = "int main() { return helper(7); }\n";
const STANDALONE: &str = "int alone(int x) { return x * 2; }\n\
                          int main() { return alone(3); }\n";

/// Same defs/uses, same arity — `helper`'s interface hash survives.
const LIB_BODY_EDIT: &str = "int g;\n\
                             int helper(int x) { g = x; return x + 2; }\n\
                             int main() { return helper(1); }\n";

/// `helper` now defines a second global: its access summary — hence its
/// interface hash — changes.
const LIB_SUMMARY_EDIT: &str = "int g;\nint h2;\n\
                                int helper(int x) { g = x; h2 = x; return x + 2; }\n\
                                int main() { return helper(1); }\n";

/// `helper` gains a parameter: a signature change flips the hash even
/// where the summary survives.
const LIB_ARITY_EDIT: &str = "int g;\nint h2;\n\
                              int helper(int x, int y) { g = x; h2 = x; return x + y; }\n\
                              int main() { return helper(1, 2); }\n";

fn corpus(tag: &str, units: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sga-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, source) in units {
        std::fs::write(dir.join(name), source).expect("write unit");
    }
    dir
}

fn three_unit_corpus(tag: &str) -> PathBuf {
    corpus(
        tag,
        &[("lib.c", LIB), ("app.c", APP), ("standalone.c", STANDALONE)],
    )
}

#[test]
fn body_edit_reanalyzes_exactly_the_edited_unit() {
    let dir = three_unit_corpus("cone-body");
    let opts = PipelineOptions::default();
    let mut engine = Engine::new(&dir, &opts).expect("engine");

    let outcome = engine
        .apply_edits(vec![("lib.c".into(), LIB_BODY_EDIT.into())])
        .expect("round");
    assert_eq!(outcome.edited, ["lib.c"]);
    assert_eq!(
        outcome.invalidated,
        ["lib.c"],
        "a summary-preserving body edit must not spill past the edited unit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interface_edits_propagate_to_importers_but_never_to_strangers() {
    let dir = three_unit_corpus("cone-iface");
    let opts = PipelineOptions::default();
    let mut engine = Engine::new(&dir, &opts).expect("engine");

    // Warm past the body edit so the two interface rounds each start from
    // a converged state.
    engine
        .apply_edits(vec![("lib.c".into(), LIB_BODY_EDIT.into())])
        .expect("body round");

    let summary = engine
        .apply_edits(vec![("lib.c".into(), LIB_SUMMARY_EDIT.into())])
        .expect("summary round");
    assert_eq!(
        summary.invalidated,
        ["app.c", "lib.c"],
        "a summary change must re-analyze the importer"
    );

    let arity = engine
        .apply_edits(vec![("lib.c".into(), LIB_ARITY_EDIT.into())])
        .expect("arity round");
    assert_eq!(
        arity.invalidated,
        ["app.c", "lib.c"],
        "a signature change must re-analyze the importer"
    );

    assert_eq!(engine.rounds(), 3);
    // The accumulated state must match a cold batch run of the final
    // corpus, byte for byte.
    assert_eq!(
        engine.report().expect("report").to_pretty(),
        cold_report(&dir, &opts).expect("cold run").to_pretty()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn noop_edits_are_dropped_without_a_round() {
    let dir = three_unit_corpus("cone-noop");
    let opts = PipelineOptions::default();
    let mut engine = Engine::new(&dir, &opts).expect("engine");

    let outcome = engine
        .apply_edits(vec![("lib.c".into(), LIB.into())])
        .expect("noop round");
    assert!(outcome.is_noop());
    assert!(outcome.invalidated.is_empty());
    assert_eq!(engine.rounds(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_edit_can_introduce_a_new_unit() {
    let dir = three_unit_corpus("cone-new");
    let opts = PipelineOptions::default();
    let mut engine = Engine::new(&dir, &opts).expect("engine");

    let outcome = engine
        .apply_edits(vec![(
            "new.c".into(),
            "int main() { return helper(0); }\n".into(),
        )])
        .expect("new-unit round");
    assert_eq!(outcome.edited, ["new.c"]);
    assert!(engine.unit_names().contains(&"new.c".to_string()));
    assert_eq!(
        engine.report().expect("report").to_pretty(),
        cold_report(&dir, &opts).expect("cold run").to_pretty()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convergence_holds_with_a_warm_cache() {
    let dir = three_unit_corpus("cone-cache");
    let opts = PipelineOptions {
        cache_dir: Some(dir.join(".sga-cache")),
        ..PipelineOptions::default()
    };
    let mut engine = Engine::new(&dir, &opts).expect("engine");
    engine
        .apply_edits(vec![("lib.c".into(), LIB_SUMMARY_EDIT.into())])
        .expect("summary round");
    // Edit back: the first analysis of LIB is now a cache hit, and the
    // cached result must be indistinguishable from a fresh one.
    engine
        .apply_edits(vec![("lib.c".into(), LIB.into())])
        .expect("revert round");
    assert_eq!(
        engine.report().expect("report").to_pretty(),
        cold_report(&dir, &opts).expect("cold run").to_pretty(),
        "cache-served units must render identically to a cache-less run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
