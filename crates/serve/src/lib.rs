//! `sga-serve` — the incremental analysis daemon behind `sga serve`.
//!
//! A batch run ([`sga_pipeline::run`]) answers "what are the alarms of
//! this corpus?" once. The daemon keeps answering it as the corpus is
//! edited, re-analyzing only what an edit can actually affect:
//!
//! * [`engine`] — the state machine: per-unit results plus link
//!   [`sga_core::interface`]s, dependency-aware invalidation (a unit is
//!   re-analyzed only when a symbol it imports changed interface), and the
//!   convergence invariant — the accumulated report is byte-identical to a
//!   cold batch run of the corpus' current state;
//! * [`server`] — the network front: line-delimited JSON over TCP and/or
//!   Unix sockets, an engine thread with edit coalescing, streamed alarm
//!   diff events to any number of subscribers, and a filesystem-polling
//!   fallback;
//! * [`client`] — the matching client helpers (`sga watch`).

pub mod client;
pub mod engine;
pub mod server;

pub use engine::{cold_report, diff_json, Engine, RoundOutcome};
pub use server::{serve, ServerConfig, ServerHandle};
