//! `sga-serve` — the incremental analysis daemon behind `sga serve`.
//!
//! A batch run ([`sga_pipeline::run`]) answers "what are the alarms of
//! this corpus?" once. The daemon keeps answering it as the corpus is
//! edited, re-analyzing only what an edit can actually affect:
//!
//! * [`engine`] — the state machine: per-unit results plus link
//!   [`sga_core::interface`]s, dependency-aware invalidation (a unit is
//!   re-analyzed only when a symbol it imports changed interface), and the
//!   convergence invariant — the accumulated report is byte-identical to a
//!   cold batch run of the corpus' current state;
//! * [`journal`] — the round journal: each round's unit results are
//!   committed to disk so a killed daemon warm-restarts (`--resume`)
//!   without re-analyzing the whole corpus;
//! * [`server`] — the network front: line-delimited JSON over TCP and/or
//!   Unix sockets, an engine thread with edit coalescing and bounded-queue
//!   load shedding, supervised against analyzer panics, per-subscriber
//!   writer threads that isolate slow consumers, and a filesystem-polling
//!   fallback;
//! * [`client`] — the matching client helpers (`sga watch`): timeouts,
//!   bounded retry on shed edits.

pub mod client;
pub mod engine;
pub mod journal;
pub mod server;

pub use engine::{cold_report, diff_json, Engine, RoundFault, RoundOutcome};
pub use journal::RoundJournal;
pub use server::{serve, ServeStats, ServerConfig, ServerHandle};
