//! The daemon's network front: line-delimited JSON over TCP and/or Unix
//! sockets, with a filesystem-polling fallback for editors that only write
//! files.
//!
//! # Wire protocol
//!
//! Every request and reply is one JSON object per line. Client → server:
//!
//! ```text
//! {"cmd":"subscribe"}                          stream diff events here
//! {"cmd":"edit","unit":"lib.c","source":"…"}   replace a unit's source
//! {"cmd":"report"}                             full accumulated report
//! {"cmd":"status"}                             units / alarms / rounds
//! {"cmd":"shutdown"}                           stop the daemon
//! ```
//!
//! Server → client: every command gets an `{"ok":…}` reply; subscribers
//! additionally receive one event per completed edit round:
//!
//! ```text
//! {"event":"diff","round":1,"edited":["lib.c"],"invalidated":["app.c","lib.c"],
//!  "diff":{"new":["<fp>"],"fixed":[],"unchanged":41,"new_definite":1},"alarms":42}
//! ```
//!
//! The `diff` body is exactly the report's `baseline` block shape — the
//! baseline classifier *is* the wire protocol.
//!
//! # Concurrency model
//!
//! One engine thread owns all analysis state and drains a request channel;
//! socket reader threads and the filesystem poller only ever enqueue.
//! Edits that arrive while a round is in flight queue up and are
//! **coalesced** into the next round (consecutive edit requests batch, with
//! last-write-wins per unit), so a burst of keystrokes costs one
//! re-analysis, and an edit can never observe — or corrupt — a half-done
//! round.

use crate::engine::{diff_json, Engine, RoundOutcome};
use sga_utils::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How listener threads poll their nonblocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Where and how to serve.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: Option<String>,
    /// Unix socket path (removed and re-created on start).
    pub unix: Option<PathBuf>,
    /// File to write the bound TCP address to once listening — how scripts
    /// find an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Poll the corpus directory for out-of-band file edits every this many
    /// milliseconds (`None` = sockets only).
    pub poll_ms: Option<u64>,
}

/// A request enqueued to the engine thread.
enum Req {
    /// Apply edits (unit name, new source).
    Edits(Vec<(String, String)>),
    /// Render the accumulated report.
    Report(Sender<String>),
    /// One-line status.
    Status(Sender<String>),
    /// Stop the daemon.
    Shutdown,
}

/// A subscriber's write half.
type Subscribers = Arc<Mutex<Vec<Box<dyn Write + Send>>>>;

/// A running daemon.
pub struct ServerHandle {
    /// The bound TCP address, when TCP was configured.
    pub tcp_addr: Option<SocketAddr>,
    req_tx: Sender<Req>,
    engine_thread: JoinHandle<()>,
    stop: Arc<AtomicBool>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// Requests shutdown without waiting.
    pub fn shutdown(&self) {
        let _ = self.req_tx.send(Req::Shutdown);
    }

    /// Blocks until the engine thread exits (after a `shutdown` command
    /// from any client or [`ServerHandle::shutdown`]), then tears down the
    /// listeners.
    pub fn wait(self) {
        let _ = self.engine_thread.join();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Starts serving `engine` per `config`: spawns the engine thread, the
/// configured listeners, and (optionally) the filesystem poller, then
/// returns immediately. Callers typically follow with
/// [`ServerHandle::wait`].
pub fn serve(engine: Engine, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let (req_tx, req_rx) = mpsc::channel::<Req>();
    let subscribers: Subscribers = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let mut tcp_addr = None;
    if let Some(bind) = &config.tcp {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        spawn_tcp_acceptor(listener, req_tx.clone(), subscribers.clone(), stop.clone());
    }
    if let (Some(addr), Some(path)) = (tcp_addr, &config.port_file) {
        std::fs::write(path, format!("{addr}\n"))?;
    }

    let mut unix_path = None;
    if let Some(path) = &config.unix {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        spawn_unix_acceptor(listener, req_tx.clone(), subscribers.clone(), stop.clone());
    }

    if let Some(ms) = config.poll_ms {
        spawn_poller(
            engine.dir().to_path_buf(),
            ms.max(1),
            req_tx.clone(),
            stop.clone(),
        );
    }

    let engine_stop = stop.clone();
    let engine_subs = subscribers;
    let engine_thread = std::thread::Builder::new()
        .name("sga-serve-engine".into())
        .spawn(move || {
            engine_loop(engine, req_rx, engine_subs);
            engine_stop.store(true, Ordering::Relaxed);
        })?;

    Ok(ServerHandle {
        tcp_addr,
        req_tx,
        engine_thread,
        stop,
        unix_path,
    })
}

/// The engine thread: drains requests in order, coalescing consecutive
/// edit batches into one round, and broadcasts each round's diff event.
fn engine_loop(mut engine: Engine, req_rx: Receiver<Req>, subscribers: Subscribers) {
    let mut stashed: Option<Req> = None;
    loop {
        let req = match stashed.take() {
            Some(r) => r,
            None => match req_rx.recv() {
                Ok(r) => r,
                Err(_) => return, // every sender gone
            },
        };
        match req {
            Req::Edits(mut batch) => {
                // Coalesce the burst: consecutive edit requests already in
                // the channel join this round (later entries win per unit —
                // `apply_edits` is last-write-wins). The first non-edit
                // request is stashed, preserving order for report/status.
                loop {
                    match req_rx.try_recv() {
                        Ok(Req::Edits(more)) => batch.extend(more),
                        Ok(other) => {
                            stashed = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                    }
                }
                match engine.apply_edits(batch) {
                    Ok(outcome) if outcome.is_noop() => {}
                    Ok(outcome) => broadcast(&subscribers, &diff_event(engine.rounds(), &outcome)),
                    Err(e) => broadcast(
                        &subscribers,
                        &Json::obj()
                            .with("event", "error")
                            .with("error", e.to_string()),
                    ),
                }
            }
            Req::Report(reply) => {
                let line = match engine.report() {
                    Ok(report) => report.to_compact(),
                    Err(e) => Json::obj()
                        .with("ok", false)
                        .with("error", e.to_string())
                        .to_compact(),
                };
                let _ = reply.send(line);
            }
            Req::Status(reply) => {
                let line = Json::obj()
                    .with("ok", true)
                    .with("units", engine.unit_names().len())
                    .with("alarms", engine.alarms())
                    .with("rounds", engine.rounds())
                    .to_compact();
                let _ = reply.send(line);
            }
            Req::Shutdown => return,
        }
    }
}

/// Renders one round's broadcast event.
fn diff_event(round: usize, outcome: &RoundOutcome) -> Json {
    let names = |v: &[String]| v.iter().map(|n| Json::from(n.as_str())).collect::<Vec<_>>();
    Json::obj()
        .with("event", "diff")
        .with("round", round)
        .with("edited", names(&outcome.edited))
        .with("invalidated", names(&outcome.invalidated))
        .with("diff", diff_json(&outcome.diff))
        .with("alarms", outcome.alarms)
}

/// Writes `event` to every subscriber, dropping the ones whose connection
/// is gone.
fn broadcast(subscribers: &Subscribers, event: &Json) {
    let line = format!("{}\n", event.to_compact());
    let mut subs = subscribers.lock().unwrap_or_else(|p| p.into_inner());
    subs.retain_mut(|w| {
        w.write_all(line.as_bytes())
            .and_then(|()| w.flush())
            .is_ok()
    });
}

fn spawn_tcp_acceptor(
    listener: TcpListener,
    req_tx: Sender<Req>,
    subscribers: Subscribers,
    stop: Arc<AtomicBool>,
) {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = req_tx.clone();
                let subs = subscribers.clone();
                std::thread::spawn(move || {
                    if let Ok(write) = stream.try_clone() {
                        handle_connection(stream, Box::new(write), tx, subs);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    });
}

fn spawn_unix_acceptor(
    listener: UnixListener,
    req_tx: Sender<Req>,
    subscribers: Subscribers,
    stop: Arc<AtomicBool>,
) {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = req_tx.clone();
                let subs = subscribers.clone();
                std::thread::spawn(move || {
                    if let Ok(write) = stream.try_clone() {
                        handle_connection(stream, Box::new(write), tx, subs);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    });
}

/// One client connection: reads request lines until EOF, replying on the
/// connection's write half. `subscribe` moves a clone of the write half
/// into the broadcast list; the reader keeps running so the same
/// connection can still issue commands.
fn handle_connection<R: std::io::Read>(
    read: R,
    mut write: Box<dyn Write + Send>,
    req_tx: Sender<Req>,
    subscribers: Subscribers,
) {
    let reply = |w: &mut Box<dyn Write + Send>, j: Json| {
        let _ = w
            .write_all(format!("{}\n", j.to_compact()).as_bytes())
            .and_then(|()| w.flush());
    };
    let err = |msg: &str| Json::obj().with("ok", false).with("error", msg);
    for line in BufReader::new(read).lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(req) = Json::parse(&line) else {
            reply(&mut write, err("request is not valid JSON"));
            continue;
        };
        match req.get("cmd").and_then(Json::as_str) {
            Some("subscribe") => {
                // Subscribing hands this connection's write half to the
                // broadcaster for good; the connection becomes a pure event
                // stream, further commands belong on a fresh connection.
                // Ack and push under the broadcast lock: once the client has
                // read the ack, every later broadcast is ordered after its
                // registration — it cannot miss an event it caused.
                let mut subs = subscribers.lock().unwrap_or_else(|p| p.into_inner());
                reply(
                    &mut write,
                    Json::obj().with("ok", true).with("subscribed", true),
                );
                subs.push(write);
                return;
            }
            Some("edit") => {
                let unit = req.get("unit").and_then(Json::as_str);
                let source = req.get("source").and_then(Json::as_str);
                match (unit, source) {
                    (Some(unit), Some(source)) => {
                        let queued = req_tx
                            .send(Req::Edits(vec![(unit.to_string(), source.to_string())]))
                            .is_ok();
                        reply(
                            &mut write,
                            Json::obj().with("ok", queued).with("queued", unit),
                        );
                    }
                    _ => reply(
                        &mut write,
                        err("edit needs string fields `unit` and `source`"),
                    ),
                }
            }
            Some("report") => {
                let (tx, rx) = mpsc::channel();
                if req_tx.send(Req::Report(tx)).is_ok() {
                    if let Ok(line) = rx.recv() {
                        let _ = write
                            .write_all(format!("{line}\n").as_bytes())
                            .and_then(|()| write.flush());
                        continue;
                    }
                }
                reply(&mut write, err("daemon is shutting down"));
            }
            Some("status") => {
                let (tx, rx) = mpsc::channel();
                if req_tx.send(Req::Status(tx)).is_ok() {
                    if let Ok(line) = rx.recv() {
                        let _ = write
                            .write_all(format!("{line}\n").as_bytes())
                            .and_then(|()| write.flush());
                        continue;
                    }
                }
                reply(&mut write, err("daemon is shutting down"));
            }
            Some("shutdown") => {
                let _ = req_tx.send(Req::Shutdown);
                reply(
                    &mut write,
                    Json::obj().with("ok", true).with("stopping", true),
                );
                return;
            }
            _ => reply(&mut write, err("unknown cmd")),
        }
    }
}

/// The filesystem fallback: polls the corpus directory and synthesizes
/// edit requests for files whose content changed out of band. The engine
/// drops edits that match its current state, so observing the daemon's own
/// writes (from socket edits) is a harmless no-op.
fn spawn_poller(dir: PathBuf, poll_ms: u64, req_tx: Sender<Req>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let mut snapshot: std::collections::BTreeMap<String, u64> = scan(&dir)
            .into_iter()
            .map(|(name, source)| (name, sga_utils::fxhash::hash_one(&source)))
            .collect();
        loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(poll_ms));
            let mut edits = Vec::new();
            for (name, source) in scan(&dir) {
                let hash = sga_utils::fxhash::hash_one(&source);
                if snapshot.insert(name.clone(), hash) != Some(hash) {
                    edits.push((name, source));
                }
            }
            if !edits.is_empty() && req_tx.send(Req::Edits(edits)).is_err() {
                return;
            }
        }
    });
}

/// All `*.c` files directly in `dir`, name-sorted, with their content.
fn scan(dir: &std::path::Path) -> Vec<(String, String)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<(String, String)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "c") {
                let name = path.file_name()?.to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path).ok()?;
                Some((name, source))
            } else {
                None
            }
        })
        .collect();
    files.sort();
    files
}
