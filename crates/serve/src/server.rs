//! The daemon's network front: line-delimited JSON over TCP and/or Unix
//! sockets, with a filesystem-polling fallback for editors that only write
//! files.
//!
//! # Wire protocol
//!
//! Every request and reply is one JSON object per line. Client → server:
//!
//! ```text
//! {"cmd":"subscribe"}                          stream diff events here
//! {"cmd":"edit","unit":"lib.c","source":"…"}   replace a unit's source
//! {"cmd":"report"}                             full accumulated report
//! {"cmd":"status"}                             units / alarms / rounds / stats
//! {"cmd":"shutdown"}                           stop the daemon
//! ```
//!
//! Server → client: every command gets an `{"ok":…}` reply; subscribers
//! additionally receive one event per completed edit round:
//!
//! ```text
//! {"event":"diff","round":1,"edited":["lib.c"],"invalidated":["app.c","lib.c"],
//!  "diff":{"new":["<fp>"],"fixed":[],"unchanged":41,"new_definite":1},"alarms":42}
//! ```
//!
//! The `diff` body is exactly the report's `baseline` block shape — the
//! baseline classifier *is* the wire protocol. Failure modes stream too:
//! a supervised engine panic emits `{"event":"round_degraded",…}` then
//! `{"event":"engine_restarted",…}` once recovery completes.
//!
//! # Concurrency model
//!
//! One engine thread owns all analysis state and drains a **bounded**
//! request channel; socket reader threads and the filesystem poller only
//! ever enqueue. Edits that arrive while a round is in flight queue up and
//! are **coalesced** into the next round (consecutive edit requests batch,
//! with last-write-wins per unit), so a burst of keystrokes costs one
//! re-analysis, and an edit can never observe — or corrupt — a half-done
//! round.
//!
//! # Robustness model
//!
//! The daemon assumes hostile traffic and a fallible analyzer:
//!
//! * **Load shedding.** The request channel holds at most
//!   [`ServerConfig::queue_cap`] entries. A socket edit that finds it full
//!   is *shed*: the client gets `{"ok":false,"shed":true}` immediately and
//!   owns the retry (`sga watch --edit` backs off and re-sends). Blocking
//!   requests (report/status, the poller) wait instead — they are bounded
//!   by connection count and self-throttle.
//! * **Subscriber isolation.** `broadcast` never writes to a socket; it
//!   `try_send`s each event into a per-subscriber bounded queue drained by
//!   a dedicated writer thread with a write deadline. A subscriber that
//!   stops reading fills its queue (or times its write out) and is
//!   *evicted* — counted in `evicted_slow` — while every other subscriber
//!   and the engine proceed at full speed.
//! * **Supervision.** Each round runs under `catch_unwind`. A panicking
//!   round broadcasts `round_degraded`, then a supervisor rebuilds the
//!   engine from its durable state (corpus dir + cache + round journal —
//!   sources are persisted *before* analysis, so no acknowledged edit is
//!   lost) and broadcasts `engine_restarted`. Rounds are also the index
//!   space for injected faults ([`ServerConfig::faults`]): round attempts
//!   are counted monotonically across restarts so `panic@2` fires once,
//!   not on every recovery.
//! * **Bounded reads.** Request lines longer than
//!   [`ServerConfig::max_request_line`] are drained (not buffered) and
//!   answered with a structured error; invalid UTF-8 likewise. The
//!   connection survives both.

use crate::engine::{diff_json, Engine, RoundFault, RoundOutcome};
use sga_pipeline::FaultPlan;
use sga_utils::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How listener threads poll their nonblocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Where and how to serve.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: Option<String>,
    /// Unix socket path (removed and re-created on start).
    pub unix: Option<PathBuf>,
    /// File to write the bound TCP address to once listening — how scripts
    /// find an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Poll the corpus directory for out-of-band file edits every this many
    /// milliseconds (`None` = sockets only).
    pub poll_ms: Option<u64>,
    /// Engine request queue capacity; socket edits beyond it are shed.
    pub queue_cap: usize,
    /// Per-subscriber outbound event queue capacity; a subscriber whose
    /// queue fills is evicted.
    pub sub_queue_cap: usize,
    /// Per-subscriber write deadline in milliseconds; a write that cannot
    /// complete within it evicts the subscriber.
    pub write_deadline_ms: u64,
    /// Shrink each subscriber socket's kernel send buffer to roughly this
    /// many bytes (`None` = kernel default). Tests and benches use this to
    /// make a stalled subscriber's eviction deterministic instead of
    /// waiting for tens of kilobytes of kernel buffering to fill.
    pub sub_sndbuf: Option<usize>,
    /// Longest accepted request line in bytes; longer lines are drained
    /// and answered with a structured error.
    pub max_request_line: usize,
    /// Deterministic fault plan keyed by **round attempt** (1-based,
    /// monotonic across engine restarts): `panic@2` panics the second
    /// round, `stall@3=200` sleeps 200ms inside the third. Only `panic`
    /// and `stall` directives apply to serve.
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            tcp: None,
            unix: None,
            port_file: None,
            poll_ms: None,
            queue_cap: 128,
            sub_queue_cap: 64,
            write_deadline_ms: 5_000,
            sub_sndbuf: None,
            max_request_line: 8 * 1024 * 1024,
            faults: FaultPlan::none(),
        }
    }
}

/// Live daemon counters, shared by the engine thread, connection threads,
/// and subscriber writers; surfaced through the `status` reply and
/// [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServeStats {
    shed: AtomicUsize,
    evicted_slow: AtomicUsize,
    degraded_rounds: AtomicUsize,
    engine_restarts: AtomicUsize,
    round_ms: Mutex<Vec<u64>>,
}

/// Round-latency samples kept for percentiles (newest overwrite oldest).
const ROUND_SAMPLES: usize = 512;

impl ServeStats {
    /// Socket edits refused because the request queue was full.
    pub fn shed(&self) -> usize {
        self.shed.load(Ordering::Relaxed)
    }

    /// Subscribers evicted for not keeping up (full queue or write
    /// deadline).
    pub fn evicted_slow(&self) -> usize {
        self.evicted_slow.load(Ordering::Relaxed)
    }

    /// Rounds that panicked under supervision.
    pub fn degraded_rounds(&self) -> usize {
        self.degraded_rounds.load(Ordering::Relaxed)
    }

    /// Engines rebuilt after a poisoned round.
    pub fn engine_restarts(&self) -> usize {
        self.engine_restarts.load(Ordering::Relaxed)
    }

    /// Round-latency percentile in milliseconds over the retained samples
    /// (`q` in 0..=100); `None` before the first completed round.
    pub fn round_percentile_ms(&self, q: u32) -> Option<u64> {
        let samples = self.round_ms.lock().unwrap_or_else(|p| p.into_inner());
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = (q as usize * (sorted.len() - 1)).div_ceil(100);
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_evicted(&self) {
        self.evicted_slow.fetch_add(1, Ordering::Relaxed);
    }

    fn note_round(&self, elapsed: Duration) {
        let mut samples = self.round_ms.lock().unwrap_or_else(|p| p.into_inner());
        if samples.len() == ROUND_SAMPLES {
            samples.remove(0);
        }
        samples.push(elapsed.as_millis() as u64);
    }
}

/// A request enqueued to the engine thread.
enum Req {
    /// Apply edits (unit name, new source).
    Edits(Vec<(String, String)>),
    /// Render the accumulated report.
    Report(Sender<String>),
    /// One-line status.
    Status(Sender<String>),
    /// Stop the daemon.
    Shutdown,
}

/// A connection write half that can take a write deadline and a shrunken
/// kernel send buffer — what subscriber isolation needs beyond
/// [`Write`].
trait SubWrite: Write + Send {
    /// Bounds each write: a stalled peer makes writes fail with a
    /// timeout/would-block error instead of blocking the writer forever.
    fn set_write_deadline(&self, deadline: Option<Duration>) -> std::io::Result<()>;
    /// Best-effort `SO_SNDBUF` shrink (kernel may round up).
    fn set_sndbuf(&self, bytes: usize);
}

impl SubWrite for TcpStream {
    fn set_write_deadline(&self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(deadline)
    }
    fn set_sndbuf(&self, bytes: usize) {
        set_sndbuf_fd(self.as_raw_fd(), bytes);
    }
}

impl SubWrite for UnixStream {
    fn set_write_deadline(&self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(deadline)
    }
    fn set_sndbuf(&self, bytes: usize) {
        set_sndbuf_fd(self.as_raw_fd(), bytes);
    }
}

/// Raw `setsockopt(SOL_SOCKET, SO_SNDBUF)` — the standard library exposes
/// no buffer-size control, and the crate policy is no new dependencies, so
/// this mirrors the raw `signal(2)` binding in the pipeline's interrupt
/// module. Best effort: a failure leaves the kernel default, which only
/// makes slow-subscriber eviction take longer.
fn set_sndbuf_fd(fd: i32, bytes: usize) {
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }
    let value = bytes.min(i32::MAX as usize) as i32;
    unsafe {
        let _ = setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            &value,
            std::mem::size_of::<i32>() as u32,
        );
    }
}

/// One subscriber as the broadcaster sees it: the sending half of its
/// bounded event queue. The write half lives on the subscriber's writer
/// thread; dropping the sender (eviction, shutdown) disconnects the
/// queue and the writer exits after draining.
struct Subscriber {
    tx: SyncSender<Arc<String>>,
}

/// The live subscriber list.
type Subscribers = Arc<Mutex<Vec<Subscriber>>>;

/// Everything connection handlers need, cloned per connection.
#[derive(Clone)]
struct ConnCtx {
    req_tx: SyncSender<Req>,
    subscribers: Subscribers,
    stats: Arc<ServeStats>,
    sub_queue_cap: usize,
    write_deadline: Duration,
    sub_sndbuf: Option<usize>,
    max_request_line: usize,
}

/// A running daemon.
pub struct ServerHandle {
    /// The bound TCP address, when TCP was configured.
    pub tcp_addr: Option<SocketAddr>,
    req_tx: SyncSender<Req>,
    engine_thread: JoinHandle<()>,
    stop: Arc<AtomicBool>,
    unix_path: Option<PathBuf>,
    stats: Arc<ServeStats>,
}

impl ServerHandle {
    /// Requests shutdown without waiting.
    pub fn shutdown(&self) {
        let _ = self.req_tx.send(Req::Shutdown);
    }

    /// The daemon's live counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        self.stats.clone()
    }

    /// Blocks until the engine thread exits (after a `shutdown` command
    /// from any client or [`ServerHandle::shutdown`]), then tears down the
    /// listeners.
    pub fn wait(self) {
        let _ = self.engine_thread.join();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Starts serving `engine` per `config`: spawns the engine thread, the
/// configured listeners, and (optionally) the filesystem poller, then
/// returns immediately. Callers typically follow with
/// [`ServerHandle::wait`].
pub fn serve(engine: Engine, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let (req_tx, req_rx) = mpsc::sync_channel::<Req>(config.queue_cap.max(1));
    let subscribers: Subscribers = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServeStats::default());
    let ctx = ConnCtx {
        req_tx: req_tx.clone(),
        subscribers: subscribers.clone(),
        stats: stats.clone(),
        sub_queue_cap: config.sub_queue_cap.max(1),
        write_deadline: Duration::from_millis(config.write_deadline_ms.max(1)),
        sub_sndbuf: config.sub_sndbuf,
        max_request_line: config.max_request_line.max(1),
    };

    let mut tcp_addr = None;
    if let Some(bind) = &config.tcp {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        spawn_tcp_acceptor(listener, ctx.clone(), stop.clone());
    }
    if let (Some(addr), Some(path)) = (tcp_addr, &config.port_file) {
        std::fs::write(path, format!("{addr}\n"))?;
    }

    let mut unix_path = None;
    if let Some(path) = &config.unix {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        spawn_unix_acceptor(listener, ctx.clone(), stop.clone());
    }

    if let Some(ms) = config.poll_ms {
        spawn_poller(
            engine.dir().to_path_buf(),
            ms.max(1),
            req_tx.clone(),
            stop.clone(),
        );
    }

    let engine_stop = stop.clone();
    let engine_subs = subscribers;
    let engine_stats = stats.clone();
    let faults = config.faults.clone();
    let engine_thread = std::thread::Builder::new()
        .name("sga-serve-engine".into())
        .spawn(move || {
            engine_loop(engine, req_rx, engine_subs, engine_stats, faults);
            engine_stop.store(true, Ordering::Relaxed);
        })?;

    Ok(ServerHandle {
        tcp_addr,
        req_tx,
        engine_thread,
        stop,
        unix_path,
        stats,
    })
}

/// The engine thread: drains requests in order, coalescing consecutive
/// edit batches into one round, broadcasting each round's diff event, and
/// supervising the engine against panicking rounds.
fn engine_loop(
    mut engine: Engine,
    req_rx: Receiver<Req>,
    subscribers: Subscribers,
    stats: Arc<ServeStats>,
    faults: FaultPlan,
) {
    let mut stashed: Option<Req> = None;
    // Round *attempts*, monotonic across engine restarts — the fault
    // plan's index space. (`engine.rounds()` resets on recovery and
    // counts only completed rounds, which would re-fire one-shot faults.)
    let mut attempts: usize = 0;
    loop {
        let req = match stashed.take() {
            Some(r) => r,
            None => match req_rx.recv() {
                Ok(r) => r,
                Err(_) => return, // every sender gone
            },
        };
        match req {
            Req::Edits(mut batch) => {
                // Coalesce the burst: consecutive edit requests already in
                // the channel join this round (later entries win per unit —
                // `apply_edits` is last-write-wins). The first non-edit
                // request is stashed, preserving order for report/status.
                loop {
                    match req_rx.try_recv() {
                        Ok(Req::Edits(more)) => batch.extend(more),
                        Ok(other) => {
                            stashed = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                    }
                }
                attempts += 1;
                let fault = RoundFault {
                    panic: faults.should_panic(attempts),
                    stall_ms: faults.stall_ms(attempts),
                };
                let started = Instant::now();
                // Injected and genuine analyzer panics both unwind to
                // here; silence the default hook's backtrace spew for the
                // supervised window (the engine thread is the only one
                // panicking by design).
                let hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.apply_edits_injected(batch, fault)
                }));
                std::panic::set_hook(hook);
                match result {
                    Ok(Ok(outcome)) if outcome.is_noop() => {}
                    Ok(Ok(outcome)) => {
                        stats.note_round(started.elapsed());
                        broadcast(&subscribers, &stats, &diff_event(engine.rounds(), &outcome));
                    }
                    Ok(Err(e)) => broadcast(
                        &subscribers,
                        &stats,
                        &Json::obj()
                            .with("event", "error")
                            .with("error", e.to_string()),
                    ),
                    Err(panic) => {
                        stats.degraded_rounds.fetch_add(1, Ordering::Relaxed);
                        broadcast(
                            &subscribers,
                            &stats,
                            &Json::obj()
                                .with("event", "round_degraded")
                                .with("round_attempt", attempts)
                                .with("error", panic_message(&panic)),
                        );
                        // Supervisor: the in-memory engine may hold a
                        // half-applied round; rebuild from durable state.
                        // Sources were persisted before the panic window,
                        // so no acknowledged edit is lost.
                        let dir = engine.dir().to_path_buf();
                        let opts = engine.options().clone();
                        match Engine::open(&dir, &opts, true) {
                            Ok(fresh) => {
                                engine = fresh;
                                stats.engine_restarts.fetch_add(1, Ordering::Relaxed);
                                broadcast(
                                    &subscribers,
                                    &stats,
                                    &Json::obj()
                                        .with("event", "engine_restarted")
                                        .with("round_attempt", attempts)
                                        .with("resumed_units", engine.resumed_units())
                                        .with("alarms", engine.alarms()),
                                );
                            }
                            Err(e) => {
                                // Recovery itself failed (corpus dir gone,
                                // cache unopenable): nothing sane to serve.
                                broadcast(
                                    &subscribers,
                                    &stats,
                                    &Json::obj()
                                        .with("event", "fatal")
                                        .with("error", e.to_string()),
                                );
                                return;
                            }
                        }
                    }
                }
            }
            Req::Report(reply) => {
                let line = match engine.report() {
                    Ok(report) => report.to_compact(),
                    Err(e) => Json::obj()
                        .with("ok", false)
                        .with("error", e.to_string())
                        .to_compact(),
                };
                let _ = reply.send(line);
            }
            Req::Status(reply) => {
                let subs_now = subscribers.lock().unwrap_or_else(|p| p.into_inner()).len();
                let mut status = Json::obj()
                    .with("ok", true)
                    .with("units", engine.unit_names().len())
                    .with("alarms", engine.alarms())
                    .with("rounds", engine.rounds())
                    .with("resumed_units", engine.resumed_units())
                    .with("subscribers", subs_now)
                    .with("shed", stats.shed())
                    .with("evicted_slow", stats.evicted_slow())
                    .with("degraded_rounds", stats.degraded_rounds())
                    .with("engine_restarts", stats.engine_restarts());
                // Cumulative isolated-worker counters for this process;
                // all zero unless the engine runs with process isolation.
                let workers = sga_pipeline::worker::stats();
                status.set("workers_killed", workers.killed);
                status.set("workers_retried", workers.retried);
                status.set("workers_oom", workers.oom);
                status.set("workers_stalled", workers.stalls);
                if let Some(p50) = stats.round_percentile_ms(50) {
                    status.set("round_p50_ms", p50 as usize);
                }
                if let Some(p95) = stats.round_percentile_ms(95) {
                    status.set("round_p95_ms", p95 as usize);
                }
                let _ = reply.send(status.to_compact());
            }
            Req::Shutdown => return,
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Renders one round's broadcast event.
fn diff_event(round: usize, outcome: &RoundOutcome) -> Json {
    let names = |v: &[String]| v.iter().map(|n| Json::from(n.as_str())).collect::<Vec<_>>();
    Json::obj()
        .with("event", "diff")
        .with("round", round)
        .with("edited", names(&outcome.edited))
        .with("invalidated", names(&outcome.invalidated))
        .with("diff", diff_json(&outcome.diff))
        .with("alarms", outcome.alarms)
}

/// Enqueues `event` to every subscriber's bounded queue without touching a
/// socket. A queue that is full means its writer thread has been stuck (or
/// behind) for a whole queue's worth of events: that subscriber is evicted
/// — dropping the sender disconnects the writer — and counted. A
/// disconnected queue means the writer already exited (peer gone or write
/// deadline hit) and is silently reaped.
fn broadcast(subscribers: &Subscribers, stats: &ServeStats, event: &Json) {
    let line = Arc::new(format!("{}\n", event.to_compact()));
    let mut subs = subscribers.lock().unwrap_or_else(|p| p.into_inner());
    subs.retain(|s| match s.tx.try_send(line.clone()) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            stats.note_evicted();
            false
        }
        Err(TrySendError::Disconnected(_)) => false,
    });
}

/// The subscriber's writer thread: drains the bounded queue onto the
/// socket under the write deadline. A deadline miss (the peer stopped
/// reading and its kernel buffer is full) counts as a slow eviction; any
/// other error is a vanished peer. Either way the thread exits, the queue
/// disconnects, and the broadcaster reaps the entry.
fn spawn_subscriber_writer(
    mut write: Box<dyn SubWrite>,
    rx: Receiver<Arc<String>>,
    stats: Arc<ServeStats>,
) {
    std::thread::spawn(move || {
        for line in rx {
            if let Err(e) = write
                .write_all(line.as_bytes())
                .and_then(|()| write.flush())
            {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    stats.note_evicted();
                }
                return;
            }
        }
    });
}

fn spawn_tcp_acceptor(listener: TcpListener, ctx: ConnCtx, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = ctx.clone();
                std::thread::spawn(move || {
                    if let Ok(write) = stream.try_clone() {
                        handle_connection(stream, Box::new(write), ctx);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    });
}

fn spawn_unix_acceptor(listener: UnixListener, ctx: ConnCtx, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = ctx.clone();
                std::thread::spawn(move || {
                    if let Ok(write) = stream.try_clone() {
                        handle_connection(stream, Box::new(write), ctx);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    });
}

/// Why [`read_request_line`] could not produce a request line.
enum LineError {
    /// The line exceeded the configured bound (it was drained, not
    /// buffered — the connection can continue).
    TooLong,
    /// The line was not valid UTF-8 (the connection can continue).
    NotUtf8,
    /// The underlying read failed; the connection is done.
    Io,
}

/// Reads one `\n`-terminated request line, buffering at most `max` bytes.
/// An over-long line is consumed to its newline (or EOF) without ever
/// holding more than a buffer's worth in memory — a hostile client cannot
/// grow daemon memory by withholding the newline. Returns `Ok(None)` at a
/// clean EOF; a final unterminated line is returned as-is (covers clients
/// that disconnect mid-line — the parse error reply goes nowhere, which
/// is fine).
fn read_request_line<R: BufRead>(reader: &mut R, max: usize) -> Result<Option<String>, LineError> {
    let mut line: Vec<u8> = Vec::new();
    let mut too_long = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(LineError::Io),
        };
        if chunk.is_empty() {
            // EOF: deliver what we have (possibly nothing).
            if too_long {
                return Err(LineError::TooLong);
            }
            if line.is_empty() {
                return Ok(None);
            }
            break;
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !too_long && line.len() + take > max {
            too_long = true;
            line.clear(); // stop buffering, keep draining
        }
        if !too_long {
            line.extend_from_slice(&chunk[..take]);
        }
        let consumed = take + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            if too_long {
                return Err(LineError::TooLong);
            }
            break;
        }
    }
    match String::from_utf8(line) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(LineError::NotUtf8),
    }
}

/// One client connection: reads request lines until EOF, replying on the
/// connection's write half. `subscribe` moves the write half onto a
/// dedicated writer thread feeding from a bounded event queue; the reader
/// exits and the connection becomes a pure event stream.
fn handle_connection<R: std::io::Read>(read: R, mut write: Box<dyn SubWrite>, ctx: ConnCtx) {
    let reply = |w: &mut Box<dyn SubWrite>, j: Json| {
        let _ = w
            .write_all(format!("{}\n", j.to_compact()).as_bytes())
            .and_then(|()| w.flush());
    };
    let err = |msg: &str| Json::obj().with("ok", false).with("error", msg);
    let mut reader = BufReader::new(read);
    loop {
        let line = match read_request_line(&mut reader, ctx.max_request_line) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(LineError::TooLong) => {
                reply(
                    &mut write,
                    err(&format!(
                        "request line exceeds {} bytes",
                        ctx.max_request_line
                    )),
                );
                continue;
            }
            Err(LineError::NotUtf8) => {
                reply(&mut write, err("request line is not valid UTF-8"));
                continue;
            }
            Err(LineError::Io) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(req) = Json::parse(&line) else {
            reply(&mut write, err("request is not valid JSON"));
            continue;
        };
        match req.get("cmd").and_then(Json::as_str) {
            Some("subscribe") => {
                // Subscribing hands this connection's write half to a
                // dedicated writer thread for good; the connection becomes
                // a pure event stream, further commands belong on a fresh
                // connection. Ack and register under the broadcast lock:
                // once the client has read the ack, every later broadcast
                // is ordered after its registration — it cannot miss an
                // event it caused.
                if let Some(bytes) = ctx.sub_sndbuf {
                    write.set_sndbuf(bytes);
                }
                let _ = write.set_write_deadline(Some(ctx.write_deadline));
                let (tx, rx) = mpsc::sync_channel::<Arc<String>>(ctx.sub_queue_cap);
                let mut subs = ctx.subscribers.lock().unwrap_or_else(|p| p.into_inner());
                reply(
                    &mut write,
                    Json::obj().with("ok", true).with("subscribed", true),
                );
                subs.push(Subscriber { tx });
                drop(subs);
                spawn_subscriber_writer(write, rx, ctx.stats.clone());
                return;
            }
            Some("edit") => {
                let unit = req.get("unit").and_then(Json::as_str);
                let source = req.get("source").and_then(Json::as_str);
                match (unit, source) {
                    (Some(unit), Some(source)) => {
                        // Shed on a full queue instead of blocking the
                        // socket: the client owns the retry, the reply
                        // says so explicitly.
                        match ctx
                            .req_tx
                            .try_send(Req::Edits(vec![(unit.to_string(), source.to_string())]))
                        {
                            Ok(()) => reply(
                                &mut write,
                                Json::obj().with("ok", true).with("queued", unit),
                            ),
                            Err(TrySendError::Full(_)) => {
                                ctx.stats.note_shed();
                                reply(
                                    &mut write,
                                    Json::obj()
                                        .with("ok", false)
                                        .with("shed", true)
                                        .with("error", "request queue full, retry"),
                                );
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                reply(&mut write, err("daemon is shutting down"));
                            }
                        }
                    }
                    _ => reply(
                        &mut write,
                        err("edit needs string fields `unit` and `source`"),
                    ),
                }
            }
            Some("report") => {
                let (tx, rx) = mpsc::channel();
                if ctx.req_tx.send(Req::Report(tx)).is_ok() {
                    if let Ok(line) = rx.recv() {
                        let _ = write
                            .write_all(format!("{line}\n").as_bytes())
                            .and_then(|()| write.flush());
                        continue;
                    }
                }
                reply(&mut write, err("daemon is shutting down"));
            }
            Some("status") => {
                let (tx, rx) = mpsc::channel();
                if ctx.req_tx.send(Req::Status(tx)).is_ok() {
                    if let Ok(line) = rx.recv() {
                        let _ = write
                            .write_all(format!("{line}\n").as_bytes())
                            .and_then(|()| write.flush());
                        continue;
                    }
                }
                reply(&mut write, err("daemon is shutting down"));
            }
            Some("shutdown") => {
                let _ = ctx.req_tx.send(Req::Shutdown);
                reply(
                    &mut write,
                    Json::obj().with("ok", true).with("stopping", true),
                );
                return;
            }
            _ => reply(&mut write, err("unknown cmd")),
        }
    }
}

/// The filesystem fallback: polls the corpus directory and synthesizes
/// edit requests for files whose content changed out of band. The engine
/// drops edits that match its current state, so observing the daemon's own
/// writes (from socket edits) is a harmless no-op. Uses a *blocking* send:
/// under overload the poller self-throttles instead of shedding (its edits
/// are re-observable from disk, but blocking is simpler and lossless).
fn spawn_poller(dir: PathBuf, poll_ms: u64, req_tx: SyncSender<Req>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let mut snapshot: std::collections::BTreeMap<String, u64> = scan(&dir)
            .into_iter()
            .map(|(name, source)| (name, sga_utils::fxhash::hash_one(&source)))
            .collect();
        loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(poll_ms));
            let mut edits = Vec::new();
            for (name, source) in scan(&dir) {
                let hash = sga_utils::fxhash::hash_one(&source);
                if snapshot.insert(name.clone(), hash) != Some(hash) {
                    edits.push((name, source));
                }
            }
            if !edits.is_empty() && req_tx.send(Req::Edits(edits)).is_err() {
                return;
            }
        }
    });
}

/// All `*.c` files directly in `dir`, name-sorted, with their content.
fn scan(dir: &std::path::Path) -> Vec<(String, String)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<(String, String)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "c") {
                let name = path.file_name()?.to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path).ok()?;
                Some((name, source))
            } else {
                None
            }
        })
        .collect();
    files.sort();
    files
}
