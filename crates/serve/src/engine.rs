//! The daemon's analysis state machine: a loaded corpus, per-unit results,
//! and dependency-aware invalidation of edits.
//!
//! The engine owns one [`UnitState`] per translation unit — its source
//! text, its rendered report object, its diagnostics, and its link
//! [`UnitInterface`]. An edit round ([`Engine::apply_edits`]) re-analyzes
//! the edited units, then walks the cross-unit dependency frontier: a unit
//! is invalidated only when a symbol it actually *imports* changed
//! interface (per-function summary hash), never merely because a sibling
//! file was touched. Each round ends with a corpus-wide alarm diff
//! ([`sga_diag::baseline::diff_open`]) — the daemon's streamed event.
//!
//! **Convergence invariant.** After any edit sequence, [`Engine::report`]
//! is byte-identical to a fresh cold batch run of the corpus directory's
//! final state (`sga analyze <dir> --no-cache --canonical`, i.e.
//! [`cold_report`]), at any job count. Two mechanisms carry it: per-unit
//! report objects are normalized (`cache` reads `"off"`, matching a
//! cache-less run), and re-analysis is idempotent — an invalidated unit
//! whose source did not change reproduces its exact previous result, so
//! over-invalidation can never corrupt state, only waste work.
//!
//! **Durability.** When a cache or journal directory is configured, every
//! (re-)analyzed unit is committed to a [`RoundJournal`] at the end of its
//! round. [`Engine::open`] with `resume` replays those records: a unit
//! whose current on-disk source still hashes to its record's cache key is
//! restored without analysis, so a daemon killed mid-round (`kill -9`,
//! OOM, a supervised panic) warm-restarts in time proportional to the
//! interrupted round's frontier, not the corpus — and, because analysis is
//! a pure function of (source, options), replay preserves the convergence
//! invariant exactly.

use crate::journal::RoundJournal;
use sga_core::interface::UnitInterface;
use sga_diag::baseline::{self, BaselineDiff};
use sga_diag::Diagnostic;
use sga_pipeline::{
    analyze_units, assemble_report, load_project, unit_cache_key, Cache, PipelineError,
    PipelineOptions, Project, UnitInput,
};
use sga_utils::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One unit's live state inside the daemon.
struct UnitState {
    /// Current source text (mirrors the file on disk).
    source: String,
    /// Rendered per-unit report object, normalized so the accumulated
    /// report matches a cold cache-less run byte for byte: the `cache`
    /// field (when present — crashed units have none) reads `"off"`.
    json: Json,
    /// The unit's open and discharged diagnostics (empty when it crashed).
    diags: Vec<Diagnostic>,
    /// The unit's link boundary (empty when it crashed).
    interface: UnitInterface,
}

/// What one edit round produced.
#[derive(Clone, Debug, Default)]
pub struct RoundOutcome {
    /// Units whose new source was applied this round, name-sorted.
    pub edited: Vec<String>,
    /// Units re-analyzed this round: the edited units plus everything the
    /// invalidation worklist reached, name-sorted.
    pub invalidated: Vec<String>,
    /// Corpus-wide alarm diff, before vs after the round.
    pub diff: BaselineDiff,
    /// Open alarms across the corpus after the round.
    pub alarms: usize,
}

impl RoundOutcome {
    /// Whether the round did anything (no-op edits produce no round).
    pub fn is_noop(&self) -> bool {
        self.edited.is_empty()
    }
}

/// Faults to inject into one edit round — the serve-side projection of a
/// [`sga_pipeline::FaultPlan`] directive keyed by round number. Injection
/// happens on the engine thread *after* the round's sources are persisted
/// to the corpus directory, so a faulted round never loses an
/// acknowledged edit: the supervisor's recovery re-reads the directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundFault {
    /// Panic the engine thread (exercises supervision).
    pub panic: bool,
    /// Sleep this long before analyzing (opens a deterministic overload /
    /// kill window).
    pub stall_ms: Option<u64>,
}

impl RoundFault {
    /// No injection.
    pub fn none() -> RoundFault {
        RoundFault::default()
    }
}

/// The incremental analysis engine behind `sga serve`.
pub struct Engine {
    dir: PathBuf,
    options: PipelineOptions,
    cache: Option<Cache>,
    journal: Option<RoundJournal>,
    units: BTreeMap<String, UnitState>,
    rounds: usize,
    resumed: usize,
}

impl Engine {
    /// Loads the corpus at `dir` and performs the initial (cache-warming)
    /// analysis of every unit. `options.canonical` is forced on — the
    /// daemon's report is defined as the canonical one. Equivalent to
    /// [`Engine::open`] with `resume` off.
    pub fn new(dir: &Path, options: &PipelineOptions) -> Result<Engine, PipelineError> {
        Engine::open(dir, options, false)
    }

    /// Loads the corpus at `dir`, replaying the round journal when `resume`
    /// is set: units whose on-disk source still matches a journaled record
    /// are restored verbatim, the rest (including units a crash caught
    /// mid-round) are analyzed. Without `resume` the journal is cleared —
    /// a fresh start owns it. The journal lives at `options.journal_dir`,
    /// or `serve-journal/` under the cache root, or nowhere (no durability,
    /// `resume` then degrades to a cold start).
    pub fn open(
        dir: &Path,
        options: &PipelineOptions,
        resume: bool,
    ) -> Result<Engine, PipelineError> {
        let mut options = options.clone();
        options.canonical = true;
        options.baseline = None;
        let cache = match &options.cache_dir {
            Some(cdir) => {
                let mut c = Cache::open(cdir).map_err(|e| {
                    PipelineError::Io(format!("cannot open cache {}: {e}", cdir.display()))
                })?;
                c.set_quarantine_keep(options.quarantine_keep);
                c.set_max_entries(options.cache_max_entries);
                Some(c)
            }
            None => None,
        };
        let journal_dir = options
            .journal_dir
            .clone()
            .or_else(|| options.cache_dir.as_ref().map(|d| d.join("serve-journal")));
        let journal = match &journal_dir {
            Some(jdir) => Some(RoundJournal::open(jdir).map_err(|e| {
                PipelineError::Io(format!("cannot open journal {}: {e}", jdir.display()))
            })?),
            None => None,
        };
        let inputs = load_project(&Project::Dir(dir.to_path_buf()))?;
        let mut engine = Engine {
            dir: dir.to_path_buf(),
            options,
            cache,
            journal,
            units: BTreeMap::new(),
            rounds: 0,
            resumed: 0,
        };

        // Partition the corpus into journal hits (restored verbatim) and
        // misses (analyzed now). A non-resume start analyzes everything.
        let saved = match (&engine.journal, resume) {
            (Some(j), true) => j.load(),
            (Some(j), false) => {
                j.clear().map_err(|e| {
                    PipelineError::Io(format!("cannot clear journal {}: {e}", j.dir().display()))
                })?;
                BTreeMap::new()
            }
            (None, _) => BTreeMap::new(),
        };
        let mut misses: Vec<UnitInput> = Vec::new();
        for input in inputs {
            match saved.get(&input.name) {
                Some(rec) if rec.key == unit_cache_key(&engine.options, &input.source) => {
                    engine.units.insert(
                        input.name.clone(),
                        UnitState {
                            source: input.source,
                            json: rec.json.clone(),
                            diags: rec.diags.clone(),
                            interface: rec.interface.clone(),
                        },
                    );
                    engine.resumed += 1;
                }
                _ => misses.push(input),
            }
        }
        let outcomes = analyze_units(&misses, &engine.options, engine.cache.as_ref());
        for (input, out) in misses.into_iter().zip(outcomes) {
            let state = state_of(input.source, out);
            engine.journal_unit(&input.name, &state);
            engine.units.insert(input.name, state);
        }
        if let Some(j) = &engine.journal {
            let units = &engine.units;
            j.retain(&|name| units.contains_key(name));
        }
        if let Some(c) = &engine.cache {
            c.sweep_lru();
        }
        Ok(engine)
    }

    /// The corpus directory the engine mirrors.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The engine's (massaged) analysis options — what a supervisor passes
    /// back to [`Engine::open`] to rebuild a poisoned engine.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Unit names, in report order.
    pub fn unit_names(&self) -> Vec<String> {
        self.units.keys().cloned().collect()
    }

    /// Completed (non-no-op) edit rounds so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Units restored from the round journal at open (0 without `resume`).
    pub fn resumed_units(&self) -> usize {
        self.resumed
    }

    /// Open alarms across the corpus right now.
    pub fn alarms(&self) -> usize {
        self.units
            .values()
            .flat_map(|u| &u.diags)
            .filter(|d| d.is_open())
            .count()
    }

    /// The current source of `unit`, if loaded.
    pub fn source_of(&self, unit: &str) -> Option<&str> {
        self.units.get(unit).map(|u| u.source.as_str())
    }

    /// The accumulated whole-project report — canonical, and byte-identical
    /// to [`cold_report`] of the corpus directory's current state.
    pub fn report(&self) -> Result<Json, PipelineError> {
        let units_json: Vec<Json> = self.units.values().map(|u| u.json.clone()).collect();
        // Report options describe what the accumulated objects *are* — a
        // canonical cache-less run — not how the daemon computed them.
        let mut opts = self.options.clone();
        opts.cache_dir = None;
        assemble_report(units_json, &opts)
    }

    /// Applies a batch of edits (`(unit name, new source)`, last write wins
    /// per unit) as one round: writes the sources to the corpus directory,
    /// re-analyzes the edited units, then walks the invalidation frontier —
    /// units importing a symbol whose exported interface changed — to a
    /// fixpoint, each unit at most once per round. Unknown names create new
    /// units. Edits whose source matches the current state are dropped; an
    /// all-no-op batch returns a no-op outcome and counts no round.
    pub fn apply_edits(
        &mut self,
        edits: Vec<(String, String)>,
    ) -> Result<RoundOutcome, PipelineError> {
        self.apply_edits_injected(edits, RoundFault::none())
    }

    /// [`Engine::apply_edits`] with deterministic fault injection: the
    /// fault fires after the round's sources are persisted (so no
    /// acknowledged edit is ever lost) and before analysis. A no-op batch
    /// returns before the injection point — faults aimed at no-op rounds
    /// do not fire.
    pub fn apply_edits_injected(
        &mut self,
        edits: Vec<(String, String)>,
        fault: RoundFault,
    ) -> Result<RoundOutcome, PipelineError> {
        let mut latest: BTreeMap<String, String> = BTreeMap::new();
        for (name, source) in edits {
            latest.insert(name, source);
        }
        latest.retain(|name, source| self.units.get(name).is_none_or(|u| u.source != *source));
        if latest.is_empty() {
            return Ok(RoundOutcome {
                alarms: self.alarms(),
                ..RoundOutcome::default()
            });
        }

        let before: Vec<Diagnostic> = self
            .units
            .values()
            .flat_map(|u| u.diags.iter().cloned())
            .collect();

        // Persist first: the corpus directory is the ground truth the
        // convergence anchor (a cold batch run) reads — and what the
        // supervisor or a `--resume` restart recovers from.
        for (name, source) in &latest {
            write_atomic(&self.dir.join(name), source.as_bytes())
                .map_err(|e| PipelineError::Io(format!("cannot write {name}: {e}")))?;
        }

        if let Some(ms) = fault.stall_ms {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if fault.panic {
            panic!("injected fault: engine round panic");
        }

        let edited: Vec<String> = latest.keys().cloned().collect();
        let mut done: BTreeSet<String> = BTreeSet::new();
        let mut frontier: BTreeSet<String> = latest.keys().cloned().collect();
        let sources: BTreeMap<String, String> = latest;
        while !frontier.is_empty() {
            let batch: Vec<UnitInput> = frontier
                .iter()
                .map(|name| UnitInput {
                    name: name.clone(),
                    source: sources
                        .get(name)
                        .map(String::as_str)
                        .or_else(|| self.source_of(name))
                        .unwrap_or_default()
                        .to_string(),
                })
                .collect();
            let outcomes = analyze_units(&batch, &self.options, self.cache.as_ref());

            let mut changed: BTreeSet<String> = BTreeSet::new();
            for (input, out) in batch.into_iter().zip(outcomes) {
                let state = state_of(input.source, out);
                let old_iface = self
                    .units
                    .get(&input.name)
                    .map(|u| u.interface.clone())
                    .unwrap_or_default();
                changed.extend(state.interface.changed_exports(&old_iface));
                self.units.insert(input.name, state);
            }
            done.append(&mut frontier);

            // The next frontier: units whose imports include a changed
            // symbol. Re-analysis of an unedited unit reproduces its
            // interface, so in practice this converges after one hop — but
            // the worklist form keeps the rule locally obvious.
            frontier = self
                .units
                .iter()
                .filter(|(name, state)| {
                    !done.contains(*name)
                        && changed.iter().any(|s| state.interface.imports_symbol(s))
                })
                .map(|(name, _)| name.clone())
                .collect();
        }

        // Commit the round's results to the journal. A kill between the
        // source writes above and here leaves stale records whose keys no
        // longer match the on-disk sources — resume recomputes exactly
        // those units.
        for name in &done {
            if let Some(state) = self.units.get(name) {
                self.journal_unit(name, state);
            }
        }

        let after: Vec<&Diagnostic> = self.units.values().flat_map(|u| &u.diags).collect();
        let diff = baseline::diff_open(after.iter().copied(), &before);
        let alarms = after.iter().filter(|d| d.is_open()).count();
        self.rounds += 1;
        if let Some(c) = &self.cache {
            c.sweep_lru();
        }
        Ok(RoundOutcome {
            edited,
            invalidated: done.into_iter().collect(),
            diff,
            alarms,
        })
    }

    /// Best-effort journal commit of one unit's state — a failed write only
    /// costs the next restart a recompute, mirroring a failed cache store.
    fn journal_unit(&self, name: &str, state: &UnitState) {
        if let Some(j) = &self.journal {
            let key = unit_cache_key(&self.options, &state.source);
            let _ = j.record(name, key, &state.json, &state.diags, &state.interface);
        }
    }
}

/// Builds a unit's live state from one analysis outcome.
fn state_of(source: String, out: sga_pipeline::UnitOutcome) -> UnitState {
    let mut json = out.json;
    if json.get("cache").is_some() {
        json.set("cache", "off");
    }
    let (diags, interface) = match out.analysis {
        Some(a) => (a.diags.clone(), a.interface.clone()),
        None => (Vec::new(), UnitInterface::default()),
    };
    UnitState {
        source,
        json,
        diags,
        interface,
    }
}

/// The convergence anchor: a fresh cold batch run of `dir` under the same
/// analysis options, cache off, canonical report.
pub fn cold_report(dir: &Path, options: &PipelineOptions) -> Result<Json, PipelineError> {
    let mut opts = options.clone();
    opts.cache_dir = None;
    opts.cache_max_entries = None;
    opts.canonical = true;
    opts.baseline = None;
    opts.resume = false;
    opts.journal_dir = None;
    sga_pipeline::run(&Project::Dir(dir.to_path_buf()), &opts)
}

/// Atomic file write (temp + rename), so a concurrently-started cold run
/// never reads a half-written source.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Renders a [`BaselineDiff`] in the report's `baseline` block shape —
/// the same wire format `--baseline` emits, reused as the diff event body.
pub fn diff_json(diff: &BaselineDiff) -> Json {
    let hex = |fps: &[u64]| {
        fps.iter()
            .map(|fp| Json::from(format!("{fp:016x}")))
            .collect::<Vec<_>>()
    };
    Json::obj()
        .with("new", hex(&diff.new))
        .with("fixed", hex(&diff.fixed))
        .with("unchanged", diff.unchanged)
        .with("new_definite", diff.new_definite)
}
