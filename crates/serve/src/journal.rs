//! The daemon's round journal: crash-safe warm restart for `sga serve`.
//!
//! The batch pipeline's write-ahead journal makes *one run* resumable; a
//! daemon has no "run" to finish — it accumulates state round after round
//! until something kills it. The round journal makes that accumulated
//! state durable: after the initial analysis and after every edit round,
//! each (re-)analyzed unit's live state — its rendered report object, its
//! diagnostics, and its link interface — is committed to one file per
//! unit, keyed by the unit's full cache key (source × analysis options).
//!
//! `sga serve --resume` replays the journal at startup: a unit whose
//! on-disk source still hashes to its record's key is restored verbatim
//! (no re-analysis), and only units the crash caught mid-round — source
//! persisted, record not yet rewritten — are recomputed. Because the
//! record carries the *normalized* rendered object (the same bytes
//! [`crate::engine::Engine::report`] accumulates), a resumed daemon's
//! report is byte-identical to the report the killed daemon would have
//! produced, which is in turn byte-identical to a cold batch run of the
//! corpus directory's current state.
//!
//! On disk each record reuses the pipeline cache's machinery wholesale:
//! the checksummed `{checksum, payload}` envelope ([`cache::seal`]), the
//! temp-file + rename write ([`cache::write_atomic`]), and the cache-entry
//! interface codec ([`cache::encode_interface`]). A torn or rotten record
//! fails to decode and its unit is simply recomputed — a SIGKILL at any
//! byte offset costs work, never correctness.

use sga_core::interface::UnitInterface;
use sga_diag::Diagnostic;
use sga_pipeline::cache;
use sga_utils::{fxhash, Json};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Round-journal record schema version (inside the envelope payload).
pub const ROUND_JOURNAL_FORMAT: u32 = 1;

/// One unit's journaled live state.
#[derive(Clone, Debug)]
pub struct SavedUnit {
    /// The unit's full cache key when the record was written; a record is
    /// only replayed when the current source still hashes to this key.
    pub key: u64,
    /// The normalized rendered per-unit report object.
    pub json: Json,
    /// The unit's diagnostics (what alarm diffs and totals are built from).
    pub diags: Vec<Diagnostic>,
    /// The unit's link boundary (what invalidation is built from).
    pub interface: UnitInterface,
}

/// An open round-journal directory.
pub struct RoundJournal {
    dir: PathBuf,
}

impl RoundJournal {
    /// Opens (creating if needed) a round journal rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<RoundJournal> {
        std::fs::create_dir_all(dir)?;
        Ok(RoundJournal {
            dir: dir.to_path_buf(),
        })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// One file per unit, named by the unit name's hash — unit names are
    /// client-supplied file names, so they never become path components.
    fn path_of(&self, name: &str) -> PathBuf {
        self.dir
            .join(format!("u-{:016x}.json", fxhash::hash_one(&name)))
    }

    /// Commits one unit's state: checksummed envelope, atomic write. A
    /// failed write is reported but non-fatal to the caller by convention —
    /// like a failed cache store, it only costs the next restart a
    /// recompute.
    pub fn record(
        &self,
        name: &str,
        key: u64,
        json: &Json,
        diags: &[Diagnostic],
        interface: &UnitInterface,
    ) -> std::io::Result<()> {
        let payload = Json::obj()
            .with("schema", ROUND_JOURNAL_FORMAT)
            .with("name", name)
            .with("key", format!("{key:016x}"))
            .with("unit", json.clone())
            .with(
                "diagnostics",
                diags.iter().map(Diagnostic::to_json).collect::<Vec<_>>(),
            )
            .with("interface", cache::encode_interface(interface));
        cache::write_atomic(
            &self.path_of(name),
            cache::seal(payload).to_pretty().as_bytes(),
        )
    }

    /// Loads every decodable record, keyed by unit name. Damaged records
    /// (torn writes, bit rot, stale schema) are skipped — their units are
    /// recomputed on resume.
    pub fn load(&self) -> BTreeMap<String, SavedUnit> {
        let mut records = BTreeMap::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return records;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Some((name, saved)) = Json::parse(&text).ok().as_ref().and_then(decode) {
                records.insert(name, saved);
            }
        }
        records
    }

    /// Drops records for units no longer in the corpus (plus stranded temp
    /// files), so a shrunken corpus cannot resurrect deleted units.
    pub fn retain(&self, live: &dyn Fn(&str) -> bool) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let stale = match std::fs::read_to_string(&path) {
                Ok(text) => match Json::parse(&text).ok().as_ref().and_then(decode) {
                    Some((name, _)) => !live(&name),
                    None => true, // undecodable: useless, drop it
                },
                Err(_) => true,
            };
            if stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// Removes every record, keeping the directory — a fresh (non-resumed)
    /// start owns the journal, like a fresh batch run owns the pipeline's.
    pub fn clear(&self) -> std::io::Result<()> {
        for entry in std::fs::read_dir(&self.dir)?.flatten() {
            let path = entry.path();
            if path.is_file() {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

fn decode(j: &Json) -> Option<(String, SavedUnit)> {
    let payload = cache::unseal(j)?;
    if payload.get("schema")?.as_u64()? != u64::from(ROUND_JOURNAL_FORMAT) {
        return None;
    }
    let name = payload.get("name")?.as_str()?.to_string();
    let diags = payload
        .get("diagnostics")?
        .as_arr()?
        .iter()
        .map(Diagnostic::from_json)
        .collect::<Option<Vec<_>>>()?;
    Some((
        name,
        SavedUnit {
            key: u64::from_str_radix(payload.get("key")?.as_str()?, 16).ok()?,
            json: payload.get("unit")?.clone(),
            diags,
            interface: cache::decode_interface(payload.get("interface")?)?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sga-roundj-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(name: &str, key: u64) -> (Json, Vec<Diagnostic>, UnitInterface) {
        let json = Json::obj()
            .with("name", name)
            .with("outcome", "ok")
            .with("source_hash", format!("{key:016x}"))
            .with("diagnostics", Vec::<Json>::new());
        (json, Vec::new(), UnitInterface::default())
    }

    #[test]
    fn record_load_roundtrip_keyed_by_name() {
        let j = RoundJournal::open(&temp_dir("roundtrip")).unwrap();
        for (name, key) in [("a.c", 0x11u64), ("b.c", 0x22)] {
            let (json, diags, iface) = sample(name, key);
            j.record(name, key, &json, &diags, &iface).unwrap();
        }
        let loaded = j.load();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["a.c"].key, 0x11);
        assert_eq!(loaded["b.c"].key, 0x22);
        assert_eq!(
            loaded["a.c"].json.get("name").and_then(Json::as_str),
            Some("a.c")
        );
    }

    #[test]
    fn rerecording_a_unit_replaces_its_record() {
        let j = RoundJournal::open(&temp_dir("replace")).unwrap();
        let (json, diags, iface) = sample("a.c", 1);
        j.record("a.c", 1, &json, &diags, &iface).unwrap();
        let (json, diags, iface) = sample("a.c", 2);
        j.record("a.c", 2, &json, &diags, &iface).unwrap();
        let loaded = j.load();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["a.c"].key, 2);
    }

    #[test]
    fn damaged_records_are_skipped_and_retain_prunes() {
        let j = RoundJournal::open(&temp_dir("damage")).unwrap();
        for name in ["a.c", "b.c", "gone.c"] {
            let (json, diags, iface) = sample(name, 7);
            j.record(name, 7, &json, &diags, &iface).unwrap();
        }
        // Tear b.c's record in half and drop in noise.
        let torn = j.path_of("b.c");
        let text = std::fs::read_to_string(&torn).unwrap();
        std::fs::write(&torn, &text[..text.len() / 2]).unwrap();
        std::fs::write(j.dir().join("stranded.json.tmp"), b"junk").unwrap();
        std::fs::write(j.dir().join("noise.json"), b"{}").unwrap();
        let loaded = j.load();
        assert_eq!(loaded.len(), 2, "torn record must be skipped");
        // Prune everything that isn't a live unit; damaged files go too.
        j.retain(&|name| name == "a.c");
        let after = j.load();
        assert_eq!(after.len(), 1);
        assert!(after.contains_key("a.c"));
        assert!(!j.dir().join("stranded.json.tmp").exists());
        assert!(!j.dir().join("noise.json").exists());
    }

    #[test]
    fn clear_empties_the_journal() {
        let j = RoundJournal::open(&temp_dir("clear")).unwrap();
        let (json, diags, iface) = sample("a.c", 1);
        j.record("a.c", 1, &json, &diags, &iface).unwrap();
        j.clear().unwrap();
        assert!(j.load().is_empty());
        assert!(j.dir().is_dir());
    }
}
