//! Client helpers for the daemon's line-JSON protocol — the library behind
//! `sga watch`, and what the integration tests and the CI gate script use.
//!
//! Addresses: a string containing a `/` is a Unix socket path; anything
//! else is a TCP `host:port`.
//!
//! Two hardening concerns live here, mirroring the server's:
//!
//! * **Timeouts.** Every helper takes an optional deadline applied to the
//!   connect and to each read/write, so a wedged daemon (stalled engine,
//!   dead acceptor) turns into an error instead of a hang — `sga watch
//!   --report` on a zombie exits nonzero rather than blocking forever.
//! * **Shed retry.** The daemon sheds edits under load with
//!   `{"ok":false,"shed":true}`; [`edit_with_retry`] owns the bounded
//!   exponential backoff so a shed edit is re-sent, never silently
//!   dropped — and a persistent overload surfaces as the final shed reply
//!   after the attempts run out.

use sga_utils::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// One client connection, TCP or Unix.
pub enum Conn {
    /// TCP `host:port`.
    Tcp(TcpStream),
    /// Unix domain socket.
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `addr` (`host:port`, or a socket path if it contains
    /// `/`).
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        Conn::connect_timeout(addr, None)
    }

    /// [`Conn::connect`] with a deadline covering the connect itself and,
    /// once connected, each read and write on the stream.
    pub fn connect_timeout(addr: &str, timeout: Option<Duration>) -> std::io::Result<Conn> {
        let conn = if addr.contains('/') {
            // Unix connects don't take a timeout (they complete or fail
            // locally); the read/write deadlines below still apply.
            Conn::Unix(UnixStream::connect(addr)?)
        } else {
            match timeout {
                Some(t) => {
                    // connect_timeout needs resolved addresses; try each.
                    let addrs = std::net::ToSocketAddrs::to_socket_addrs(addr)?;
                    let mut last = None;
                    let mut stream = None;
                    for a in addrs {
                        match TcpStream::connect_timeout(&a, t) {
                            Ok(s) => {
                                stream = Some(s);
                                break;
                            }
                            Err(e) => last = Some(e),
                        }
                    }
                    Conn::Tcp(stream.ok_or_else(|| {
                        last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to nothing",
                            )
                        })
                    })?)
                }
                None => Conn::Tcp(TcpStream::connect(addr)?),
            }
        };
        conn.set_deadline(timeout)?;
        Ok(conn)
    }

    /// Applies (or clears) a per-read/per-write deadline.
    pub fn set_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }

    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Sends one request line and returns the one-line reply.
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    request_t(addr, line, None)
}

/// [`request`] under a deadline: connect, write, and read each must finish
/// within `timeout` or the call errors (`WouldBlock`/`TimedOut`).
pub fn request_t(addr: &str, line: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    let mut conn = Conn::connect_timeout(addr, timeout)?;
    let read = conn.try_clone()?;
    conn.write_all(format!("{}\n", line.trim_end()).as_bytes())?;
    conn.flush()?;
    let mut reply = String::new();
    BufReader::new(read).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

/// Replaces `unit`'s source on the daemon. Returns the ack line.
pub fn edit(addr: &str, unit: &str, source: &str) -> std::io::Result<String> {
    edit_t(addr, unit, source, None)
}

/// [`edit`] under a deadline.
pub fn edit_t(
    addr: &str,
    unit: &str,
    source: &str,
    timeout: Option<Duration>,
) -> std::io::Result<String> {
    let req = Json::obj()
        .with("cmd", "edit")
        .with("unit", unit)
        .with("source", source);
    request_t(addr, &req.to_compact(), timeout)
}

/// Whether a reply line is the daemon's load-shed refusal.
pub fn is_shed(reply: &str) -> bool {
    Json::parse(reply)
        .ok()
        .and_then(|j| j.get("shed").and_then(Json::as_bool))
        .unwrap_or(false)
}

/// [`edit_t`] with bounded retry on shed: a `{"ok":false,"shed":true}`
/// reply is retried up to `retries` times with exponential backoff
/// (10ms, 20ms, … capped at 500ms), so a flooded daemon loses no edit —
/// the shed is explicit and the client re-sends. Returns the final reply
/// and the number of shed refusals absorbed; a still-shed final reply
/// means the overload outlasted the retry budget, and the caller decides.
pub fn edit_with_retry(
    addr: &str,
    unit: &str,
    source: &str,
    timeout: Option<Duration>,
    retries: u32,
) -> std::io::Result<(String, u32)> {
    let mut sheds = 0u32;
    loop {
        let reply = edit_t(addr, unit, source, timeout)?;
        if !is_shed(&reply) || sheds >= retries {
            return Ok((reply, sheds));
        }
        let backoff = 10u64.saturating_mul(1 << sheds.min(10)).min(500);
        std::thread::sleep(Duration::from_millis(backoff));
        sheds += 1;
    }
}

/// Fetches the accumulated whole-project report (compact JSON).
pub fn report(addr: &str) -> std::io::Result<String> {
    report_t(addr, None)
}

/// [`report`] under a deadline.
pub fn report_t(addr: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    request_t(
        addr,
        &Json::obj().with("cmd", "report").to_compact(),
        timeout,
    )
}

/// Fetches the one-line status.
pub fn status(addr: &str) -> std::io::Result<String> {
    status_t(addr, None)
}

/// [`status`] under a deadline.
pub fn status_t(addr: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    request_t(
        addr,
        &Json::obj().with("cmd", "status").to_compact(),
        timeout,
    )
}

/// Asks the daemon to stop.
pub fn shutdown(addr: &str) -> std::io::Result<String> {
    shutdown_t(addr, None)
}

/// [`shutdown`] under a deadline.
pub fn shutdown_t(addr: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    request_t(
        addr,
        &Json::obj().with("cmd", "shutdown").to_compact(),
        timeout,
    )
}

/// Subscribes to diff events, invoking `on_event` with each event line
/// until the daemon closes the stream or `max_events` lines arrived.
pub fn watch(
    addr: &str,
    max_events: Option<usize>,
    on_event: impl FnMut(&str),
) -> std::io::Result<()> {
    watch_ready(addr, max_events, |_| {}, on_event)
}

/// [`watch`], surfacing the daemon's subscription acknowledgment:
/// `on_ready` receives the ack line (`{"ok":true,"subscribed":true}`)
/// before any event can arrive. The daemon sends the ack under its
/// broadcast lock *before* registering the subscriber, so once a caller
/// has seen it, no subsequent edit round's event can be missed — the
/// synchronization point the CI serve gate waits on instead of sleeping.
pub fn watch_ready(
    addr: &str,
    max_events: Option<usize>,
    on_ready: impl FnMut(&str),
    on_event: impl FnMut(&str),
) -> std::io::Result<()> {
    watch_ready_t(addr, max_events, None, on_ready, on_event)
}

/// [`watch_ready`] with a deadline on the connect and the subscription
/// ack only — a daemon that cannot even acknowledge within the deadline
/// is wedged and the call errors. Once subscribed the deadline is lifted:
/// an event stream is legitimately quiet for as long as nobody edits.
pub fn watch_ready_t(
    addr: &str,
    max_events: Option<usize>,
    timeout: Option<Duration>,
    mut on_ready: impl FnMut(&str),
    mut on_event: impl FnMut(&str),
) -> std::io::Result<()> {
    let mut conn = Conn::connect_timeout(addr, timeout)?;
    let read = conn.try_clone()?;
    conn.write_all(format!("{}\n", Json::obj().with("cmd", "subscribe").to_compact()).as_bytes())?;
    conn.flush()?;
    let mut lines = BufReader::new(read).lines();
    // First line is the subscription ack, not an event.
    match lines.next() {
        Some(Ok(ack)) => on_ready(ack.trim_end()),
        Some(Err(e)) => return Err(e),
        None => return Ok(()),
    }
    // Subscribed: waiting is now the normal state, stop bounding reads.
    conn.set_deadline(None)?;
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        on_event(&line);
        seen += 1;
        if max_events.is_some_and(|m| seen >= m) {
            break;
        }
    }
    Ok(())
}
