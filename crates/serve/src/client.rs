//! Client helpers for the daemon's line-JSON protocol — the library behind
//! `sga watch`, and what the integration tests and the CI gate script use.
//!
//! Addresses: a string containing a `/` is a Unix socket path; anything
//! else is a TCP `host:port`.

use sga_utils::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// One client connection, TCP or Unix.
pub enum Conn {
    /// TCP `host:port`.
    Tcp(TcpStream),
    /// Unix domain socket.
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `addr` (`host:port`, or a socket path if it contains
    /// `/`).
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        if addr.contains('/') {
            Ok(Conn::Unix(UnixStream::connect(addr)?))
        } else {
            Ok(Conn::Tcp(TcpStream::connect(addr)?))
        }
    }

    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Sends one request line and returns the one-line reply.
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    let mut conn = Conn::connect(addr)?;
    let read = conn.try_clone()?;
    conn.write_all(format!("{}\n", line.trim_end()).as_bytes())?;
    conn.flush()?;
    let mut reply = String::new();
    BufReader::new(read).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

/// Replaces `unit`'s source on the daemon. Returns the ack line.
pub fn edit(addr: &str, unit: &str, source: &str) -> std::io::Result<String> {
    let req = Json::obj()
        .with("cmd", "edit")
        .with("unit", unit)
        .with("source", source);
    request(addr, &req.to_compact())
}

/// Fetches the accumulated whole-project report (compact JSON).
pub fn report(addr: &str) -> std::io::Result<String> {
    request(addr, &Json::obj().with("cmd", "report").to_compact())
}

/// Fetches the one-line status.
pub fn status(addr: &str) -> std::io::Result<String> {
    request(addr, &Json::obj().with("cmd", "status").to_compact())
}

/// Asks the daemon to stop.
pub fn shutdown(addr: &str) -> std::io::Result<String> {
    request(addr, &Json::obj().with("cmd", "shutdown").to_compact())
}

/// Subscribes to diff events, invoking `on_event` with each event line
/// until the daemon closes the stream or `max_events` lines arrived.
pub fn watch(
    addr: &str,
    max_events: Option<usize>,
    on_event: impl FnMut(&str),
) -> std::io::Result<()> {
    watch_ready(addr, max_events, |_| {}, on_event)
}

/// [`watch`], surfacing the daemon's subscription acknowledgment:
/// `on_ready` receives the ack line (`{"ok":true,"subscribed":true}`)
/// before any event can arrive. The daemon sends the ack under its
/// broadcast lock *before* registering the subscriber, so once a caller
/// has seen it, no subsequent edit round's event can be missed — the
/// synchronization point the CI serve gate waits on instead of sleeping.
pub fn watch_ready(
    addr: &str,
    max_events: Option<usize>,
    mut on_ready: impl FnMut(&str),
    mut on_event: impl FnMut(&str),
) -> std::io::Result<()> {
    let mut conn = Conn::connect(addr)?;
    let read = conn.try_clone()?;
    conn.write_all(format!("{}\n", Json::obj().with("cmd", "subscribe").to_compact()).as_bytes())?;
    conn.flush()?;
    let mut lines = BufReader::new(read).lines();
    // First line is the subscription ack, not an event.
    match lines.next() {
        Some(Ok(ack)) => on_ready(ack.trim_end()),
        Some(Err(e)) => return Err(e),
        None => return Ok(()),
    }
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        on_event(&line);
        seen += 1;
        if max_events.is_some_and(|m| seen >= m) {
            break;
        }
    }
    Ok(())
}
