//! Per-phase measurements — the columns of Tables 2 and 3.

use std::time::Duration;

/// Timing/size statistics of one analyzer run.
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Pre-analysis time (included in `dep` per the paper's accounting:
    /// "Dep includes times for pre-analysis and data dependency
    /// generation").
    pub pre_time: Duration,
    /// Dependency-generation time (def/use + reaching defs + bypass).
    /// Zero for the dense engines.
    pub dep_time: Duration,
    /// Fixpoint time (`Fix` column).
    pub fix_time: Duration,
    /// End-to-end time (`Total`).
    pub total_time: Duration,
    /// Peak RSS observed after the run, if the platform reports it.
    pub peak_mem_bytes: Option<u64>,
    /// Ascending-phase node evaluations.
    pub iterations: usize,
    /// Number of abstract locations (Table 1's `AbsLocs`).
    pub num_locs: usize,
    /// Average `|D̂(c)|` (Table 2/3 column).
    pub avg_defs: f64,
    /// Average `|Û(c)|`.
    pub avg_uses: f64,
    /// Dependency edges before the bypass optimization.
    pub dep_edges_raw: usize,
    /// Dependency edges actually used by the sparse engine.
    pub dep_edges: usize,
    /// Widening strategy the run used (`""` when unset).
    pub widening: &'static str,
    /// Whether the fixpoint ran out of its analysis budget and finished in
    /// degraded (sound but less precise) mode.
    pub degraded: bool,
}

impl AnalysisStats {
    /// `Dep` column: pre-analysis + dependency construction.
    pub fn dep_phase(&self) -> Duration {
        self.pre_time + self.dep_time
    }
}
