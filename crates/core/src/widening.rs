//! Widening strategies for the fixpoint engines.
//!
//! Naive interval widening is *order-sensitive* at dependency-cycle heads:
//! when a cycle head's input arrives piecemeal over several worklist steps
//! (as it does through §5 relay chains with bypassing off), each partial
//! join looks like a "still growing" bound and naive widening extrapolates
//! it to ±∞ — while the bypassed run, receiving the full join at once,
//! stabilizes finitely. The strategies here restore order-independence:
//!
//! * **Threshold widening** clamps a moving bound to the nearest harvested
//!   program constant (guards, array sizes, allocation sites) before
//!   escaping to ±∞ — see [`sga_cfront::thresholds`].
//! * **Delayed widening** performs the first `delay` *changing* joins at a
//!   cycle head as plain joins; only counting changed updates means the
//!   transient partial-join steps are absorbed and both evaluation orders
//!   enter actual widening with the same accumulated state.
//!
//! Both apply only at the already-identified real (non-relay) cycle heads
//! (`DataDeps::cycle_nodes` sparse-side, `Icfg::widen_points` dense-side);
//! everywhere else plain join keeps full precision.

use sga_domains::Thresholds;
use sga_ir::Program;

/// Which widening strategy a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WideningStrategy {
    /// Plain interval widening: any moving bound escapes to ±∞ immediately.
    Naive,
    /// Clamp moving bounds to harvested program constants before escaping.
    Threshold,
    /// Threshold widening plus `delay` plain joins at each cycle head
    /// before widening kicks in. The default.
    #[default]
    Delayed,
}

impl WideningStrategy {
    /// Parses a `--widening` argument value.
    pub fn parse(s: &str) -> Option<WideningStrategy> {
        match s {
            "naive" => Some(WideningStrategy::Naive),
            "threshold" => Some(WideningStrategy::Threshold),
            "delayed" => Some(WideningStrategy::Delayed),
            _ => None,
        }
    }

    /// The canonical CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            WideningStrategy::Naive => "naive",
            WideningStrategy::Threshold => "threshold",
            WideningStrategy::Delayed => "delayed",
        }
    }
}

/// Number of plain joins a `Delayed` run performs at each cycle head before
/// widening. Two steps absorb the partial-join transients relay chains
/// introduce (each relay hop contributes at most one extra changing update
/// per ascending pass) while keeping convergence fast.
pub const DEFAULT_DELAY: u32 = 2;

/// Analysis-level widening configuration, threaded from the CLI through
/// `AnalyzeOptions` down to the engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct WideningConfig {
    /// The strategy.
    pub strategy: WideningStrategy,
}

impl WideningConfig {
    /// Configuration for a named strategy.
    pub fn of(strategy: WideningStrategy) -> WideningConfig {
        WideningConfig { strategy }
    }

    /// The naive (pre-strategy-layer) behavior.
    pub fn naive() -> WideningConfig {
        WideningConfig::of(WideningStrategy::Naive)
    }
}

/// A widening configuration *resolved against a program*: the harvested
/// threshold set plus the join delay, ready for the engines to consume.
#[derive(Clone, Debug, Default)]
pub struct WideningPlan {
    /// Plain joins to perform at each cycle head before widening.
    pub delay: u32,
    /// Threshold set (empty ⇒ naive bound escape).
    pub thresholds: Thresholds,
}

impl WideningPlan {
    /// The plan equivalent to the engines' historical behavior: widen on
    /// the first change, no thresholds.
    pub fn naive() -> WideningPlan {
        WideningPlan::default()
    }

    /// Resolves `config` against `program`, harvesting thresholds when the
    /// strategy calls for them.
    pub fn for_program(program: &Program, config: WideningConfig) -> WideningPlan {
        match config.strategy {
            WideningStrategy::Naive => WideningPlan::naive(),
            WideningStrategy::Threshold => WideningPlan {
                delay: 0,
                thresholds: Thresholds::new(sga_cfront::thresholds::harvest(program)),
            },
            WideningStrategy::Delayed => WideningPlan {
                delay: DEFAULT_DELAY,
                thresholds: Thresholds::new(sga_cfront::thresholds::harvest(program)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for s in [
            WideningStrategy::Naive,
            WideningStrategy::Threshold,
            WideningStrategy::Delayed,
        ] {
            assert_eq!(WideningStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(WideningStrategy::parse("bogus"), None);
    }

    #[test]
    fn default_is_delayed() {
        assert_eq!(
            WideningConfig::default().strategy,
            WideningStrategy::Delayed
        );
    }

    #[test]
    fn plans_resolve_per_strategy() {
        let program =
            sga_cfront::parse("int main() { int i = 0; while (i < 10) { i = i + 1; } return i; }")
                .expect("valid source");
        let naive = WideningPlan::for_program(&program, WideningConfig::naive());
        assert_eq!(naive.delay, 0);
        assert!(naive.thresholds.is_empty());
        let th =
            WideningPlan::for_program(&program, WideningConfig::of(WideningStrategy::Threshold));
        assert_eq!(th.delay, 0);
        assert!(th.thresholds.clamp_hi(10) == Some(10));
        let delayed =
            WideningPlan::for_program(&program, WideningConfig::of(WideningStrategy::Delayed));
        assert_eq!(delayed.delay, DEFAULT_DELAY);
        assert!(!delayed.thresholds.is_empty());
    }
}
