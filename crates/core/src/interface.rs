//! Per-function link interfaces and the reverse cross-unit dependency
//! summary — the invalidation substrate of the incremental daemon.
//!
//! Every translation unit is analyzed standalone: a call to a function the
//! unit does not define resolves to an *external* procedure whose effect is
//! havoc (§6). But in a multi-unit corpus those external symbols are how
//! units depend on one another at link level: if `app.c` calls `helper`
//! and `lib.c` defines it, then a change to `helper`'s caller-visible
//! behavior is exactly what could oblige `app.c` to be re-analyzed.
//!
//! This module exports that boundary:
//!
//! * each *defined* procedure's [`ProcInterface`] — its name, arity, and a
//!   content hash over its exported access summary (the caller-visible
//!   D̂/Û sets of §5). A body edit that leaves the summary intact leaves
//!   the hash intact; a signature or summary change flips it;
//! * each *imported* (external) symbol's [`ImportRef`] — which of the
//!   unit's own procedures transitively depend on it (the per-unit reverse
//!   dependency summary);
//! * [`reverse_dependents`] — the cross-unit join: for every function
//!   symbol, the units (and the procedures inside them) whose analysis
//!   referenced it.
//!
//! The granularity follows *Symbol-Specific Sparsification* (Karakaya &
//! Bodden): per-symbol, not whole-corpus — a unit is invalidated only when
//! a symbol it actually imports changes interface, never merely because a
//! sibling file was touched.

use crate::defuse::DefUse;
use crate::preanalysis::PreAnalysis;
use sga_ir::{ProcId, Program};
use sga_utils::{fxhash, Idx};
use std::collections::BTreeMap;

/// The caller-visible interface of one defined procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcInterface {
    /// Source-level function name — the link symbol.
    pub name: String,
    /// Number of formal parameters (a signature edit flips the hash even
    /// when the access summary happens to survive it).
    pub arity: usize,
    /// Content hash over `(name, arity, exported defs, exported uses)`.
    /// Two interfaces with equal hashes are interchangeable to callers as
    /// far as the sparse def/use machinery is concerned.
    pub hash: u64,
}

/// One imported (external) symbol and the defined procedures that
/// transitively reach a call to it — the unit-local reverse slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportRef {
    /// The external function's name.
    pub symbol: String,
    /// Arity at the declaration the frontend synthesized.
    pub arity: usize,
    /// Defined procedures whose call cone includes the symbol, sorted.
    pub dependents: Vec<String>,
}

/// The link boundary of one translation unit.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UnitInterface {
    /// Defined procedures, sorted by name.
    pub exports: Vec<ProcInterface>,
    /// External symbols referenced, sorted by name.
    pub imports: Vec<ImportRef>,
}

impl UnitInterface {
    /// The export with the given symbol, if the unit defines it.
    pub fn export(&self, symbol: &str) -> Option<&ProcInterface> {
        self.exports
            .binary_search_by(|e| e.name.as_str().cmp(symbol))
            .ok()
            .map(|i| &self.exports[i])
    }

    /// Whether the unit references `symbol` as an external function.
    pub fn imports_symbol(&self, symbol: &str) -> bool {
        self.imports
            .binary_search_by(|i| i.symbol.as_str().cmp(symbol))
            .is_ok()
    }

    /// Symbols exported here whose interface differs from `old` — added,
    /// removed, or hash-changed. Sorted and deduplicated: this is the set
    /// of symbols whose cross-unit dependents must be invalidated when the
    /// unit transitions from `old` to `self`.
    pub fn changed_exports(&self, old: &UnitInterface) -> Vec<String> {
        let mut changed = Vec::new();
        let (mut a, mut b) = (
            self.exports.iter().peekable(),
            old.exports.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => match x.name.cmp(&y.name) {
                    std::cmp::Ordering::Equal => {
                        if x.hash != y.hash {
                            changed.push(x.name.clone());
                        }
                        a.next();
                        b.next();
                    }
                    std::cmp::Ordering::Less => {
                        changed.push(a.next().unwrap().name.clone());
                    }
                    std::cmp::Ordering::Greater => {
                        changed.push(b.next().unwrap().name.clone());
                    }
                },
                (Some(_), None) => changed.push(a.next().unwrap().name.clone()),
                (None, Some(_)) => changed.push(b.next().unwrap().name.clone()),
                (None, None) => break,
            }
        }
        changed
    }
}

/// Computes the link interface of one analyzed unit from the pre-analysis
/// call graph and the def/use summaries the sparse engine already built.
pub fn unit_interface(program: &Program, pre: &PreAnalysis, du: &DefUse) -> UnitInterface {
    // Which defined procedures (transitively) reach each external symbol:
    // walk the call graph once, propagating reachability bottom-up is
    // overkill for the sizes at hand — a per-proc DFS is plenty and keeps
    // the code obvious.
    let mut exports = Vec::new();
    let mut imports: BTreeMap<String, (usize, Vec<String>)> = BTreeMap::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        let summary = |locs: &[sga_domains::AbsLoc]| -> Vec<String> {
            locs.iter().map(|l| format!("{l:?}")).collect()
        };
        let defs = summary(&du.summary_defs[pid]);
        let uses = summary(&du.summary_uses[pid]);
        exports.push(ProcInterface {
            name: proc.name.clone(),
            arity: proc.params.len(),
            hash: fxhash::hash_one(&(&proc.name, proc.params.len(), defs, uses)),
        });
        for ext in reachable_externals(program, pre, pid) {
            let e = &program.procs[ext];
            let entry = imports
                .entry(e.name.clone())
                .or_insert_with(|| (e.params.len(), Vec::new()));
            entry.1.push(proc.name.clone());
        }
    }
    exports.sort_by(|a, b| a.name.cmp(&b.name));
    let imports = imports
        .into_iter()
        .map(|(symbol, (arity, mut dependents))| {
            dependents.sort();
            dependents.dedup();
            ImportRef {
                symbol,
                arity,
                dependents,
            }
        })
        .collect();
    UnitInterface { exports, imports }
}

/// External procedures reachable from `start` through the call graph
/// (including direct calls), deduplicated, in `ProcId` order.
fn reachable_externals(program: &Program, pre: &PreAnalysis, start: ProcId) -> Vec<ProcId> {
    let n = program.procs.len();
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start.index()] = true;
    let mut externals = Vec::new();
    while let Some(p) = stack.pop() {
        for &q in &pre.callgraph.callees[p] {
            if seen[q.index()] {
                continue;
            }
            seen[q.index()] = true;
            if program.procs[q].is_external {
                externals.push(q);
            } else {
                stack.push(q);
            }
        }
    }
    externals.sort();
    externals
}

/// Joins per-unit interfaces into the corpus-wide reverse dependency
/// summary: for every function symbol, the `(unit, procedure)` pairs whose
/// analysis imported it. Units that *define* a symbol are not listed under
/// it (their dependence on their own body is what re-analyzing the edited
/// unit itself covers).
pub fn reverse_dependents<'a>(
    units: impl IntoIterator<Item = (&'a str, &'a UnitInterface)>,
) -> BTreeMap<String, Vec<(String, String)>> {
    let mut rev: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for (unit, iface) in units {
        for import in &iface.imports {
            let slot = rev.entry(import.symbol.clone()).or_default();
            for dep in &import.dependents {
                slot.push((unit.to_string(), dep.clone()));
            }
        }
    }
    for deps in rev.values_mut() {
        deps.sort();
        deps.dedup();
    }
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{defuse, preanalysis};

    fn interface_of(src: &str) -> UnitInterface {
        let program = sga_cfront::parse(src).expect("parses");
        let pre = preanalysis::run(&program);
        let du = defuse::compute(&program, &pre);
        unit_interface(&program, &pre, &du)
    }

    const LIB: &str = "int g; int helper(int x) { g = x; return x + 1; } \
                       int main() { return helper(1); }";

    #[test]
    fn exports_cover_defined_procs_only() {
        let iface = interface_of(LIB);
        let names: Vec<&str> = iface.exports.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["helper", "main"]);
        assert!(iface.imports.is_empty());
    }

    #[test]
    fn body_edit_preserves_hash_signature_edit_flips_it() {
        let base = interface_of(LIB);
        // Constant tweak: same defs/uses, same arity — same interface.
        let tweaked = interface_of(
            "int g; int helper(int x) { g = x; return x + 2; } \
             int main() { return helper(1); }",
        );
        assert_eq!(
            base.export("helper").unwrap().hash,
            tweaked.export("helper").unwrap().hash
        );
        assert!(tweaked.changed_exports(&base).is_empty());

        // Arity change: hash must flip even though the summary survives.
        let widened = interface_of(
            "int g; int helper(int x, int y) { g = x; return x + 1; } \
             int main() { return helper(1, 2); }",
        );
        assert_ne!(
            base.export("helper").unwrap().hash,
            widened.export("helper").unwrap().hash
        );
        assert_eq!(widened.changed_exports(&base), ["helper"]);

        // Summary change: defining a new global is caller-visible.
        let effectful = interface_of(
            "int g; int h2; int helper(int x) { g = x; h2 = x; return x + 1; } \
             int main() { return helper(1); }",
        );
        assert_ne!(
            base.export("helper").unwrap().hash,
            effectful.export("helper").unwrap().hash
        );
    }

    #[test]
    fn imports_carry_reverse_dependents() {
        let iface = interface_of(
            "int mid(int x) { return helper(x); } \
             int main() { return mid(3); }",
        );
        assert_eq!(iface.imports.len(), 1);
        let import = &iface.imports[0];
        assert_eq!(import.symbol, "helper");
        // Both mid (direct) and main (transitive) depend on the import.
        assert_eq!(import.dependents, ["main", "mid"]);
        assert!(iface.imports_symbol("helper"));
        assert!(!iface.imports_symbol("mid"));
    }

    #[test]
    fn changed_exports_sees_additions_and_removals() {
        let one = interface_of("int main() { return 0; }");
        let two = interface_of("int f() { return 1; } int main() { return 0; }");
        assert_eq!(two.changed_exports(&one), ["f"]);
        assert_eq!(one.changed_exports(&two), ["f"]);
    }

    #[test]
    fn reverse_dependents_joins_across_units() {
        let lib = interface_of(LIB);
        let app = interface_of("int main() { return helper(7); }");
        let rev = reverse_dependents([("lib.c", &lib), ("app.c", &app)]);
        assert_eq!(
            rev.get("helper").map(Vec::as_slice),
            Some(&[("app.c".to_string(), "main".to_string())][..])
        );
    }
}
