//! Dependency-store backends for the sparse solver.
//!
//! The §5 dependency relation is a set of triples `(c_from, c_to, l)`, but
//! *how* the solver walks it dominates the fixpoint's constant factor: edge
//! gathering and target requeuing are the inner loop of everything built on
//! the sparse engine. [`crate::sparse::solve_with`] therefore consumes the
//! relation through the [`DepStore`] trait, which couples edge access with
//! worklist construction, and two backends implement it:
//!
//! * [`DataDeps`] — the faithful representation family the repo started
//!   with: hash-map adjacency (the §5 "set store", with the `sga-bdd` BDD
//!   relation as its ablation twin), iterated through a `BTreeSet` priority
//!   worklist keyed on `(topo rank, ICFG priority, point)`;
//! * [`CsrDeps`] — the tuned layout: compressed-sparse-row adjacency over
//!   the program's dense [`PointNumbering`], cycle membership as a bitset,
//!   and a flat topologically-ordered worklist (a pending bitset plus a
//!   backward-resettable cursor over precomputed priority slots).
//!
//! **Equivalence invariant.** Both backends produce *byte-identical*
//! results. The delayed-widening counter makes the fixpoint sensitive to
//! pop order, so the flat worklist is built to pop exactly the point the
//! `BTreeSet` would: its slots are the sorted positions of the same total
//! order `((topo_rank, icfg_priority), cp)`, a pending bit stands for set
//! membership, and the cursor scan returns the minimum pending slot.
//! `ci.sh backend-gate` and the backend fuzz property in
//! `tests/fuzz_pipeline.rs` enforce the invariant continuously.

use crate::depgen::DataDeps;
use crate::icfg::Icfg;
use sga_ir::{Cp, PointNumbering, Program};
use sga_utils::{BitSet, FxHashMap};
use std::collections::BTreeSet;
use std::fmt;

/// Which dependency representation the sparse solver iterates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DepBackend {
    /// The faithful §5 store family: hash-map adjacency with the BDD
    /// relation as its ablation twin, `BTreeSet` worklist.
    Bdd,
    /// CSR adjacency + flat topologically-ordered worklist (the default).
    #[default]
    Csr,
}

impl DepBackend {
    /// Parses a `--dep-backend` value.
    pub fn parse(s: &str) -> Option<DepBackend> {
        match s {
            "bdd" => Some(DepBackend::Bdd),
            "csr" => Some(DepBackend::Csr),
            _ => None,
        }
    }

    /// The CLI / report spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            DepBackend::Bdd => "bdd",
            DepBackend::Csr => "csr",
        }
    }
}

impl fmt::Display for DepBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A dependency representation the sparse solver can iterate: per-point
/// edge rows plus the worklist that orders their evaluation.
pub trait DepStore {
    /// Incoming ordinary dependencies of `cp`, as `(loc id, from)` rows in
    /// ascending `(loc, from)` order.
    fn edges_into(&self, cp: Cp) -> &[(u32, Cp)];
    /// Incoming return-flow dependencies of `cp` (call sites only).
    fn edges_into_ret(&self, cp: Cp) -> &[(u32, Cp)];
    /// Outgoing dependencies of `cp`, as `(loc id, to)` rows.
    fn edges_out(&self, cp: Cp) -> &[(u32, Cp)];
    /// Whether `cp` lies on a dependency cycle (a widening point).
    fn is_cycle_node(&self, cp: Cp) -> bool;
    /// Size of the dense dependency-location id universe, when the store
    /// tracks one. A `Some` lets the solver memoize per-location change
    /// tests in bitsets instead of re-comparing per edge.
    fn loc_universe(&self) -> Option<usize> {
        None
    }
    /// Builds this store's (empty) worklist; the solver seeds it.
    fn make_worklist<'a>(&'a self, icfg: &Icfg, all_points: &[Cp]) -> Box<dyn Worklist + 'a>;
}

/// A sparse-solver worklist. `pop` must return the pending point that is
/// minimal in `((topo_rank, icfg_priority), cp)` order — the fixpoint's
/// delayed-widening counts depend on it, so every implementation must agree
/// or the backends drift apart.
pub trait Worklist {
    /// Marks `cp` pending (idempotent).
    fn push(&mut self, cp: Cp);
    /// Removes and returns the minimal pending point.
    fn pop(&mut self) -> Option<Cp>;
}

// ---------------------------------------------------------------------------
// Faithful backend: DataDeps + BTreeSet worklist
// ---------------------------------------------------------------------------

impl DepStore for DataDeps {
    fn edges_into(&self, cp: Cp) -> &[(u32, Cp)] {
        self.deps_into(cp)
    }

    fn edges_into_ret(&self, cp: Cp) -> &[(u32, Cp)] {
        self.deps_into_ret(cp)
    }

    fn edges_out(&self, cp: Cp) -> &[(u32, Cp)] {
        self.deps_out(cp)
    }

    fn is_cycle_node(&self, cp: Cp) -> bool {
        self.cycle_nodes.contains(&cp)
    }

    fn make_worklist<'a>(&'a self, icfg: &Icfg, all_points: &[Cp]) -> Box<dyn Worklist + 'a> {
        // Priority: dependency-graph topological rank (producers first),
        // with the ICFG priority as a deterministic tiebreak for nodes
        // outside the dependency graph.
        let mut prio = FxHashMap::default();
        for &cp in all_points {
            let rank = self.topo_rank.get(&cp).copied().unwrap_or(0);
            prio.insert(cp, (rank, icfg.priority[&cp]));
        }
        Box::new(BTreeWorklist {
            set: BTreeSet::new(),
            prio,
        })
    }
}

/// The original ordered worklist: a `BTreeSet` of `(priority, point)`.
struct BTreeWorklist {
    set: BTreeSet<((u32, u32), Cp)>,
    prio: FxHashMap<Cp, (u32, u32)>,
}

impl Worklist for BTreeWorklist {
    fn push(&mut self, cp: Cp) {
        self.set.insert((self.prio[&cp], cp));
    }

    fn pop(&mut self) -> Option<Cp> {
        let &(p, cp) = self.set.iter().next()?;
        self.set.remove(&(p, cp));
        Some(cp)
    }
}

// ---------------------------------------------------------------------------
// CSR backend
// ---------------------------------------------------------------------------

/// One CSR adjacency: `row(i)` is the edge slice of the point with dense
/// index `i`.
struct CsrEdges {
    offsets: Vec<u32>,
    edges: Vec<(u32, Cp)>,
}

impl CsrEdges {
    fn build(
        program: &Program,
        num: &PointNumbering,
        map: &FxHashMap<Cp, Vec<(u32, Cp)>>,
    ) -> CsrEdges {
        let mut offsets = Vec::with_capacity(num.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        // `all_points` enumerates procs then nodes in order — exactly the
        // dense numbering — so each row lands at its own index.
        for (i, cp) in program.all_points().enumerate() {
            debug_assert_eq!(num.index(cp), i);
            if let Some(row) = map.get(&cp) {
                edges.extend_from_slice(row);
            }
            offsets.push(edges.len() as u32);
        }
        CsrEdges { offsets, edges }
    }

    fn row(&self, i: usize) -> &[(u32, Cp)] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The CSR dependency store: [`DataDeps`] lowered onto the program's dense
/// point numbering. Edge rows keep the exact (sorted) order of the source
/// store, so gathers join values in the same sequence.
pub struct CsrDeps {
    num: PointNumbering,
    into: CsrEdges,
    into_ret: CsrEdges,
    out: CsrEdges,
    cycle: BitSet,
    /// Dense point index → flat-worklist slot; `u32::MAX` for points that
    /// are never queued (external procedures).
    slot_of: Vec<u32>,
    /// Inverse of `slot_of`: the point each slot stands for, in ascending
    /// `((topo_rank, icfg_priority), cp)` order.
    cp_by_slot: Vec<Cp>,
    /// One past the largest dependency-edge location id.
    num_locs: usize,
}

impl CsrDeps {
    /// Lowers `deps` into the CSR layout and precomputes the flat-worklist
    /// slot order.
    pub fn build(program: &Program, icfg: &Icfg, deps: &DataDeps) -> CsrDeps {
        let num = program.point_numbering();
        let into = CsrEdges::build(program, &num, &deps.into);
        let into_ret = CsrEdges::build(program, &num, &deps.into_ret);
        let out = CsrEdges::build(program, &num, &deps.out);
        let num_locs = [&into, &into_ret, &out]
            .iter()
            .flat_map(|e| e.edges.iter().map(|&(loc, _)| loc as usize + 1))
            .max()
            .unwrap_or(0);

        let mut cycle = BitSet::new(num.len());
        for &cp in &deps.cycle_nodes {
            cycle.insert(num.index(cp));
        }

        let mut order: Vec<Cp> = program
            .all_points()
            .filter(|cp| !program.procs[cp.proc].is_external)
            .collect();
        order.sort_unstable_by_key(|&cp| {
            let rank = deps.topo_rank.get(&cp).copied().unwrap_or(0);
            ((rank, icfg.priority[&cp]), cp)
        });
        let mut slot_of = vec![u32::MAX; num.len()];
        for (slot, &cp) in order.iter().enumerate() {
            slot_of[num.index(cp)] = slot as u32;
        }

        CsrDeps {
            num,
            into,
            into_ret,
            out,
            cycle,
            slot_of,
            cp_by_slot: order,
            num_locs,
        }
    }

    /// All `(from, loc, to)` triples, in dense-point then row order.
    pub fn iter(&self) -> impl Iterator<Item = (Cp, u32, Cp)> + '_ {
        (0..self.num.len()).flat_map(move |i| {
            let from = self.num.cp(i);
            self.out
                .row(i)
                .iter()
                .map(move |&(loc, to)| (from, loc, to))
        })
    }
}

impl DepStore for CsrDeps {
    fn edges_into(&self, cp: Cp) -> &[(u32, Cp)] {
        self.into.row(self.num.index(cp))
    }

    fn edges_into_ret(&self, cp: Cp) -> &[(u32, Cp)] {
        self.into_ret.row(self.num.index(cp))
    }

    fn edges_out(&self, cp: Cp) -> &[(u32, Cp)] {
        self.out.row(self.num.index(cp))
    }

    fn is_cycle_node(&self, cp: Cp) -> bool {
        self.cycle.contains(self.num.index(cp))
    }

    fn loc_universe(&self) -> Option<usize> {
        Some(self.num_locs)
    }

    fn make_worklist<'a>(&'a self, _icfg: &Icfg, _all_points: &[Cp]) -> Box<dyn Worklist + 'a> {
        Box::new(FlatWorklist {
            deps: self,
            pending: BitSet::new(self.cp_by_slot.len()),
            cursor: 0,
        })
    }
}

/// The flat worklist: pending bits over precomputed priority slots, popped
/// by a forward bit scan from a cursor that pushes can move backward.
struct FlatWorklist<'a> {
    deps: &'a CsrDeps,
    pending: BitSet,
    cursor: usize,
}

impl Worklist for FlatWorklist<'_> {
    fn push(&mut self, cp: Cp) {
        let slot = self.deps.slot_of[self.deps.num.index(cp)];
        debug_assert_ne!(slot, u32::MAX, "queued external point {cp:?}");
        let slot = slot as usize;
        self.pending.insert(slot);
        if slot < self.cursor {
            self.cursor = slot;
        }
    }

    fn pop(&mut self) -> Option<Cp> {
        let slot = self.pending.next_set_from(self.cursor)?;
        self.pending.remove(slot);
        self.cursor = slot;
        Some(self.deps.cp_by_slot[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{defuse, depgen, preanalysis};
    use proptest::prelude::*;
    use sga_cfront::parse;

    const LOOPY: &str = r#"
        int g;
        int helper(int x) {
            int y;
            y = x + 1;
            g = g + y;
            return y;
        }
        int main() {
            int i;
            i = 0;
            while (i < 10) {
                i = helper(i);
            }
            return g;
        }
    "#;

    fn build_both(src: &str) -> (sga_ir::Program, Icfg, DataDeps) {
        let program = parse(src).unwrap();
        let pre = preanalysis::run(&program);
        let icfg = Icfg::build(&program, &pre);
        let du = defuse::compute(&program, &pre);
        let deps = depgen::generate(&program, &pre, &du, depgen::DepGenOptions::default());
        (program, icfg, deps)
    }

    #[test]
    fn csr_rows_match_datadeps() {
        let (program, icfg, deps) = build_both(LOOPY);
        let csr = CsrDeps::build(&program, &icfg, &deps);
        for cp in program.all_points() {
            assert_eq!(
                csr.edges_into(cp),
                deps.deps_into(cp),
                "into rows at {cp:?}"
            );
            assert_eq!(
                csr.edges_into_ret(cp),
                deps.deps_into_ret(cp),
                "into_ret rows at {cp:?}"
            );
            assert_eq!(csr.edges_out(cp), deps.deps_out(cp), "out rows at {cp:?}");
            assert_eq!(
                csr.is_cycle_node(cp),
                deps.cycle_nodes.contains(&cp),
                "cycle bit at {cp:?}"
            );
        }
        let mut a: Vec<_> = csr.iter().collect();
        let mut b: Vec<_> = deps.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "triple sets");
    }

    #[test]
    fn backend_parse_roundtrip() {
        for b in [DepBackend::Bdd, DepBackend::Csr] {
            assert_eq!(DepBackend::parse(b.as_str()), Some(b));
        }
        assert_eq!(DepBackend::parse("hash"), None);
        assert_eq!(DepBackend::default(), DepBackend::Csr);
    }

    proptest! {
        /// The flat worklist and the BTreeSet worklist agree on every pop
        /// under an arbitrary interleaving of pushes and pops.
        #[test]
        fn worklists_pop_identically(ops in prop::collection::vec((0usize..64, any::<bool>()), 1..80)) {
            let (program, icfg, deps) = build_both(LOOPY);
            let csr = CsrDeps::build(&program, &icfg, &deps);
            let all_points: Vec<Cp> = program
                .all_points()
                .filter(|cp| !program.procs[cp.proc].is_external)
                .collect();
            let mut a = deps.make_worklist(&icfg, &all_points);
            let mut b = csr.make_worklist(&icfg, &all_points);
            for (i, push) in ops {
                if push {
                    let cp = all_points[i % all_points.len()];
                    a.push(cp);
                    b.push(cp);
                } else {
                    prop_assert_eq!(a.pop(), b.pop());
                }
            }
            loop {
                let (x, y) = (a.pop(), b.pop());
                prop_assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }
}
