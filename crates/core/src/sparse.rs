//! The sparse fixpoint engine (§2.7).
//!
//! Computes `lfp F̂_s` where
//! `F̂_s(X)(c) = f̂_c(⊔ { X(c_d)|ₗ : c_d →l c })` — values arrive along data
//! dependencies, not control flow. A point's stored state binds only its
//! `D̂(c)` locations, which is where the memory savings come from: the sum of
//! all sparse states is proportional to the number of definitions, not
//! `|C| × |L̂|`.
//!
//! Widening happens at the control points that participate in dependency
//! cycles (loop-carried definitions, recursion) — the sparse counterpart of
//! the dense engine's WTO heads.

use crate::budget::Budget;
use crate::depgen::DataDeps;
use crate::depstore::{CsrDeps, DepBackend, DepStore};
use crate::icfg::Icfg;
use crate::widening::WideningPlan;
use sga_domains::lattice::Lattice;
use sga_ir::{Cp, Program};
use sga_utils::{BitSet, FxHashMap, PMap};
use std::fmt;
use std::hash::Hash;

/// The per-instance pieces of a sparse analysis.
pub trait SparseSpec {
    /// Abstract locations (interval: [`sga_domains::AbsLoc`]; octagon:
    /// variable packs).
    type L: Copy + Ord + Hash + fmt::Debug;
    /// Abstract values per location.
    type V: Lattice + fmt::Debug;

    /// Decodes a dependency-edge location id.
    fn loc_of(&self, id: u32) -> Self::L;

    /// The sparse node transfer: given the assembled input bindings
    /// (covering `Û(cp)`), produce the output bindings for `D̂(cp)`.
    ///
    /// `pre` holds values arriving over ordinary def→use dependencies;
    /// `ret` holds values returning from callee exits (non-empty only at
    /// call sites). Argument expressions must be evaluated against `pre`;
    /// relayed locations take `pre ⊔ ret`.
    fn transfer(
        &self,
        cp: Cp,
        pre: &PMap<Self::L, Self::V>,
        ret: &PMap<Self::L, Self::V>,
    ) -> PMap<Self::L, Self::V>;

    /// The state entering `main` (parameter seeds), as initial bindings for
    /// the main-entry point.
    fn initial(&self) -> PMap<Self::L, Self::V>;
}

/// Sparse analysis result: `D̂(c)`-restricted states per point.
#[derive(Debug)]
pub struct SparseResult<L: Copy + Ord, V: Clone> {
    /// Output bindings of every control point that holds any.
    pub values: FxHashMap<Cp, PMap<L, V>>,
    /// Node evaluations during the ascending phase.
    pub iterations: usize,
    /// Descending rounds executed.
    pub narrowing_rounds: usize,
    /// Whether the analysis budget ran out. A degraded result is still a
    /// sound post-fixpoint — the remaining ascent used immediate plain
    /// widening and the descending phase was skipped — but it is less
    /// precise than the unbounded fixpoint.
    pub degraded: bool,
}

impl<L: Copy + Ord, V: Clone + Lattice> SparseResult<L, V> {
    /// The value of `l` in `cp`'s output bindings (⊥ if absent).
    pub fn value(&self, cp: Cp, l: &L) -> V {
        self.values
            .get(&cp)
            .and_then(|m| m.get(l).cloned())
            .unwrap_or_else(V::bottom)
    }
}

/// Runs the sparse analysis with the naive widening plan (widen on first
/// change, no thresholds). See [`solve_with`].
pub fn solve<S: SparseSpec>(
    program: &Program,
    icfg: &Icfg,
    deps: &DataDeps,
    spec: &S,
) -> SparseResult<S::L, S::V> {
    solve_with(
        program,
        icfg,
        deps,
        spec,
        &WideningPlan::naive(),
        &Budget::unbounded(),
    )
}

/// Runs the sparse analysis to its (narrowed) fixpoint.
///
/// `icfg` supplies worklist priorities (shared with the dense engines so
/// iteration orders are comparable); `deps` supplies edges and widening
/// points; `plan` selects the widening strategy: the first `plan.delay`
/// *changing* updates at each cycle head are plain joins (absorbing the
/// partial joins that trickle in through relay chains), after which
/// threshold widening (`widen_with`) takes over.
///
/// `budget` bounds the ascending phase. On exhaustion the solve *degrades
/// soundly*: every further cycle-head update applies the plain widening
/// operator immediately (no delay, no thresholds — still-moving bounds
/// escape to ±∞ in one step), the ascent runs to quiescence, and the
/// descending phase is skipped. The returned post-fixpoint over-approximates
/// the unbounded one and `degraded` is set.
///
/// # Panics
///
/// Panics if the ascending phase exceeds its internal iteration backstop
/// even after degradation (a widening bug).
pub fn solve_with<S: SparseSpec, D: DepStore + ?Sized>(
    program: &Program,
    icfg: &Icfg,
    deps: &D,
    spec: &S,
    plan: &WideningPlan,
    budget: &Budget,
) -> SparseResult<S::L, S::V> {
    let main_entry = Cp::new(program.main, program.procs[program.main].entry);
    let mut values: FxHashMap<Cp, PMap<S::L, S::V>> = FxHashMap::default();
    let all_points: Vec<Cp> = program
        .all_points()
        .filter(|cp| !program.procs[cp.proc].is_external)
        .collect();
    // The backend supplies the worklist; every implementation pops the
    // pending point minimal in ((topo rank, ICFG priority), cp) order, so
    // the fixpoint trajectory is backend-independent.
    let mut worklist = deps.make_worklist(icfg, &all_points);
    for &cp in &all_points {
        worklist.push(cp);
    }
    // Per-location change memoization: with a dense location-id universe
    // (the CSR backend) the old-vs-new comparison runs once per distinct
    // location instead of once per out-edge; the requeued target set is
    // identical either way.
    let mut loc_scratch = deps
        .loc_universe()
        .map(|n| (BitSet::new(n), BitSet::new(n), Vec::<u32>::new()));

    let gather = |values: &FxHashMap<Cp, PMap<S::L, S::V>>,
                  edges: &[(u32, Cp)],
                  mut acc: PMap<S::L, S::V>|
     -> PMap<S::L, S::V> {
        for &(loc_id, from) in edges {
            let l = spec.loc_of(loc_id);
            if let Some(v) = values.get(&from).and_then(|m| m.get(&l)) {
                let joined = match acc.get(&l) {
                    Some(old) => old.join(v),
                    None => v.clone(),
                };
                acc = acc.insert(l, joined);
            }
        }
        acc
    };
    type InPair<S> = (
        PMap<<S as SparseSpec>::L, <S as SparseSpec>::V>,
        PMap<<S as SparseSpec>::L, <S as SparseSpec>::V>,
    );
    let assemble = |values: &FxHashMap<Cp, PMap<S::L, S::V>>, cp: Cp| -> InPair<S> {
        let seed: PMap<S::L, S::V> = if cp == main_entry {
            spec.initial()
        } else {
            PMap::new()
        };
        let pre = gather(values, deps.edges_into(cp), seed);
        let ret = gather(values, deps.edges_into_ret(cp), PMap::new());
        (pre, ret)
    };

    let widen_map = |old: &PMap<S::L, S::V>, new: &PMap<S::L, S::V>| -> PMap<S::L, S::V> {
        old.union_with(new, |_, o, n| o.widen_with(n, &plan.thresholds))
    };
    let join_map = |old: &PMap<S::L, S::V>, new: &PMap<S::L, S::V>| -> PMap<S::L, S::V> {
        old.union_with(new, |_, o, n| o.join(n))
    };
    let narrow_map = |old: &PMap<S::L, S::V>, new: &PMap<S::L, S::V>| -> PMap<S::L, S::V> {
        // Narrow entries present in both; entries only in `old` keep their
        // value; entries only in `new` are fresh information. Threshold
        // widening can overshoot finitely (the clamp lands above the exact
        // bound, and `narrow` refines only infinite bounds), so under a
        // threshold plan a candidate below the stored value is accepted
        // outright — a descending-iteration step, still bounded by the
        // per-point cap and sound because every candidate re-applies the
        // transfer to a post-fixpoint.
        old.union_with(new, |_, o, n| {
            if !plan.thresholds.is_empty() && n.le(o) {
                n.clone()
            } else {
                o.narrow(n)
            }
        })
    };

    let backstop = 2000usize.saturating_mul(all_points.len()).max(100_000);
    let mut iterations = 0usize;
    let mut meter = budget.start();
    let mut degraded = false;
    // Changing updates seen per cycle head, for delayed widening. Counting
    // only *changed* joins makes the count independent of how many no-op
    // requeues the evaluation order produces.
    let mut widen_delay: FxHashMap<Cp, u32> = FxHashMap::default();
    while let Some(cp) = worklist.pop() {
        iterations += 1;
        assert!(
            iterations <= backstop,
            "sparse fixpoint exceeded {backstop} iterations: widening failure at {cp}"
        );
        degraded |= meter.step();
        let (pre, ret) = assemble(&values, cp);
        let mut out = spec.transfer(cp, &pre, &ret);
        let old = values.get(&cp);
        if deps.is_cycle_node(cp) {
            if let Some(old) = old {
                let joined = join_map(old, &out);
                if joined == *old {
                    out = joined;
                } else if degraded {
                    // Over budget: widen immediately with the plain operator
                    // so every still-rising chain stabilizes in one step.
                    out = old.union_with(&out, |_, o, n| o.widen(n));
                } else {
                    let seen = widen_delay.entry(cp).or_insert(0);
                    if *seen < plan.delay {
                        *seen += 1;
                        out = joined;
                    } else {
                        out = widen_map(old, &out);
                    }
                }
            }
        }
        if old != Some(&out) {
            // Requeue only dependency targets whose location changed.
            match &mut loc_scratch {
                Some((touched, changed, dirty)) => {
                    for &id in dirty.iter() {
                        touched.remove(id as usize);
                        changed.remove(id as usize);
                    }
                    dirty.clear();
                    for &(loc_id, to) in deps.edges_out(cp) {
                        let li = loc_id as usize;
                        if !touched.contains(li) {
                            touched.insert(li);
                            dirty.push(loc_id);
                            let l = spec.loc_of(loc_id);
                            if old.and_then(|m| m.get(&l)) != out.get(&l) {
                                changed.insert(li);
                            }
                        }
                        if changed.contains(li) {
                            worklist.push(to);
                        }
                    }
                }
                None => {
                    for &(loc_id, to) in deps.edges_out(cp) {
                        let l = spec.loc_of(loc_id);
                        if old.and_then(|m| m.get(&l)) != out.get(&l) {
                            worklist.push(to);
                        }
                    }
                }
            }
            values.insert(cp, out);
        }
    }

    // Descending (narrowing) phase: change-driven, like the ascending
    // phase, with a per-point evaluation cap to bound descent. Skipped
    // entirely when the budget ran out: the ascending result is already a
    // post-fixpoint, and descending work is exactly the precision-chasing
    // the budget said we cannot afford.
    const MAX_DESCENDS_PER_POINT: u8 = 4;
    let mut narrowing_rounds = 0usize;
    let mut desc_count: FxHashMap<Cp, u8> = FxHashMap::default();
    if !degraded {
        for &cp in &all_points {
            worklist.push(cp);
        }
    }
    while let Some(cp) = worklist.pop() {
        let count = desc_count.entry(cp).or_insert(0);
        if *count >= MAX_DESCENDS_PER_POINT {
            continue;
        }
        *count += 1;
        narrowing_rounds += 1;
        let (pre, ret) = assemble(&values, cp);
        let candidate = spec.transfer(cp, &pre, &ret);
        let new_out = match values.get(&cp) {
            Some(old) if deps.is_cycle_node(cp) => narrow_map(old, &candidate),
            _ => candidate,
        };
        if values.get(&cp) != Some(&new_out) {
            let old = values.get(&cp);
            match &mut loc_scratch {
                Some((touched, changed, dirty)) => {
                    for &id in dirty.iter() {
                        touched.remove(id as usize);
                        changed.remove(id as usize);
                    }
                    dirty.clear();
                    for &(loc_id, to) in deps.edges_out(cp) {
                        let li = loc_id as usize;
                        if !touched.contains(li) {
                            touched.insert(li);
                            dirty.push(loc_id);
                            let l = spec.loc_of(loc_id);
                            if old.and_then(|m| m.get(&l)) != new_out.get(&l) {
                                changed.insert(li);
                            }
                        }
                        if changed.contains(li) {
                            worklist.push(to);
                        }
                    }
                }
                None => {
                    for &(loc_id, to) in deps.edges_out(cp) {
                        let l = spec.loc_of(loc_id);
                        if old.and_then(|m| m.get(&l)) != new_out.get(&l) {
                            worklist.push(to);
                        }
                    }
                }
            }
            values.insert(cp, new_out);
        }
    }

    SparseResult {
        values,
        iterations,
        narrowing_rounds,
        degraded,
    }
}

/// Runs [`solve_with`] through the representation `backend` selects:
/// `Bdd` iterates `deps` directly (the faithful set/BDD store family),
/// `Csr` first lowers it to the CSR layout ([`CsrDeps`]). Results are
/// byte-identical by the equivalence invariant in [`crate::depstore`].
pub fn solve_backend<S: SparseSpec>(
    backend: DepBackend,
    program: &Program,
    icfg: &Icfg,
    deps: &DataDeps,
    spec: &S,
    plan: &WideningPlan,
    budget: &Budget,
) -> SparseResult<S::L, S::V> {
    match backend {
        DepBackend::Bdd => solve_with(program, icfg, deps, spec, plan, budget),
        DepBackend::Csr => {
            let csr = CsrDeps::build(program, icfg, deps);
            solve_with(program, icfg, &csr, spec, plan, budget)
        }
    }
}
