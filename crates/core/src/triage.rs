//! Alarm triage: discharging interval alarms with the packed relational
//! analysis of §4 (octagon layer) and with dominating-guard path
//! conditions (path layer), selectable via [`TriageMode`].
//!
//! The interval checkers ([`crate::checker`]) over-approximate each
//! variable in isolation, so loop-bounded accesses like
//! `while (i < n) buf[i] = …` (with `buf = malloc(n)`) alarm even though
//! `i < n` always holds at the access. The packed octagon domain *does*
//! track `i − n ≤ −1`, so the octagon pass re-examines every **possible**
//! (open, non-definite) alarm against an octagon run and demotes the ones
//! whose error condition is relationally refuted to
//! [`Status::Discharged`].
//!
//! The path layer ([`crate::pathcond`]) is orthogonal: instead of refuting
//! the error *condition* it refutes the error *point*. For each remaining
//! possible alarm it collects the chain of `assume` guards dominating the
//! alarm (with the branch polarity actually taken) and discharges when
//! the guard conjunction is infeasible under sound interval evaluation —
//! either a single dominating guard can never hold on its own inputs, or
//! the conjunction of write-free ("stable") dominating guards refines
//! some variable to ⊥. Discharges carry the `path_infeasible` method and
//! a proving pack naming the guard chain. Degraded interval results skip
//! the path layer entirely: its queries lean on the fixpoint being a
//! genuine post-fixpoint.
//!
//! # Soundness
//!
//! A discharge always requires a *positive refuting constraint* from a
//! recorded pack — never absence of evidence:
//!
//! * any control point, variable or pack the octagon result does not bind
//!   maps to ⊤ (unknown), which never refutes anything;
//! * the octagon analysis is itself a sound over-approximation, including
//!   under budget degradation — a degraded run only *loses* constraints,
//!   so it discharges fewer alarms, never wrong ones;
//! * `definite` alarms are structurally excluded from triage: the interval
//!   semantics already proved the error, and a sound refinement cannot
//!   contradict it.
//!
//! For buffer overruns the pass additionally verifies, syntactically, that
//! the relational variables it reasons about denote what the alarm is
//! about: the accessed pointer must be a single-assignment `base + index`
//! sum whose base provably holds a fresh block from the alarm's allocation
//! site (a dominating single-write chain down to the `alloc`), and a
//! variable-sized refutation `index − size ≤ −1` is only accepted when the
//! size variable is never written and the procedure makes no calls, so the
//! size at the allocation and at the access are the same activation's
//! value.
//!
//! # Budget
//!
//! The octagon run is gated by a per-unit budget derived from the interval
//! fixpoint's own iteration count ([`derived_budget`]), so triage can
//! never be slower than an unbounded re-analysis; on exhaustion the
//! octagon solver degrades soundly and the pass simply discharges less.

use crate::budget::Budget;
use crate::checker;
use crate::depgen::DepGenOptions;
use crate::depstore::DepBackend;
use crate::interval::{AnalyzeOptions, Engine, IntervalResult};
use crate::octagon::{self, OctagonResult};
use crate::pathcond::{self, DomTree, GuardSite, PathIndex};
use crate::preanalysis::PreAnalysis;
use crate::widening::WideningConfig;
use sga_diag::{DiagKind, Diagnostic, DischargeMethod, Evidence, Status};
use sga_domains::interval::Bound;
use sga_domains::{AbsLoc, Interval, Lattice, Octagon, PackId};
use sga_ir::{BinOp, Cmd, Cond, Cp, Expr, LVal, NodeId, Proc, ProcId, Program, VarId};
use sga_utils::{FxHashSet, Idx};

/// Which triage layers run. The octagon layer refutes error conditions
/// relationally; the path layer proves alarm points unreachable from
/// their dominating guards. `Both` runs octagon first, then path on
/// whatever stays open — its discharged set is a superset of either layer
/// alone by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TriageMode {
    /// Octagon layer only (the pre-path behavior).
    Octagon,
    /// Path-condition layer only (no octagon fixpoint).
    Path,
    /// Octagon, then path on the remaining open alarms.
    #[default]
    Both,
}

impl TriageMode {
    /// Stable name, as accepted by `--triage` and recorded in reports.
    pub fn name(self) -> &'static str {
        match self {
            TriageMode::Octagon => "octagon",
            TriageMode::Path => "path",
            TriageMode::Both => "both",
        }
    }

    /// Parses a `--triage` argument.
    pub fn parse(s: &str) -> Option<TriageMode> {
        match s {
            "octagon" => Some(TriageMode::Octagon),
            "path" => Some(TriageMode::Path),
            "both" => Some(TriageMode::Both),
            _ => None,
        }
    }

    fn runs_octagon(self) -> bool {
        matches!(self, TriageMode::Octagon | TriageMode::Both)
    }

    fn runs_path(self) -> bool {
        matches!(self, TriageMode::Path | TriageMode::Both)
    }
}

/// How the triage pass is configured.
#[derive(Clone, Debug)]
pub struct TriageOptions {
    /// Octagon engine (defaults to sparse, like the main analysis).
    pub engine: Engine,
    /// Dependency-generation options for the sparse octagon run.
    pub depgen: DepGenOptions,
    /// Dependency representation for the sparse octagon run.
    pub dep_backend: DepBackend,
    /// Widening strategy for the octagon run.
    pub widening: WideningConfig,
    /// Work budget for the octagon fixpoint (see [`derived_budget`]).
    pub budget: Budget,
    /// Which triage layers run.
    pub mode: TriageMode,
}

impl Default for TriageOptions {
    fn default() -> TriageOptions {
        TriageOptions {
            engine: Engine::Sparse,
            depgen: DepGenOptions::default(),
            dep_backend: DepBackend::default(),
            widening: WideningConfig::default(),
            budget: Budget::unbounded(),
            mode: TriageMode::default(),
        }
    }
}

/// What the triage pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TriageStats {
    /// Open, non-definite alarms examined.
    pub candidates: usize,
    /// Alarms demoted to discharged (all layers).
    pub discharged: usize,
    /// Alarms discharged by the path-condition layer specifically.
    pub discharged_path: usize,
    /// Whether the octagon fixpoint ran at all (skipped when there are no
    /// candidates, or in `--triage path` mode).
    pub octagon_ran: bool,
    /// Whether the octagon fixpoint degraded under its budget.
    pub degraded: bool,
}

/// The triage budget for a unit whose interval fixpoint took
/// `interval_iterations` node evaluations: a few multiples of the interval
/// cost (octagon transfer steps are costlier per node but the pack
/// restriction keeps their count comparable), capped by the user's own
/// budget if one is set. This guarantees triage is never slower than an
/// unbounded octagon re-analysis of the unit.
pub fn derived_budget(interval_iterations: usize, base: &Budget) -> Budget {
    let cap = 4 * interval_iterations as u64 + 256;
    Budget {
        max_steps: Some(base.max_steps.map_or(cap, |b| b.min(cap))),
        timeout_ms: base.timeout_ms,
    }
}

/// Runs the triage layers selected by `options.mode` and demotes every
/// refuted alarm in `diags` to discharged, recording the proving packs
/// (octagon member sets, or dominating guard chains) and the refuting
/// constraint. `result` is the interval fixpoint the alarms came from —
/// the path layer evaluates guard conditions against it.
pub fn discharge(
    program: &Program,
    pre: &PreAnalysis,
    result: &IntervalResult,
    diags: &mut [Diagnostic],
    options: &TriageOptions,
) -> TriageStats {
    let mut stats = TriageStats::default();
    let candidates: Vec<usize> = diags
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            d.is_open()
                && !d.definite
                && matches!(
                    d.kind,
                    DiagKind::BufferOverrun | DiagKind::NullDeref | DiagKind::DivByZero
                )
        })
        .map(|(i, _)| i)
        .collect();
    stats.candidates = candidates.len();
    if candidates.is_empty() {
        return stats;
    }

    // Dominator trees and assume-site indices are built lazily per
    // procedure and shared by both layers (the octagon overrun check needs
    // dominance for its alloc chains, the path layer for guard chains).
    let mut paths = PathIndex::new();

    if options.mode.runs_octagon() {
        let res = octagon::analyze_with(
            program,
            options.engine,
            AnalyzeOptions {
                depgen: options.depgen,
                dep_backend: options.dep_backend,
                semi_sparse: false,
                widening: options.widening,
                budget: options.budget,
            },
        );
        stats.octagon_ran = true;
        stats.degraded = res.stats.degraded;

        let q = OctQuery { program, res: &res };
        for &i in &candidates {
            let verdict = match diags[i].kind {
                DiagKind::BufferOverrun => {
                    try_discharge_overrun(program, pre, &q, &mut paths, &diags[i])
                }
                DiagKind::NullDeref => try_discharge_null(program, &q, &diags[i]),
                DiagKind::DivByZero => try_discharge_div(program, &q, &diags[i]),
                _ => None,
            };
            if let Some((pack, reason)) = verdict {
                diags[i].status = Status::Discharged {
                    method: DischargeMethod::Octagon,
                    pack,
                    reason,
                };
                stats.discharged += 1;
            }
        }
    }

    // The path layer runs on whatever the octagon layer left open, so in
    // `Both` mode its discharged set can only grow. A degraded interval
    // fixpoint is skipped outright: the guard evaluation below is only
    // sound against a genuine post-fixpoint.
    if options.mode.runs_path() && !result.stats.degraded {
        for &i in &candidates {
            if !diags[i].is_open() {
                continue;
            }
            if let Some((pack, reason)) = try_discharge_path(program, result, &mut paths, &diags[i])
            {
                diags[i].status = Status::Discharged {
                    method: DischargeMethod::PathInfeasible,
                    pack,
                    reason,
                };
                stats.discharged += 1;
                stats.discharged_path += 1;
            }
        }
    }
    stats
}

/// The path-condition layer for one alarm: collect the dominating assume
/// guards, then either (a) find a single dominating guard that can never
/// hold on its own inputs — the alarm point is unreachable — or (b) refute
/// the conjunction of the *stable* dominating guards (no writes to their
/// variables between guard and alarm) by iterated interval refinement.
fn try_discharge_path(
    program: &Program,
    result: &IntervalResult,
    paths: &mut PathIndex,
    d: &Diagnostic,
) -> Option<(String, String)> {
    let pid = d.cp.proc;
    let proc = &program.procs[pid];
    if proc.is_external {
        return None;
    }
    let pp = paths.proc_paths(program, pid);
    let chain = pp.guard_chain(d.cp.node);
    if chain.is_empty() {
        return None;
    }

    // (a) A dead dominating guard: the proving pack is the chain prefix up
    // to and including the guard that can never hold.
    for (i, g) in chain.iter().enumerate() {
        if let Some(reason) = pathcond::guard_is_dead(program, result, pid, g.node) {
            let pack = pathcond::render_chain(program, proc, &chain[..=i]);
            return Some((pack, reason));
        }
    }

    // (b) Contradictory conjunction of stable guards. A single guard can
    // never contradict the seed (the seed already reflects it), so only
    // bother from two guards up.
    let stable: Vec<&GuardSite> = chain
        .iter()
        .copied()
        .filter(|g| pathcond::guard_is_stable(program, pid, g.node, d.cp.node))
        .collect();
    if stable.len() < 2 {
        return None;
    }
    let guards: Vec<(NodeId, &Cond)> = stable
        .iter()
        .filter_map(|g| match &proc.nodes[g.node].cmd {
            Cmd::Assume(c) => Some((g.node, c)),
            _ => None,
        })
        .collect();
    let reason = pathcond::refute_conjunction(program, result, d.cp, &guards)?;
    Some((pathcond::render_chain(program, proc, &stable), reason))
}

/// Relational queries against the octagon result, evaluated *before* a
/// control point: the join over the nearest binding post-states backwards
/// through the CFG. Anything unbound is ⊤.
struct OctQuery<'a> {
    program: &'a Program,
    res: &'a OctagonResult,
}

impl OctQuery<'_> {
    /// The octagon of pack `pid` flowing into `cp`: join of the nearest
    /// post-states backwards that bind the pack. `None` means ⊤ — some
    /// backward path reaches the procedure entry (or an unexplored corner)
    /// without a binding, so nothing may be concluded.
    fn before(&self, cp: Cp, pid: PackId) -> Option<Octagon> {
        let proc = &self.program.procs[cp.proc];
        let mut stack: Vec<NodeId> = proc.preds_of(cp.node).to_vec();
        if stack.is_empty() {
            return None;
        }
        let mut visited: FxHashSet<NodeId> = stack.iter().copied().collect();
        let mut acc = Octagon::bottom();
        while let Some(n) = stack.pop() {
            if let Some(o) = self
                .res
                .values
                .get(&Cp::new(cp.proc, n))
                .and_then(|st| st.get(&pid))
            {
                acc = acc.join(o);
                continue;
            }
            let preds = proc.preds_of(n);
            if preds.is_empty() {
                // Reached the entry with the pack unbound.
                return None;
            }
            for &p in preds {
                if visited.insert(p) {
                    stack.push(p);
                }
            }
        }
        // ⊥ here would claim the point unreachable; refuse to conclude
        // that from a *query* — refutations must come from real
        // constraints.
        (!acc.is_bottom()).then_some(acc)
    }

    /// Interval of `x` before `cp`: meet over every pack containing `x`,
    /// with the packs that actually constrained it.
    fn itv_before(&self, cp: Cp, x: VarId) -> (Interval, Vec<PackId>) {
        let mut acc = Interval::top();
        let mut used = Vec::new();
        for &pid in self.res.packs.packs_of(x) {
            let Some(ix) = self.res.packs.pack(pid).index_of(x) else {
                continue;
            };
            let Some(o) = self.before(cp, pid) else {
                continue;
            };
            let itv = o.project(ix);
            if itv.is_bottom() || itv == Interval::top() {
                continue;
            }
            acc = acc.meet(&itv);
            used.push(pid);
        }
        (acc, used)
    }

    /// Interval of `x − y` (or `x + y` with `sum`) before `cp`.
    fn rel_before(&self, cp: Cp, x: VarId, y: VarId, sum: bool) -> (Interval, Vec<PackId>) {
        let mut acc = Interval::top();
        let mut used = Vec::new();
        for &pid in self.res.packs.packs_of(x) {
            let pack = self.res.packs.pack(pid);
            let (Some(ix), Some(iy)) = (pack.index_of(x), pack.index_of(y)) else {
                continue;
            };
            let Some(o) = self.before(cp, pid) else {
                continue;
            };
            let itv = if sum {
                o.sum_interval(ix, iy)
            } else {
                o.diff_interval(ix, iy)
            };
            if itv.is_bottom() || itv == Interval::top() {
                continue;
            }
            acc = acc.meet(&itv);
            used.push(pid);
        }
        (acc, used)
    }

    /// Renders the contributing packs as their member-name sets.
    fn render_packs(&self, mut pids: Vec<PackId>) -> String {
        pids.sort_unstable();
        pids.dedup();
        pids.iter()
            .map(|&pid| {
                let names: Vec<&str> = self
                    .res
                    .packs
                    .pack(pid)
                    .members()
                    .iter()
                    .map(|&v| self.program.vars[v].name.as_str())
                    .collect();
                format!("{{{}}}", names.join(","))
            })
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Direct writes to `x` anywhere in the program (assignments, allocations
/// and call-return bindings with `x` as the plain left-hand side).
fn writes_of(program: &Program, x: VarId) -> Vec<Cp> {
    let mut out = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        for (nid, node) in proc.nodes.iter_enumerated() {
            let written = match &node.cmd {
                Cmd::Assign(LVal::Var(v), _) | Cmd::Alloc(LVal::Var(v), _) => *v == x,
                Cmd::Call {
                    ret: Some(LVal::Var(v)),
                    ..
                } => *v == x,
                _ => false,
            };
            if written {
                out.push(Cp::new(pid, nid));
            }
        }
    }
    out
}

/// Follows single-write copy chains from `base` down to the alarm's
/// allocation: every link must be the variable's only direct write in the
/// whole program, must not be address-taken, must live in `proc`, and must
/// dominate the point the previous link is consumed at — so at the access,
/// `base` provably holds offset 0 of a block allocated *this* activation
/// at `alloc_cp`. Returns the allocation's size expression. Dominance
/// comes from the shared memoized dominator tree ([`DomTree`]) rather
/// than a per-query reachability walk.
fn alloc_chain_size<'p>(
    program: &'p Program,
    pid: ProcId,
    dom: &DomTree,
    base: VarId,
    alloc_cp: Cp,
    use_node: NodeId,
    depth: usize,
) -> Option<&'p Expr> {
    if depth == 0 {
        return None;
    }
    if program.vars[base].address_taken {
        return None;
    }
    let writes = writes_of(program, base);
    let [w] = writes.as_slice() else {
        return None;
    };
    if w.proc != pid {
        return None;
    }
    let proc = &program.procs[pid];
    if !dom.dominates(w.node, use_node) {
        return None;
    }
    match &proc.nodes[w.node].cmd {
        Cmd::Alloc(LVal::Var(_), size) => (*w == alloc_cp).then_some(size),
        Cmd::Assign(LVal::Var(_), Expr::Var(src)) => {
            alloc_chain_size(program, pid, dom, *src, alloc_cp, w.node, depth - 1)
        }
        _ => None,
    }
}

fn has_calls(proc: &Proc) -> bool {
    proc.nodes.iter().any(|n| matches!(n.cmd, Cmd::Call { .. }))
}

fn var_name(program: &Program, x: VarId) -> &str {
    &program.vars[x].name
}

fn try_discharge_overrun(
    program: &Program,
    pre: &PreAnalysis,
    q: &OctQuery<'_>,
    paths: &mut PathIndex,
    d: &Diagnostic,
) -> Option<(String, String)> {
    let t = d.var?;
    let Evidence::Overrun {
        alloc: Some((ap, an)),
        ..
    } = &d.evidence
    else {
        return None;
    };
    let alloc_cp = Cp::new(ProcId::new(*ap as usize), NodeId::new(*an as usize));
    let pid = d.cp.proc;
    if alloc_cp.proc != pid || program.vars[t].address_taken {
        return None;
    }
    let proc = &program.procs[pid];

    // The accessed pointer must be a single-assignment `base + index` sum
    // computed immediately before the access.
    let writes = writes_of(program, t);
    let [def] = writes.as_slice() else {
        return None;
    };
    if def.proc != pid || !proc.preds_of(d.cp.node).contains(&def.node) {
        return None;
    }
    let Cmd::Assign(LVal::Var(_), Expr::Binop(BinOp::Add, a, b)) = &proc.nodes[def.node].cmd else {
        return None;
    };
    let (Expr::Var(a), Expr::Var(b)) = (&**a, &**b) else {
        return None;
    };
    let is_base = |v: VarId| {
        pre.state
            .get_ref(&AbsLoc::Var(v))
            .is_some_and(|val| !val.arr.is_empty())
    };
    let (base, idx) = match (is_base(*a), is_base(*b)) {
        (true, false) => (*a, *b),
        (false, true) => (*b, *a),
        _ => return None,
    };

    let dom = &paths.proc_paths(program, pid).dom;
    let size = alloc_chain_size(program, pid, dom, base, alloc_cp, d.cp.node, 4)?;

    let (idx_itv, mut pids) = q.itv_before(d.cp, idx);
    if !matches!(idx_itv.lo(), Some(Bound::Int(l)) if l >= 0) {
        return None;
    }
    let iname = var_name(program, idx);
    let reason = match size {
        Expr::Const(c) if *c >= 1 => {
            if !matches!(idx_itv.hi(), Some(Bound::Int(h)) if h < *c) {
                return None;
            }
            format!("{iname} in {idx_itv} within [0, {}]", *c - 1)
        }
        Expr::Var(s) => {
            // The size variable must denote the same value at the
            // allocation and at the access: no direct writes anywhere, not
            // address-taken, and no calls in the procedure (so no other
            // activation can rebind it between the two points).
            if program.vars[*s].address_taken
                || !writes_of(program, *s).is_empty()
                || has_calls(proc)
            {
                return None;
            }
            let (diff, dpids) = q.rel_before(d.cp, idx, *s, false);
            if !matches!(diff.hi(), Some(Bound::Int(h)) if h <= -1) {
                return None;
            }
            pids.extend(dpids);
            format!("{iname} >= 0 and {iname} - {} <= -1", var_name(program, *s))
        }
        _ => return None,
    };
    if pids.is_empty() {
        return None;
    }
    Some((q.render_packs(pids), reason))
}

fn try_discharge_null(
    program: &Program,
    q: &OctQuery<'_>,
    d: &Diagnostic,
) -> Option<(String, String)> {
    let x = d.var?;
    let (itv, pids) = q.itv_before(d.cp, x);
    if pids.is_empty() || itv.is_bottom() || itv.contains(0) {
        return None;
    }
    Some((
        q.render_packs(pids),
        format!("{} in {itv} excludes 0", var_name(program, x)),
    ))
}

fn try_discharge_div(
    program: &Program,
    q: &OctQuery<'_>,
    d: &Diagnostic,
) -> Option<(String, String)> {
    let Evidence::DivByZero { nth, .. } = &d.evidence else {
        return None;
    };
    let proc = &program.procs[d.cp.proc];
    let mut divisors: Vec<&Expr> = Vec::new();
    checker::collect_divisors_cmd(&proc.nodes[d.cp.node].cmd, &mut divisors);
    let e = *divisors.get(*nth as usize)?;

    let (itv, pids, rendered) = match e {
        Expr::Var(x) => {
            let (itv, pids) = q.itv_before(d.cp, *x);
            (itv, pids, var_name(program, *x).to_string())
        }
        Expr::Binop(op @ (BinOp::Sub | BinOp::Add), a, b) => {
            let (Expr::Var(a), Expr::Var(b)) = (&**a, &**b) else {
                return None;
            };
            let (itv, pids) = q.rel_before(d.cp, *a, *b, matches!(op, BinOp::Add));
            let sign = if matches!(op, BinOp::Add) { "+" } else { "-" };
            (
                itv,
                pids,
                format!("{} {sign} {}", var_name(program, *a), var_name(program, *b)),
            )
        }
        _ => return None,
    };
    if pids.is_empty() || itv.is_bottom() || itv.contains(0) {
        return None;
    }
    Some((
        q.render_packs(pids),
        format!("{rendered} in {itv} excludes 0"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::analyze;
    use crate::preanalysis;
    use sga_cfront::parse;

    fn triage(src: &str) -> (Vec<Diagnostic>, TriageStats) {
        triage_with(src, TriageMode::default())
    }

    fn triage_with(src: &str, mode: TriageMode) -> (Vec<Diagnostic>, TriageStats) {
        let p = parse(src).unwrap();
        let pre = preanalysis::run(&p);
        let r = analyze(&p, Engine::Sparse);
        let mut diags = checker::check_all(&p, &r, &pre);
        let opts = TriageOptions {
            mode,
            ..TriageOptions::default()
        };
        let stats = discharge(&p, &pre, &r, &mut diags, &opts);
        (diags, stats)
    }

    #[test]
    fn loop_overrun_with_symbolic_size_is_discharged() {
        // Interval: size [1,+oo] gives max index [0,0] while offset grows
        // to [0,+oo] — possible alarm. Octagon: i >= 0 and i - n <= -1.
        let (diags, stats) = triage(
            "int probe(int n) {
                int s = 0;
                if (n > 0) {
                    int *buf = malloc(n);
                    int i = 0;
                    while (i < n) { buf[i] = i; i = i + 1; }
                    s = i;
                }
                return s;
             }
             int main(int argc) { return probe(argc); }",
        );
        let overruns: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagKind::BufferOverrun)
            .collect();
        assert!(!overruns.is_empty(), "interval must alarm first: {diags:?}");
        assert!(
            overruns
                .iter()
                .any(|d| matches!(&d.status, Status::Discharged { .. })),
            "octagon should discharge the loop access: {overruns:?}"
        );
        assert!(stats.discharged >= 1, "{stats:?}");
        if let Some(Status::Discharged { pack, reason, .. }) =
            overruns.iter().find(|d| !d.is_open()).map(|d| &d.status)
        {
            assert!(
                pack.contains('i') && reason.contains("i - n"),
                "{pack} / {reason}"
            );
        }
    }

    #[test]
    fn constant_size_overrun_is_discharged_when_bounded() {
        let (diags, _) = triage(
            "int main(int c) {
                int *buf = malloc(4);
                int i = 0;
                if (c) { i = 3; }
                buf[i] = 1;
                return 0;
             }",
        );
        // Interval keeps i in [0,3] ⊆ [0,3]: no alarm at all. Now make the
        // bound relational-only:
        let (diags2, stats2) = triage(
            "int main(int n) {
                if (n < 0) { return 0; }
                if (n > 3) { return 0; }
                int *buf = malloc(4);
                int t = 0;
                t = n;
                buf[t] = 1;
                return 0;
             }",
        );
        let _ = diags;
        let overruns: Vec<_> = diags2
            .iter()
            .filter(|d| d.kind == DiagKind::BufferOverrun)
            .collect();
        // Whether the interval analysis alarms here depends on refinement
        // propagation; if it alarms, triage must not *wrongly* discharge —
        // and if it discharges, the reason must be the constant bound.
        for d in &overruns {
            if let Status::Discharged { reason, .. } = &d.status {
                assert!(reason.contains("within [0, 3]"), "{reason}");
            }
        }
        let _ = stats2;
    }

    #[test]
    fn definite_alarms_are_never_candidates() {
        let (diags, stats) = triage(
            "int main() {
                int *buf = malloc(4);
                buf[9] = 1;
                int *p = 0;
                *p = 2;
                return 0;
             }",
        );
        assert!(diags.iter().any(|d| d.definite));
        assert!(
            diags.iter().filter(|d| d.definite).all(|d| d.is_open()),
            "definite alarms must survive triage: {diags:?}"
        );
        let _ = stats;
    }

    #[test]
    fn div_by_relational_difference_is_discharged() {
        // Interval knows nothing about n - m; the octagon pack {m,n}
        // carries m - n <= -1 from the guard.
        let (diags, stats) = triage(
            "int main(int n, int m) {
                int r = 0;
                if (m < n) { r = 100 / (n - m); }
                return r;
             }",
        );
        let divs: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagKind::DivByZero)
            .collect();
        assert_eq!(divs.len(), 1, "{diags:?}");
        assert!(
            matches!(&divs[0].status, Status::Discharged { reason, .. } if reason.contains("excludes 0")),
            "{divs:?}"
        );
        assert_eq!(stats.discharged, 1, "{stats:?}");
    }

    #[test]
    fn unprovable_alarms_stay_open() {
        let (diags, stats) = triage(
            "int main(int n, int m) {
                int r = 100 / (n - m);
                int *buf = malloc(8);
                buf[n] = r;
                return 0;
             }",
        );
        assert!(
            diags.iter().filter(|d| !d.definite).all(|d| d.is_open()),
            "nothing is provable here: {diags:?}"
        );
        assert_eq!(stats.discharged, 0);
    }

    #[test]
    fn triage_without_candidates_skips_octagon() {
        let (_, stats) = triage("int main() { int x = 1; return x; }");
        assert_eq!(stats.candidates, 0);
        assert!(!stats.octagon_ran);
    }

    #[test]
    fn exhausted_budget_degrades_to_fewer_discharges() {
        let src = "int main(int n, int m) {
                int r = 0;
                if (m < n) { r = 100 / (n - m); }
                return r;
             }";
        let p = parse(src).unwrap();
        let pre = preanalysis::run(&p);
        let r = analyze(&p, Engine::Sparse);
        let mut diags = checker::check_all(&p, &r, &pre);
        let opts = TriageOptions {
            budget: Budget::with_max_steps(1),
            ..TriageOptions::default()
        };
        let stats = discharge(&p, &pre, &r, &mut diags, &opts);
        assert!(stats.octagon_ran);
        // Degraded or not, every status change must still carry a pack.
        for d in &diags {
            if let Status::Discharged { pack, .. } = &d.status {
                assert!(!pack.is_empty());
            }
        }
    }

    #[test]
    fn derived_budget_caps_at_user_budget() {
        let b = derived_budget(100, &Budget::unbounded());
        assert_eq!(b.max_steps, Some(656));
        let b = derived_budget(100, &Budget::with_max_steps(10));
        assert_eq!(b.max_steps, Some(10));
    }

    /// A null deref guarded by a dominating condition that can never hold:
    /// the octagon layer cannot refute it (the pointer genuinely may be
    /// null), the path layer proves the deref unreachable.
    const DEAD_GUARD: &str = "int g;
        int main(int n) {
            int x = 3;
            int *p = 0;
            if (n > 0) { p = &g; }
            if (x > 10) { *p = 1; }
            return 0;
         }";

    #[test]
    fn dead_dominating_guard_discharges_via_path_layer() {
        let (diags, stats) = triage(DEAD_GUARD);
        let nulls: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagKind::NullDeref)
            .collect();
        assert!(!nulls.is_empty(), "interval must alarm first: {diags:?}");
        let discharged = nulls.iter().find(|d| !d.is_open()).expect("discharged");
        let Status::Discharged {
            method,
            pack,
            reason,
        } = &discharged.status
        else {
            panic!("{discharged:?}");
        };
        assert_eq!(*method, DischargeMethod::PathInfeasible, "{discharged:?}");
        assert!(pack.contains("then@") && pack.contains("x > 10"), "{pack}");
        assert!(reason.contains("never holds"), "{reason}");
        assert_eq!(stats.discharged_path, 1, "{stats:?}");
    }

    #[test]
    fn octagon_mode_leaves_path_only_alarms_open() {
        let (diags, stats) = triage_with(DEAD_GUARD, TriageMode::Octagon);
        assert!(
            diags
                .iter()
                .filter(|d| d.kind == DiagKind::NullDeref)
                .all(|d| d.is_open()),
            "octagon alone cannot refute a may-null pointer: {diags:?}"
        );
        assert_eq!(stats.discharged_path, 0);
        assert!(stats.octagon_ran);
    }

    #[test]
    fn path_mode_skips_the_octagon_fixpoint() {
        let (diags, stats) = triage_with(DEAD_GUARD, TriageMode::Path);
        assert!(!stats.octagon_ran);
        assert_eq!(stats.discharged, stats.discharged_path);
        assert!(
            diags
                .iter()
                .filter(|d| d.kind == DiagKind::NullDeref)
                .any(|d| !d.is_open()),
            "{diags:?}"
        );
    }

    #[test]
    fn both_mode_discharges_a_superset_of_octagon_mode() {
        // One octagon-dischargeable alarm (relational divisor) plus one
        // path-dischargeable alarm (dead guard over a may-null deref).
        let src = "int g;
            int main(int n, int m) {
                int r = 0;
                if (m < n) { r = 100 / (n - m); }
                int x = 1;
                int *p = 0;
                if (n > 0) { p = &g; }
                if (x > 5) { *p = r; }
                return r;
             }";
        let (oct, _) = triage_with(src, TriageMode::Octagon);
        let (both, stats) = triage_with(src, TriageMode::Both);
        let discharged = |v: &[Diagnostic]| -> Vec<u64> {
            v.iter()
                .filter(|d| !d.is_open())
                .map(|d| d.fingerprint)
                .collect()
        };
        let oct_set = discharged(&oct);
        let both_set = discharged(&both);
        assert!(
            oct_set.iter().all(|fp| both_set.contains(fp)),
            "both must contain every octagon discharge: {oct_set:?} vs {both_set:?}"
        );
        assert!(
            both_set.len() > oct_set.len(),
            "path layer must add a discharge: {oct_set:?} vs {both_set:?}"
        );
        // Definite alarms are untouched in every mode.
        let definite = |v: &[Diagnostic]| -> Vec<(u64, bool)> {
            v.iter()
                .filter(|d| d.definite)
                .map(|d| (d.fingerprint, d.is_open()))
                .collect()
        };
        assert_eq!(definite(&oct), definite(&both));
        assert!(stats.discharged_path >= 1, "{stats:?}");
    }

    #[test]
    fn contradictory_stable_guards_discharge_via_refinement() {
        // n > 5 and n < 3 cannot hold together; n is never written between
        // the guards and the division. Path-only mode, so the octagon layer
        // (which also refutes this divisor) cannot get there first.
        let (diags, stats) = triage_with(
            "int main(int n) {
                int r = 0;
                if (n > 5) {
                    if (n < 3) { r = 100 / n; }
                }
                return r;
             }",
            TriageMode::Path,
        );
        let divs: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagKind::DivByZero)
            .collect();
        if divs.is_empty() {
            // The interval refinement may already prove the branch dead and
            // raise no alarm at all — also acceptable.
            return;
        }
        for d in &divs {
            let Status::Discharged {
                method,
                pack,
                reason,
            } = &d.status
            else {
                panic!("contradictory guards must discharge: {d:?}");
            };
            assert_eq!(*method, DischargeMethod::PathInfeasible);
            assert!(pack.contains("n > 5") && pack.contains("n < 3"), "{pack}");
            assert!(
                reason.contains("conflict") || reason.contains("never holds"),
                "{reason}"
            );
        }
        let _ = stats;
    }

    #[test]
    fn loop_carried_guard_is_never_path_discharged() {
        // The loop guard i < 8 dominates the body access but i is written
        // inside the guard→access region, so it is not stable and the path
        // layer must not reason with it. In Path-only mode everything
        // stays open.
        let (diags, stats) = triage_with(
            "int probe(int n) {
                int s = 0;
                if (n > 0) {
                    int *buf = malloc(n);
                    int i = 0;
                    while (i < n) { buf[i] = i; i = i + 1; }
                    s = i;
                }
                return s;
             }
             int main(int argc) { return probe(argc); }",
            TriageMode::Path,
        );
        assert!(
            diags.iter().any(|d| d.kind == DiagKind::BufferOverrun),
            "interval must alarm first: {diags:?}"
        );
        assert!(
            diags.iter().filter(|d| !d.definite).all(|d| d.is_open()),
            "loop-carried guards must not discharge: {diags:?}"
        );
        assert_eq!(stats.discharged_path, 0);
    }

    #[test]
    fn degraded_interval_result_skips_the_path_layer() {
        let p = parse(DEAD_GUARD).unwrap();
        let pre = preanalysis::run(&p);
        let mut r = analyze(&p, Engine::Sparse);
        let mut diags = checker::check_all(&p, &r, &pre);
        r.stats.degraded = true;
        let stats = discharge(&p, &pre, &r, &mut diags, &TriageOptions::default());
        assert_eq!(
            stats.discharged_path, 0,
            "degraded fixpoints must not feed path discharge: {stats:?}"
        );
    }
}
